//! A guided tour of the paper's main result (Section 6): two objects with
//! the same set agreement power that are not equivalent.
//!
//! Run with `cargo run --release --example separation_tour`.

use lbsa_core::AnyObject;
use life_beyond_set_agreement::explorer::Limits;
use life_beyond_set_agreement::hierarchy::certify::{certified_consensus_number, Face};
use life_beyond_set_agreement::hierarchy::separation::run_separation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 2usize;
    let max_k = 2usize;
    let limits = Limits::default();

    println!("Life Beyond Set Agreement — the separation at level n = {n}");
    println!("============================================================\n");

    // Step 1: both objects sit at level n of the consensus hierarchy.
    println!("Step 1 — consensus numbers (Observation 6.2 / Theorem 5.3):");
    let o_n = AnyObject::o_n(n)?;
    let cert = certified_consensus_number(&o_n, Face::ProposeC, 4, limits)
        .map_err(|v| format!("certification failed: {v}"))?;
    println!(
        "  O_{n} = ({},{})-PAC certifies at level {}",
        n + 1,
        n,
        cert.level
    );
    let o_prime = AnyObject::o_prime_n(n, max_k)?;
    let cert = certified_consensus_number(&o_prime, Face::PowerLevel1, 4, limits)
        .map_err(|v| format!("certification failed: {v}"))?;
    println!("  O'_{n} certifies at level {}\n", cert.level);

    // Steps 2-4: the pipeline.
    let report = run_separation(n, max_k, limits, 10)?;

    println!("Step 2 — equal set agreement power (the Corollary 6.6 precondition):");
    for (k, a) in report.o_n_power.iter() {
        let b = report.o_prime_power.n_k(k).expect("same depth");
        println!(
            "  k = {k}: n_k(O_{n}) = {a}, n_k(O'_{n}) = {b}  -> {}",
            a == b
        );
    }

    println!("\nStep 3 — O'_{n} IS implementable from n-consensus + 2-SA (Lemma 6.4):");
    println!(
        "  {} randomized concurrent histories of the derived implementation",
        report.lemma_6_4_histories_checked
    );
    println!("  all linearizable against the O'_{n} specification.\n");

    println!("Step 4 — O_{n} is NOT implementable from O'_{n} + registers (Theorem 6.5):");
    println!("  each candidate implementation, attacked by running Algorithm 2 over");
    println!("  its PAC face and checking the (n+1)-DAC properties (Theorem 4.1):");
    for r in &report.refutations {
        println!("  - {}", r.candidate);
        println!("      refuted: {}", r.violation);
    }

    println!();
    assert!(report.separation_established());
    println!("Conclusion (Corollary 6.6): O_{n} and O'_{n} have the same certified set");
    println!("agreement power, live at the same hierarchy level, and are not equivalent.");
    println!("Set agreement power does not determine computational power.");
    Ok(())
}
