//! The n-DAC problem end to end: schedules, crashes, and exhaustive
//! verification of Theorem 4.1.
//!
//! Run with `cargo run --release --example dac_demo`.

use life_beyond_set_agreement::core::{AnyObject, ObjId, Pid, Value};
use life_beyond_set_agreement::explorer::checker::check_dac;
use life_beyond_set_agreement::explorer::{Explorer, Limits};
use life_beyond_set_agreement::protocols::dac::{all_binary_inputs, DacFromPac};
use life_beyond_set_agreement::runtime::outcome::FirstOutcome;
use life_beyond_set_agreement::runtime::scheduler::{CrashPlan, RandomScheduler, RoundRobin, Solo};
use life_beyond_set_agreement::runtime::system::System;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inputs = vec![Value::Int(1), Value::Int(0), Value::Int(0)];
    let protocol = DacFromPac::new(inputs, Pid(0), ObjId(0))?;
    let objects = vec![AnyObject::pac(3)?];

    // --- Solo runs: the Termination clauses in action -------------------
    println!("== Solo runs (Termination (a) and (b)) ==");
    for pid in [Pid(0), Pid(1), Pid(2)] {
        let mut sys = System::new(&protocol, &objects)?;
        sys.run(&mut Solo::new(pid), &mut FirstOutcome, 100)?;
        println!("{pid} solo: decision = {:?}", sys.decision(pid));
    }

    // --- Random schedules: whoever wins, everyone agrees ----------------
    println!("\n== 10 random schedules ==");
    for seed in 0..10u64 {
        let mut sys = System::new(&protocol, &objects)?;
        let result = sys.run(
            &mut RandomScheduler::seeded(seed),
            &mut FirstOutcome,
            10_000,
        )?;
        let decisions = result.distinct_decisions();
        println!(
            "seed {seed:>2}: steps = {:>4}, decided = {decisions:?}, aborted = {:?}",
            result.steps, result.aborted
        );
        assert!(
            decisions.len() <= 1,
            "Agreement must hold on every schedule"
        );
    }

    // --- Crash injection: wait-freedom w.r.t. the PAC object ------------
    println!("\n== Crashing the distinguished process after 1 step ==");
    let mut sys = System::new(&protocol, &objects)?;
    let mut crashes = CrashPlan::new();
    crashes.crash(Pid(0), 1);
    let result =
        sys.run_with_crashes(&mut RoundRobin::new(), &mut FirstOutcome, &crashes, 10_000)?;
    println!(
        "crashed = {:?}, survivors' decisions = {:?} {:?}",
        result.crashed,
        sys.decision(Pid(1)),
        sys.decision(Pid(2)),
    );

    // --- Exhaustive verification of Theorem 4.1 -------------------------
    println!("\n== Theorem 4.1, machine-checked (every execution, every input) ==");
    for n in [2usize, 3] {
        let mut configs = 0usize;
        for inputs in all_binary_inputs(n) {
            let p = DacFromPac::new(inputs, Pid(0), ObjId(0))?;
            let objs = vec![AnyObject::pac(n)?];
            let ex = Explorer::new(&p, &objs);
            let stats = check_dac(&ex, &p.instance(), Limits::default(), 6 * n)
                .map_err(|v| format!("{n}-DAC violated: {v}"))?;
            configs += stats.configs;
        }
        println!("n = {n}: all four n-DAC properties hold ({configs} configurations checked)");
    }
    Ok(())
}
