//! The bivalency adversary in action: refuting a doomed consensus protocol
//! with a machine-checkable certificate, then replaying the certificate in
//! a live system.
//!
//! Run with `cargo run --release --example adversary_flp`.

use life_beyond_set_agreement::core::{AnyObject, Value};
use life_beyond_set_agreement::explorer::adversary::{
    bivalent_survival, find_nontermination, verify_witness,
};
use life_beyond_set_agreement::explorer::valency::ValencyAnalysis;
use life_beyond_set_agreement::explorer::Explorer;
use life_beyond_set_agreement::protocols::candidates::WaitForWinner;
use life_beyond_set_agreement::runtime::outcome::FirstOutcome;
use life_beyond_set_agreement::runtime::scheduler::Scripted;
use life_beyond_set_agreement::runtime::system::System;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three processes try to reach consensus with a 2-consensus object and
    // an announcement register — one process too many (the Theorem 4.2
    // situation, in miniature).
    let inputs = vec![Value::Int(1), Value::Int(0), Value::Int(0)];
    let protocol = WaitForWinner::new(inputs);
    let objects = vec![AnyObject::consensus(2)?, AnyObject::register()];

    println!("Target: 3-process consensus from a 2-consensus object + a register.\n");

    // 1. Exhaustive exploration.
    let explorer = Explorer::new(&protocol, &objects);
    let graph = explorer.exploration().run().map_err(|e| e.to_string())?;
    println!(
        "Explored every execution: {} configurations, {} transitions.",
        graph.configs.len(),
        graph.transitions
    );

    // 2. Valency analysis (the FLP lens).
    let analysis = ValencyAnalysis::analyze(&graph);
    let (barren, univalent, multivalent) = analysis.census();
    println!("Valency census: {barren} barren, {univalent} univalent, {multivalent} multivalent.");
    let survival = bivalent_survival(&graph, &analysis, 10_000);
    println!("Greedy bivalency preservation: {survival:?}");

    // 3. The certificate.
    let witness = find_nontermination(&graph)
        .ok_or("expected a non-termination certificate against this candidate")?;
    println!(
        "\nNon-termination certificate found: prefix of {} steps, cycle of {} step(s),",
        witness.prefix.len(),
        witness.cycle.len()
    );
    println!(
        "victims (step forever, never decide): {:?}",
        witness.victims
    );
    assert!(
        verify_witness(&graph, &witness),
        "the certificate must replay in the graph"
    );
    println!("Certificate verified against the execution graph.");

    // 4. Replay the certificate in a live system: pump the cycle 50 times
    //    and observe the victims still undecided after hundreds of steps.
    let pumps = 50;
    let schedule = witness.schedule(pumps);
    let total = schedule.len();
    let mut sys = System::new(&protocol, &objects)?;
    let result = sys.run(&mut Scripted::new(schedule), &mut FirstOutcome, 10 * total)?;
    println!(
        "\nReplayed prefix + {pumps} cycle pumps in a live system: {} steps executed.",
        result.steps
    );
    for victim in &witness.victims {
        assert_eq!(
            sys.decision(*victim),
            None,
            "{victim} must still be undecided after pumping the cycle"
        );
        println!("{victim}: still undecided — wait-free termination is violated.");
    }

    println!("\nThis is the executable shape of the paper's impossibility arguments:");
    println!("an adversary schedule under which some process runs forever undecided.");
    Ok(())
}
