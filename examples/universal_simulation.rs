//! Herlihy's universal construction: simulate the paper's own exotic
//! object — a 2-PAC — out of nothing but consensus objects and registers,
//! and check the simulation is indistinguishable from the real thing.
//!
//! Run with `cargo run --release --example universal_simulation`.

use life_beyond_set_agreement::core::ids::Label;
use life_beyond_set_agreement::core::{AnyObject, ObjId, Op, Pid, Value};
use life_beyond_set_agreement::explorer::Explorer;
use life_beyond_set_agreement::protocols::universal::UniversalProcedure;
use life_beyond_set_agreement::runtime::derived::DerivedProtocol;
use life_beyond_set_agreement::runtime::process::{Protocol, Step};
use std::collections::BTreeSet;

/// Two processes each run one PROPOSE/DECIDE pair on (what they believe is)
/// a 2-PAC object.
#[derive(Debug)]
struct PacPairs;

impl Protocol for PacPairs {
    type LocalState = u8;
    fn num_processes(&self) -> usize {
        2
    }
    fn init(&self, _pid: Pid) -> u8 {
        0
    }
    fn pending_op(&self, pid: Pid, s: &u8) -> (ObjId, Op) {
        let label = Label::new(pid.index() + 1).expect("valid label");
        match s {
            0 => (
                ObjId(0),
                Op::ProposePac(Value::Int(10 + pid.index() as i64), label),
            ),
            _ => (ObjId(0), Op::DecidePac(label)),
        }
    }
    fn on_response(&self, _pid: Pid, s: &u8, resp: Value) -> Step<u8> {
        match s {
            0 => Step::Continue(1),
            _ => Step::Decide(resp),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = PacPairs;

    // Ground truth: the native 2-PAC.
    let native_objects = vec![AnyObject::pac(2)?];
    let native = Explorer::new(&workload, &native_objects)
        .exploration()
        .run()
        .map_err(|e| e.to_string())?;
    let native_outcomes: BTreeSet<Vec<Option<Value>>> = native
        .terminal_indices()
        .map(|t| native.configs[t].decisions())
        .collect();
    println!(
        "Native 2-PAC: {} configurations, {} distinct terminal decision vectors:",
        native.configs.len(),
        native_outcomes.len()
    );
    for o in &native_outcomes {
        println!("  {o:?}");
    }

    // The simulation: 2-PAC out of 2-consensus objects + registers.
    let l1 = Label::new(1)?;
    let l2 = Label::new(2)?;
    let op_table = vec![
        Op::ProposePac(Value::Int(10), l1),
        Op::ProposePac(Value::Int(11), l2),
        Op::DecidePac(l1),
        Op::DecidePac(l2),
    ];
    let universal =
        UniversalProcedure::new(AnyObject::pac(2)?, op_table, 2, 8).map_err(|e| e.to_string())?;
    let derived = DerivedProtocol::new(&workload, &universal, vec![universal.frontend(0)]);
    let base_objects = universal.base_objects()?;
    println!(
        "\nSimulated 2-PAC: {} base objects ({} consensus + {} registers).",
        base_objects.len(),
        universal.capacity(),
        universal.capacity()
    );

    let simulated = Explorer::new(&derived, &base_objects)
        .exploration()
        .run()
        .map_err(|e| e.to_string())?;
    let simulated_outcomes: BTreeSet<Vec<Option<Value>>> = simulated
        .terminal_indices()
        .map(|t| simulated.configs[t].decisions())
        .collect();
    println!(
        "Simulated 2-PAC: {} configurations (the simulation pays a ~{}x state blow-up).",
        simulated.configs.len(),
        simulated.configs.len() / native.configs.len().max(1)
    );

    assert_eq!(
        native_outcomes, simulated_outcomes,
        "the simulation must realize exactly the native outcome set"
    );
    println!("\nTerminal decision vectors of the simulation == native 2-PAC: true");
    println!("Herlihy's theorem, executed: level-2 consensus implements the 2-PAC.");
    Ok(())
}
