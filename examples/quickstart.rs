//! Quickstart: the objects of *Life Beyond Set Agreement* in five minutes.
//!
//! Builds the paper's `O₂` and `O'₂`, pokes at their faces, and runs
//! Algorithm 2 (the n-DAC solution) on a 2-PAC object.
//!
//! Run with `cargo run --release --example quickstart`.

use life_beyond_set_agreement::core::ids::Label;
use life_beyond_set_agreement::core::spec::ObjectSpec;
use life_beyond_set_agreement::core::{AnyObject, ObjId, Op, Pid, Value};
use life_beyond_set_agreement::protocols::dac::DacFromPac;
use life_beyond_set_agreement::runtime::outcome::FirstOutcome;
use life_beyond_set_agreement::runtime::scheduler::{RoundRobin, Scripted};
use life_beyond_set_agreement::runtime::system::System;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The n-PAC object (Section 3, Algorithm 1) -------------------
    println!("== 1. A 2-PAC object, driven by hand ==");
    let pac = AnyObject::pac(2)?;
    let mut state = pac.initial_state();
    let l1 = Label::new(1)?;
    let l2 = Label::new(2)?;

    let r = pac.apply_deterministic(&mut state, &Op::ProposePac(Value::Int(7), l1))?;
    println!("PROPOSE(7, 1) -> {r}");
    let r = pac.apply_deterministic(&mut state, &Op::DecidePac(l1))?;
    println!("DECIDE(1)     -> {r}   (a clean pair decides its value)");

    let r = pac.apply_deterministic(&mut state, &Op::ProposePac(Value::Int(9), l2))?;
    println!("PROPOSE(9, 2) -> {r}");
    let r = pac.apply_deterministic(&mut state, &Op::DecidePac(l2))?;
    println!("DECIDE(2)     -> {r}   (agreement: the consensus value sticks)");

    // --- 2. O_n and O'_n (Section 6) -------------------------------------
    println!("\n== 2. The paper's pair: O_2 and O'_2 ==");
    let o2 = AnyObject::o_n(2)?;
    let mut s = o2.initial_state();
    let r = o2.apply_deterministic(&mut s, &Op::ProposeC(Value::Int(4)))?;
    println!("O_2.PROPOSEC(4)      -> {r}   (the 2-consensus face)");
    let r = o2.apply_deterministic(&mut s, &Op::ProposeP(Value::Int(5), l1))?;
    println!("O_2.PROPOSEP(5, 1)   -> {r}   (the 3-PAC face)");

    let o_prime = AnyObject::o_prime_n(2, 3)?;
    let s = o_prime.initial_state();
    let outs = o_prime.outcomes(&s, &Op::ProposeAt(Value::Int(6), 2))?;
    println!(
        "O'_2.PROPOSE(6, k=2) -> {} admissible outcome(s) (its (4,2)-SA component)",
        outs.len()
    );

    // --- 3. Algorithm 2: n-DAC from one n-PAC ---------------------------
    println!("\n== 3. Algorithm 2: 2-DAC from a single 2-PAC ==");
    let protocol = DacFromPac::new(vec![Value::Int(1), Value::Int(0)], Pid(0), ObjId(0))?;
    let objects = vec![AnyObject::pac(2)?];

    // A clean schedule: the distinguished process p runs its pair first.
    let mut sys = System::new(&protocol, &objects)?;
    let mut sched = Scripted::new([Pid(0), Pid(0), Pid(1), Pid(1)]);
    sys.run(&mut sched, &mut FirstOutcome, 100)?;
    println!(
        "p-first schedule: p0 decides {:?}, p1 decides {:?}",
        sys.decision(Pid(0)),
        sys.decision(Pid(1)),
    );

    // An adversarial schedule: round-robin interleaves the pairs, p aborts.
    let mut sys = System::new(&protocol, &objects)?;
    let result = sys.run(&mut RoundRobin::new(), &mut FirstOutcome, 100)?;
    println!(
        "round-robin schedule: aborted = {:?}, p1 decides {:?}",
        result.aborted,
        sys.decision(Pid(1)),
    );
    println!("\nEvery step above is atomic on a linearizable object — the paper's model.");
    Ok(())
}
