//! Cross-crate integration tests: the machinery pieces must agree with
//! each other — explorer paths replay in live systems, traces project to
//! legal object histories, witnesses pump in real runs, derived objects
//! substitute for native ones.

use life_beyond_set_agreement::core::history::is_legal_pac_history;
use life_beyond_set_agreement::core::value::int;
use life_beyond_set_agreement::core::{AnyObject, ObjId, Op, Pid, Value};
use life_beyond_set_agreement::explorer::adversary::find_nontermination;
use life_beyond_set_agreement::explorer::linearizability::check_linearizable;
use life_beyond_set_agreement::explorer::valency::ValencyAnalysis;
use life_beyond_set_agreement::explorer::Explorer;
use life_beyond_set_agreement::protocols::candidates::WaitForWinner;
use life_beyond_set_agreement::protocols::consensus_protocols::ConsensusViaObject;
use life_beyond_set_agreement::protocols::dac::DacFromPac;
use life_beyond_set_agreement::protocols::derived_impls::{
    CombinedFromComponents, PowerFromConsensusAndSa,
};
use life_beyond_set_agreement::protocols::set_agreement_protocols::KSetViaPowerLevel;
use life_beyond_set_agreement::runtime::derived::{record_frontend_history, DerivedProtocol};
use life_beyond_set_agreement::runtime::outcome::{FirstOutcome, RandomOutcome, ScriptedOutcome};
use life_beyond_set_agreement::runtime::scheduler::{RandomScheduler, Scripted};
use life_beyond_set_agreement::runtime::system::System;

/// Every path the explorer reports must replay step-for-step in a live
/// system under a scripted scheduler + scripted outcomes, reaching the same
/// terminal decisions.
#[test]
fn explorer_paths_replay_in_live_systems() {
    let inputs = vec![int(0), int(1), int(2)];
    let protocol = ConsensusViaObject::new(inputs, ObjId(0));
    let objects = vec![AnyObject::consensus(3).unwrap()];
    let explorer = Explorer::new(&protocol, &objects);
    let graph = explorer.exploration().run().unwrap();
    assert!(graph.complete);

    for terminal in graph.terminal_indices() {
        let path = graph.path_to(terminal).expect("reachable");
        let pids: Vec<Pid> = path.iter().map(|e| e.pid).collect();
        let outcomes: Vec<usize> = path.iter().map(|e| e.outcome).collect();
        let mut sys = System::new(&protocol, &objects).unwrap();
        sys.run(
            &mut Scripted::new(pids),
            &mut ScriptedOutcome::new(outcomes),
            1_000,
        )
        .unwrap();
        let expected = graph.configs[terminal].decisions();
        let got: Vec<Option<Value>> = (0..3).map(|i| sys.decision(Pid(i))).collect();
        assert_eq!(got, expected, "replay diverged for terminal {terminal}");
    }
}

/// The runtime's trace, projected onto the PAC object, is always a legal
/// prefix — Algorithm 2 never upsets its PAC object (the crux of why it
/// works).
#[test]
fn algorithm_2_never_upsets_its_pac_object() {
    for seed in 0..25u64 {
        let protocol = DacFromPac::new(vec![int(1), int(0), int(0)], Pid(0), ObjId(0)).unwrap();
        let objects = vec![AnyObject::pac(3).unwrap()];
        let mut sys = System::new(&protocol, &objects).unwrap();
        sys.run(&mut RandomScheduler::seeded(seed), &mut FirstOutcome, 500)
            .unwrap();
        let ops: Vec<Op> = sys
            .trace()
            .object_history(ObjId(0))
            .iter()
            .map(|e| e.op)
            .collect();
        assert!(
            is_legal_pac_history(&ops),
            "Algorithm 2 produced an illegal PAC history (seed {seed})"
        );
    }
}

/// Non-termination witnesses found by the adversary replay in live systems:
/// pumping the cycle leaves every victim undecided.
#[test]
fn witnesses_pump_in_live_systems() {
    let inputs = vec![int(1), int(0), int(0)];
    let protocol = WaitForWinner::new(inputs);
    let objects = vec![AnyObject::consensus(2).unwrap(), AnyObject::register()];
    let graph = Explorer::new(&protocol, &objects)
        .exploration()
        .run()
        .unwrap();
    let witness = find_nontermination(&graph).expect("candidate must be refutable");

    for pumps in [1usize, 10, 100] {
        let schedule = witness.schedule(pumps);
        let budget = schedule.len() + 1;
        let mut sys = System::new(&protocol, &objects).unwrap();
        sys.run(&mut Scripted::new(schedule), &mut FirstOutcome, budget)
            .unwrap();
        for victim in &witness.victims {
            assert_eq!(
                sys.decision(*victim),
                None,
                "victim decided after {pumps} pumps"
            );
        }
    }
}

/// Valency analysis agrees with brute reachable-decision collection.
#[test]
fn valency_closure_matches_reachable_decisions() {
    let inputs = vec![int(0), int(1)];
    let protocol = ConsensusViaObject::new(inputs, ObjId(0));
    let objects = vec![AnyObject::consensus(2).unwrap()];
    let explorer = Explorer::new(&protocol, &objects);
    let graph = explorer.exploration().run().unwrap();
    let analysis = ValencyAnalysis::analyze(&graph);

    // Brute force: for each configuration, recompute reachable decisions by
    // a fresh sub-exploration and compare with the fixpoint closure.
    for (idx, config) in graph.configs.iter().enumerate() {
        let sub = explorer.exploration().from(config.clone()).run().unwrap();
        let mut brute: Vec<Value> = sub
            .configs
            .iter()
            .flat_map(|c| c.distinct_decisions())
            .collect();
        brute.sort();
        brute.dedup();
        let closure: Vec<Value> = analysis.closure(idx).iter().copied().collect();
        assert_eq!(closure, brute, "closure mismatch at configuration {idx}");
    }
}

/// A protocol cannot tell a derived (n,m)-PAC from a native one: exhaustive
/// terminal-outcome equivalence.
#[test]
fn derived_combined_pac_substitutes_for_native() {
    let inputs = vec![int(0), int(1)];
    let inner = ConsensusViaObject::via_propose_c(inputs, ObjId(0));

    let native_objects = vec![AnyObject::combined_pac(2, 2).unwrap()];
    let native = Explorer::new(&inner, &native_objects)
        .exploration()
        .run()
        .unwrap();
    let native_outcomes: std::collections::BTreeSet<Vec<Option<Value>>> = native
        .terminal_indices()
        .map(|t| native.configs[t].decisions())
        .collect();

    let procedure = CombinedFromComponents::new();
    let frontends = vec![CombinedFromComponents::frontend(ObjId(0), ObjId(1))];
    let derived = DerivedProtocol::new(&inner, &procedure, frontends);
    let base = vec![AnyObject::pac(2).unwrap(), AnyObject::consensus(2).unwrap()];
    let sim = Explorer::new(&derived, &base).exploration().run().unwrap();
    let sim_outcomes: std::collections::BTreeSet<Vec<Option<Value>>> = sim
        .terminal_indices()
        .map(|t| sim.configs[t].decisions())
        .collect();

    assert_eq!(native_outcomes, sim_outcomes);
}

/// The Lemma 6.4 implementation of O'_n produces linearizable histories
/// under many random schedules and outcome choices (n = 2, both levels
/// exercised concurrently).
#[test]
fn lemma_6_4_linearizable_under_contention() {
    let inputs: Vec<Value> = (0..4).map(int).collect();
    let inner = KSetViaPowerLevel::new(inputs, ObjId(0), 2);
    let procedure = PowerFromConsensusAndSa::new(2);
    let spec_objects = vec![AnyObject::o_prime_n(2, 2).unwrap()];
    for seed in 0..40u64 {
        let frontends = vec![PowerFromConsensusAndSa::frontend(vec![ObjId(0), ObjId(1)])];
        let derived = DerivedProtocol::new(&inner, &procedure, frontends);
        let objects = vec![AnyObject::consensus(2).unwrap(), AnyObject::strong_sa()];
        let (history, result) = record_frontend_history(
            &derived,
            &objects,
            &mut RandomScheduler::seeded(seed),
            &mut RandomOutcome::seeded(!seed),
            10_000,
        )
        .unwrap();
        assert!(result.all_decided());
        check_linearizable(&history, &spec_objects).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
