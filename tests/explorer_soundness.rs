//! Metamorphic soundness tests for the verification machinery itself: the
//! explorer, valency engine, adversary, and linearizability checker must
//! respect transformations whose effect we know a priori.

use life_beyond_set_agreement::core::value::int;
use life_beyond_set_agreement::core::{AnyObject, ObjId, Op, Pid, Value};
use life_beyond_set_agreement::explorer::adversary::find_nontermination;
use life_beyond_set_agreement::explorer::checker::check_consensus;
use life_beyond_set_agreement::explorer::linearizability::check_linearizable;
use life_beyond_set_agreement::explorer::sampling::{sample_consensus, SampleConfig};
use life_beyond_set_agreement::explorer::valency::ValencyAnalysis;
use life_beyond_set_agreement::explorer::Tracer;
use life_beyond_set_agreement::explorer::{Explorer, Limits};
use life_beyond_set_agreement::protocols::consensus_protocols::ConsensusViaObject;
use life_beyond_set_agreement::runtime::derived::CompletedOp;
use life_beyond_set_agreement::runtime::process::{Protocol, Step};

/// Wraps a protocol, adding an untouched spectator register to the object
/// table. Exploration results must be isomorphic.
#[derive(Debug)]
struct WithSpectator<'a, P>(&'a P);

impl<'a, P: Protocol> Protocol for WithSpectator<'a, P> {
    type LocalState = P::LocalState;
    fn num_processes(&self) -> usize {
        self.0.num_processes()
    }
    fn init(&self, pid: Pid) -> P::LocalState {
        self.0.init(pid)
    }
    fn pending_op(&self, pid: Pid, s: &P::LocalState) -> (ObjId, Op) {
        self.0.pending_op(pid, s)
    }
    fn on_response(&self, pid: Pid, s: &P::LocalState, r: Value) -> Step<P::LocalState> {
        self.0.on_response(pid, s, r)
    }
}

/// Adding an object nobody touches changes nothing: same configuration
/// count, same transitions, same valency census, same verdicts.
#[test]
fn inert_objects_do_not_change_anything() {
    let inputs = vec![int(0), int(1)];
    let p = ConsensusViaObject::new(inputs.clone(), ObjId(0));
    let objects = vec![AnyObject::consensus(2).unwrap()];
    let g1 = Explorer::new(&p, &objects).exploration().run().unwrap();
    let va1 = ValencyAnalysis::analyze(&g1);

    let wrapped = WithSpectator(&p);
    let more_objects = vec![AnyObject::consensus(2).unwrap(), AnyObject::register()];
    let ex2 = Explorer::new(&wrapped, &more_objects);
    let g2 = ex2.exploration().run().unwrap();
    let va2 = ValencyAnalysis::analyze(&g2);

    assert_eq!(g1.configs.len(), g2.configs.len());
    assert_eq!(g1.transitions, g2.transitions);
    assert_eq!(va1.census(), va2.census());
    assert!(check_consensus(&ex2, &inputs, Limits::default()).is_ok());
}

/// Renaming proposal values bijectively commutes with everything: the graph
/// sizes and valence censuses are identical, and decisions map through the
/// renaming.
#[test]
fn value_renaming_commutes_with_exploration() {
    let rename = |v: i64| v + 100;
    let a = ConsensusViaObject::new(vec![int(0), int(1)], ObjId(0));
    let b = ConsensusViaObject::new(vec![int(rename(0)), int(rename(1))], ObjId(0));
    let objects = vec![AnyObject::consensus(2).unwrap()];

    let ga = Explorer::new(&a, &objects).exploration().run().unwrap();
    let gb = Explorer::new(&b, &objects).exploration().run().unwrap();
    assert_eq!(ga.configs.len(), gb.configs.len());
    assert_eq!(ga.transitions, gb.transitions);

    let outcomes = |g: &life_beyond_set_agreement::explorer::ExplorationGraph<()>| {
        let mut v: Vec<Vec<Value>> = g
            .terminal_indices()
            .map(|t| g.configs[t].distinct_decisions())
            .collect();
        v.sort();
        v
    };
    let mapped: Vec<Vec<Value>> = outcomes(&ga)
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|v| int(rename(v.as_int().unwrap())))
                .collect()
        })
        .collect();
    assert_eq!(mapped, outcomes(&gb));
}

/// Exploration is deterministic: two runs produce identical graphs.
#[test]
fn exploration_is_deterministic() {
    let p = ConsensusViaObject::new(vec![int(0), int(1), int(2)], ObjId(0));
    let objects = vec![AnyObject::consensus(3).unwrap()];
    let ex = Explorer::new(&p, &objects);
    let g1 = ex.exploration().run().unwrap();
    let g2 = ex.exploration().run().unwrap();
    assert_eq!(g1.configs, g2.configs);
    assert_eq!(g1.transitions, g2.transitions);
    for (e1, e2) in g1.edges.iter().zip(g2.edges.iter()) {
        assert_eq!(e1, e2);
    }
}

/// Valency closures are monotone along edges: a successor's closure is a
/// subset of its source's.
#[test]
fn closures_shrink_along_edges() {
    let p = ConsensusViaObject::new(vec![int(0), int(1), int(2)], ObjId(0));
    let objects = vec![AnyObject::consensus(3).unwrap()];
    let g = Explorer::new(&p, &objects).exploration().run().unwrap();
    let va = ValencyAnalysis::analyze(&g);
    for (i, edges) in g.edges.iter().enumerate() {
        for e in edges {
            assert!(
                va.closure(e.target).is_subset(va.closure(i)),
                "closure grew along an edge {i} -> {}",
                e.target
            );
        }
    }
}

/// Wait-free protocols have no non-termination witness on ANY complete
/// graph; conversely the sampling checker and the exhaustive checker agree
/// on correct protocols.
#[test]
fn samplers_and_exhaustive_checkers_agree_on_correct_protocols() {
    let inputs = vec![int(0), int(1), int(0)];
    let p = ConsensusViaObject::new(inputs.clone(), ObjId(0));
    let objects = vec![AnyObject::consensus(3).unwrap()];
    let ex = Explorer::new(&p, &objects);
    assert!(check_consensus(&ex, &inputs, Limits::default()).is_ok());
    let g = ex.exploration().run().unwrap();
    assert_eq!(find_nontermination(&g), None);
    let report = sample_consensus(
        &p,
        &objects,
        &inputs,
        SampleConfig {
            runs: 100,
            seed0: 0,
            max_steps: 1000,
            ..SampleConfig::default()
        },
        &Tracer::disabled(),
    )
    .unwrap();
    assert_eq!(report.quiescent, 100);
}

/// Linearizability is monotone under history extension by a fresh,
/// non-overlapping correct operation, and anti-monotone under response
/// corruption.
#[test]
fn linearizability_metamorphic_properties() {
    let specs = vec![AnyObject::consensus(3).unwrap()];
    let base = vec![
        CompletedOp {
            pid: Pid(0),
            obj: ObjId(0),
            op: Op::Propose(int(5)),
            response: int(5),
            invoked_at: 0,
            responded_at: 1,
        },
        CompletedOp {
            pid: Pid(1),
            obj: ObjId(0),
            op: Op::Propose(int(7)),
            response: int(5),
            invoked_at: 2,
            responded_at: 3,
        },
    ];
    assert!(check_linearizable(&base, &specs).is_ok());

    // Extend with a correct later op: still linearizable.
    let mut extended = base.clone();
    extended.push(CompletedOp {
        pid: Pid(2),
        obj: ObjId(0),
        op: Op::Propose(int(9)),
        response: int(5),
        invoked_at: 4,
        responded_at: 5,
    });
    assert!(check_linearizable(&extended, &specs).is_ok());

    // Corrupt any single response: no longer linearizable.
    for i in 0..extended.len() {
        let mut bad = extended.clone();
        bad[i].response = int(999);
        assert!(
            check_linearizable(&bad, &specs).is_err(),
            "corrupting op {i} must break linearizability"
        );
    }

    // Shifting all timestamps uniformly preserves the verdict.
    let mut shifted = extended.clone();
    for op in &mut shifted {
        op.invoked_at += 1000;
        op.responded_at += 1000;
    }
    assert!(check_linearizable(&shifted, &specs).is_ok());
}

/// A truncated exploration is always a prefix of the full one: every config
/// in the truncated graph appears in the complete graph.
#[test]
fn truncated_graphs_are_prefixes() {
    let p = ConsensusViaObject::new(vec![int(0), int(1), int(2)], ObjId(0));
    let objects = vec![AnyObject::consensus(3).unwrap()];
    let ex = Explorer::new(&p, &objects);
    let full = ex.exploration().run().unwrap();
    assert!(full.complete);
    let partial = ex.exploration().max_configs(3).run().unwrap();
    assert!(!partial.complete);
    assert!(partial.configs.len() <= full.configs.len());
    for c in &partial.configs {
        assert!(
            full.configs.contains(c),
            "truncated graph invented a configuration"
        );
    }
}
