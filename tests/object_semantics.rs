//! Systematic object-semantics tests: for every object family, the full
//! operation matrix — which operations it accepts, what the budget/upset
//! saturation looks like, and cross-family consistency facts the other
//! crates rely on.

use life_beyond_set_agreement::core::ids::Label;
use life_beyond_set_agreement::core::spec::ObjectSpec;
use life_beyond_set_agreement::core::value::int;
use life_beyond_set_agreement::core::{AnyObject, Op, SpecError, Value};

fn l(i: usize) -> Label {
    Label::new(i).unwrap()
}

/// Every operation in the alphabet, with a representative payload.
fn full_alphabet() -> Vec<Op> {
    vec![
        Op::Read,
        Op::Write(int(1)),
        Op::Propose(int(1)),
        Op::ProposePac(int(1), l(1)),
        Op::DecidePac(l(1)),
        Op::ProposeC(int(1)),
        Op::ProposeP(int(1), l(1)),
        Op::DecideP(l(1)),
        Op::ProposeAt(int(1), 1),
        Op::TestAndSet,
        Op::FetchAdd(1),
        Op::CompareAndSwap(Value::Nil, int(1)),
        Op::Enqueue(int(1)),
        Op::Dequeue,
    ]
}

/// The exact accepted-operation matrix: each object must accept exactly its
/// own interface and reject everything else with `UnsupportedOp`.
#[test]
fn acceptance_matrix_is_exact() {
    let cases: Vec<(AnyObject, Vec<Op>)> = vec![
        (AnyObject::register(), vec![Op::Read, Op::Write(int(1))]),
        (AnyObject::consensus(2).unwrap(), vec![Op::Propose(int(1))]),
        (
            AnyObject::pac(2).unwrap(),
            vec![Op::ProposePac(int(1), l(1)), Op::DecidePac(l(1))],
        ),
        (AnyObject::strong_sa(), vec![Op::Propose(int(1))]),
        (
            AnyObject::set_agreement(2, 1).unwrap(),
            vec![Op::Propose(int(1))],
        ),
        (
            AnyObject::combined_pac(2, 2).unwrap(),
            vec![
                Op::ProposeC(int(1)),
                Op::ProposeP(int(1), l(1)),
                Op::DecideP(l(1)),
            ],
        ),
        (
            AnyObject::o_prime_n(2, 2).unwrap(),
            vec![Op::ProposeAt(int(1), 1)],
        ),
        (AnyObject::test_and_set(), vec![Op::Read, Op::TestAndSet]),
        (AnyObject::fetch_add(), vec![Op::Read, Op::FetchAdd(1)]),
        (
            AnyObject::cas(),
            vec![
                Op::Read,
                Op::Write(int(1)),
                Op::CompareAndSwap(Value::Nil, int(1)),
            ],
        ),
        (AnyObject::queue(), vec![Op::Enqueue(int(1)), Op::Dequeue]),
    ];
    for (obj, accepted) in cases {
        let state = obj.initial_state();
        for op in full_alphabet() {
            let result = obj.outcomes(&state, &op);
            if accepted.contains(&op) {
                assert!(
                    result.is_ok(),
                    "{} must accept {op}: {result:?}",
                    obj.name()
                );
            } else {
                assert!(
                    matches!(result, Err(SpecError::UnsupportedOp { .. })),
                    "{} must reject {op}, got {result:?}",
                    obj.name()
                );
            }
        }
    }
}

/// Applying any accepted operation never panics and always yields at least
/// one outcome, across a few steps of state evolution.
#[test]
fn outcomes_are_total_on_accepted_ops() {
    let objects = vec![
        AnyObject::register(),
        AnyObject::consensus(2).unwrap(),
        AnyObject::pac(2).unwrap(),
        AnyObject::strong_sa(),
        AnyObject::set_agreement(3, 2).unwrap(),
        AnyObject::combined_pac(2, 2).unwrap(),
        AnyObject::o_prime_n(2, 2).unwrap(),
        AnyObject::test_and_set(),
        AnyObject::fetch_add(),
        AnyObject::cas(),
        AnyObject::queue(),
    ];
    for obj in objects {
        let mut states = vec![obj.initial_state()];
        for _round in 0..3 {
            let mut next_states = Vec::new();
            for state in &states {
                for op in full_alphabet() {
                    if let Ok(outs) = obj.outcomes(state, &op) {
                        assert!(!outs.is_empty());
                        for (_, s) in outs.into_vec() {
                            next_states.push(s);
                        }
                    }
                }
            }
            next_states.truncate(8); // keep the walk small
            if next_states.is_empty() {
                break;
            }
            states = next_states;
        }
    }
}

/// All propose-style faces reject reserved values uniformly.
#[test]
#[allow(clippy::type_complexity)]
fn reserved_values_rejected_uniformly() {
    let cases: Vec<(AnyObject, fn(Value) -> Op)> = vec![
        (AnyObject::consensus(2).unwrap(), Op::Propose),
        (AnyObject::strong_sa(), Op::Propose),
        (AnyObject::set_agreement(2, 1).unwrap(), Op::Propose),
        (AnyObject::combined_pac(2, 2).unwrap(), Op::ProposeC),
        (AnyObject::pac(2).unwrap(), |v| {
            Op::ProposePac(v, Label::new(1).unwrap())
        }),
        (AnyObject::o_prime_n(2, 2).unwrap(), |v| Op::ProposeAt(v, 1)),
    ];
    for (obj, mk) in cases {
        let state = obj.initial_state();
        for v in [Value::Nil, Value::Bot, Value::Done] {
            assert_eq!(
                obj.outcomes(&state, &mk(v)).unwrap_err(),
                SpecError::ReservedValue(v),
                "{} must reject proposing {v}",
                obj.name()
            );
        }
    }
}

/// Budget saturation freezes state everywhere it exists: consensus objects,
/// (n,k)-SA ports, and O'ₙ levels never grow their state after exhaustion.
#[test]
fn budget_saturation_freezes_state() {
    // Consensus.
    let obj = AnyObject::consensus(2).unwrap();
    let mut s = obj.initial_state();
    for _ in 0..2 {
        s = obj
            .outcomes(&s, &Op::Propose(int(1)))
            .unwrap()
            .into_single()
            .1;
    }
    let frozen = s.clone();
    for v in [3i64, 4, 5] {
        let (resp, next) = obj
            .outcomes(&s, &Op::Propose(int(v)))
            .unwrap()
            .into_single();
        assert_eq!(resp, Value::Bot);
        assert_eq!(next, frozen);
        s = next;
    }

    // (2,1)-SA.
    let obj = AnyObject::set_agreement(2, 1).unwrap();
    let mut s = obj.initial_state();
    for v in [1i64, 2] {
        s = obj
            .outcomes(&s, &Op::Propose(int(v)))
            .unwrap()
            .into_vec()
            .pop()
            .unwrap()
            .1;
    }
    let frozen = s.clone();
    let (resp, next) = obj
        .outcomes(&s, &Op::Propose(int(3)))
        .unwrap()
        .into_single();
    assert_eq!(resp, Value::Bot);
    assert_eq!(next, frozen);

    // O'_2 level 1 (its (2,1)-SA component).
    let obj = AnyObject::o_prime_n(2, 2).unwrap();
    let mut s = obj.initial_state();
    for v in [1i64, 2] {
        s = obj
            .outcomes(&s, &Op::ProposeAt(int(v), 1))
            .unwrap()
            .into_vec()
            .pop()
            .unwrap()
            .1;
    }
    let (resp, _) = obj
        .outcomes(&s, &Op::ProposeAt(int(3), 1))
        .unwrap()
        .into_single();
    assert_eq!(resp, Value::Bot);
}

/// The (n,m)-PAC faces behave bit-for-bit like their standalone components:
/// driving both through identical op sequences yields identical responses.
#[test]
fn combined_pac_faces_match_components_bit_for_bit() {
    let combined = AnyObject::combined_pac(2, 2).unwrap();
    let pac = AnyObject::pac(2).unwrap();
    let cons = AnyObject::consensus(2).unwrap();

    let pac_ops = [
        Op::ProposePac(int(1), l(1)),
        Op::DecidePac(l(1)),
        Op::ProposePac(int(2), l(2)),
        Op::ProposePac(int(3), l(1)),
        Op::DecidePac(l(2)),
        Op::DecidePac(l(1)),
        Op::DecidePac(l(2)),
    ];
    let combined_ops = [
        Op::ProposeP(int(1), l(1)),
        Op::DecideP(l(1)),
        Op::ProposeP(int(2), l(2)),
        Op::ProposeP(int(3), l(1)),
        Op::DecideP(l(2)),
        Op::DecideP(l(1)),
        Op::DecideP(l(2)),
    ];
    let mut cs = combined.initial_state();
    let mut ps = pac.initial_state();
    for (cop, pop) in combined_ops.iter().zip(pac_ops.iter()) {
        let cr = combined.apply_deterministic(&mut cs, cop).unwrap();
        let pr = pac.apply_deterministic(&mut ps, pop).unwrap();
        assert_eq!(cr, pr, "PAC face diverged on {pop}");
    }

    let mut cs = combined.initial_state();
    let mut ks = cons.initial_state();
    for v in [5i64, 6, 7] {
        let cr = combined
            .apply_deterministic(&mut cs, &Op::ProposeC(int(v)))
            .unwrap();
        let kr = cons
            .apply_deterministic(&mut ks, &Op::Propose(int(v)))
            .unwrap();
        assert_eq!(cr, kr, "consensus face diverged on {v}");
    }
}

/// O'ₙ's level 1 behaves bit-for-bit like an (n,1)-SA object, which in turn
/// matches an n-consensus object on propose sequences.
#[test]
fn power_level_1_matches_consensus_semantics() {
    let o_prime = AnyObject::o_prime_n(3, 2).unwrap();
    let cons = AnyObject::consensus(3).unwrap();
    let mut ps = o_prime.initial_state();
    let mut ks = cons.initial_state();
    for v in [9i64, 8, 7, 6, 5] {
        let pr = o_prime
            .outcomes(&ps, &Op::ProposeAt(int(v), 1))
            .unwrap()
            .into_single();
        let kr = cons
            .outcomes(&ks, &Op::Propose(int(v)))
            .unwrap()
            .into_single();
        assert_eq!(pr.0, kr.0, "level 1 diverged from consensus on {v}");
        ps = pr.1;
        ks = kr.1;
    }
}

/// Upset is absorbing across the PAC family: once upset, no operation
/// sequence ever clears it (checked on a short random-ish walk).
#[test]
fn upset_is_absorbing_through_the_combined_face() {
    let obj = AnyObject::combined_pac(2, 2).unwrap();
    let mut s = obj.initial_state();
    // Upset via a bare decide.
    obj.apply_deterministic(&mut s, &Op::DecideP(l(1))).unwrap();
    let ops = [
        Op::ProposeP(int(1), l(1)),
        Op::ProposeC(int(2)),
        Op::DecideP(l(2)),
        Op::ProposeP(int(3), l(2)),
        Op::DecideP(l(1)),
    ];
    for op in ops {
        obj.apply_deterministic(&mut s, &op).unwrap();
        if let life_beyond_set_agreement::core::AnyState::CombinedPac(inner) = &s {
            assert!(inner.pac.upset, "upset must be absorbing");
        } else {
            panic!("state family changed");
        }
        // Decides keep returning ⊥.
        let (resp, _) = obj.outcomes(&s, &Op::DecideP(l(1))).unwrap().into_single();
        assert_eq!(resp, Value::Bot);
    }
}
