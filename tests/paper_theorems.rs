//! End-to-end integration tests: every theorem, lemma, and observation of
//! *Life Beyond Set Agreement* that has an executable statement, checked
//! through the public API of the facade crate.

use life_beyond_set_agreement::core::history::{
    check_pac_properties, for_each_op_sequence, is_legal_pac_history, pac_op_alphabet, run_pac,
};
use life_beyond_set_agreement::core::pac::PacSpec;
use life_beyond_set_agreement::core::spec::ObjectSpec;
use life_beyond_set_agreement::core::value::int;
use life_beyond_set_agreement::core::{AnyObject, ObjId, Pid, Value};
use life_beyond_set_agreement::explorer::checker::{
    check_consensus, check_dac, check_k_set_agreement, DacInstance, Violation,
};
use life_beyond_set_agreement::explorer::{Explorer, Limits};
use life_beyond_set_agreement::hierarchy::certify::{certified_consensus_number, Face};
use life_beyond_set_agreement::hierarchy::power::{
    certify_power_table_o_n, certify_power_table_o_prime,
};
use life_beyond_set_agreement::hierarchy::separation::run_separation;
use life_beyond_set_agreement::protocols::candidates::{
    CandidatePacProcedure, SaThenConsensus, ValAgreement, WaitForWinner,
};
use life_beyond_set_agreement::protocols::consensus_protocols::ConsensusViaObject;
use life_beyond_set_agreement::protocols::dac::{all_binary_inputs, DacFromPac};
use life_beyond_set_agreement::protocols::set_agreement_protocols::GroupSplitKSet;
use life_beyond_set_agreement::runtime::derived::DerivedProtocol;

/// Section 3 / Theorem 3.5: the PAC object's three properties hold on every
/// operation sequence (exhaustive sweep, n = 2).
#[test]
fn section_3_pac_properties_exhaustive() {
    let spec = PacSpec::new(2).unwrap();
    let alphabet = pac_op_alphabet(2, &[int(1), int(2)]);
    let mut sequences = 0usize;
    for_each_op_sequence(&alphabet, 5, |ops| {
        sequences += 1;
        let history = run_pac(&spec, ops).unwrap();
        check_pac_properties(&history)
            .unwrap_or_else(|v| panic!("theorem 3.5 violated on {ops:?}: {v}"));
        // Lemma 3.2 on the full sequence.
        let mut state = spec.initial_state();
        for op in ops {
            spec.apply_deterministic(&mut state, op).unwrap();
        }
        assert_eq!(spec.is_upset(&state), !is_legal_pac_history(ops));
    });
    assert!(sequences > 9000, "sweep unexpectedly small: {sequences}");
}

/// Theorem 4.1: Algorithm 2 solves n-DAC, n = 2 and 3, all binary inputs,
/// all distinguished-process choices.
#[test]
fn theorem_4_1_algorithm_2_solves_dac() {
    for n in [2usize, 3] {
        for inputs in all_binary_inputs(n) {
            for p in 0..n {
                let protocol = DacFromPac::new(inputs.clone(), Pid(p), ObjId(0)).unwrap();
                let objects = vec![AnyObject::pac(n).unwrap()];
                let explorer = Explorer::new(&protocol, &objects);
                check_dac(&explorer, &protocol.instance(), Limits::default(), 6 * n)
                    .unwrap_or_else(|v| {
                        panic!("{n}-DAC violated (p = {p}, inputs {inputs:?}): {v}")
                    });
            }
        }
    }
}

/// Theorem 4.2 (executable form): the candidate (n+1)-consensus/DAC
/// protocols over {n-consensus, registers, 2-SA} are all refuted.
#[test]
fn theorem_4_2_candidates_refuted() {
    let inputs = vec![int(1), int(0), int(0)];

    let p = WaitForWinner::new(inputs.clone());
    let objects = vec![AnyObject::consensus(2).unwrap(), AnyObject::register()];
    let ex = Explorer::new(&p, &objects);
    assert!(matches!(
        check_consensus(&ex, &inputs, Limits::default()),
        Err(Violation::NonTermination(_))
    ));

    let p = SaThenConsensus::new(inputs.clone());
    let objects = vec![AnyObject::strong_sa(), AnyObject::consensus(2).unwrap()];
    let ex = Explorer::new(&p, &objects);
    assert!(matches!(
        check_consensus(&ex, &inputs, Limits::default()),
        Err(Violation::Agreement { .. })
    ));
}

/// Theorem 4.3 (executable form): the candidate (n+1)-PAC implementation
/// from n-consensus + registers is refuted by running Algorithm 2 over it.
#[test]
fn theorem_4_3_candidate_pac_implementation_refuted() {
    let inputs = vec![int(1), int(0), int(0)];
    let inner = DacFromPac::new(inputs.clone(), Pid(0), ObjId(0)).unwrap();
    let procedure = CandidatePacProcedure::new(3, ValAgreement::ConsensusObject);
    let frontends = vec![CandidatePacProcedure::frontend(
        ObjId(0),
        ObjId(1),
        vec![ObjId(2), ObjId(3), ObjId(4)],
    )];
    let derived = DerivedProtocol::new(&inner, &procedure, frontends);
    let mut objects = vec![AnyObject::consensus(2).unwrap()];
    objects.extend((0..4).map(|_| AnyObject::register()));
    let ex = Explorer::new(&derived, &objects);
    let instance = DacInstance {
        distinguished: Pid(0),
        inputs,
    };
    assert!(check_dac(&ex, &instance, Limits::default(), 60).is_err());
}

/// Theorem 5.3 / Observation 6.2: (n,m)-PAC certifies at level m; O_n at
/// level n; O'_n at level n.
#[test]
fn theorem_5_3_certified_levels() {
    let limits = Limits::default();
    let cases: Vec<(AnyObject, Face, usize)> = vec![
        (AnyObject::combined_pac(5, 2).unwrap(), Face::ProposeC, 2),
        (AnyObject::combined_pac(2, 3).unwrap(), Face::ProposeC, 3),
        (AnyObject::o_n(2).unwrap(), Face::ProposeC, 2),
        (AnyObject::o_n(3).unwrap(), Face::ProposeC, 3),
        (AnyObject::o_prime_n(2, 2).unwrap(), Face::PowerLevel1, 2),
        (AnyObject::o_prime_n(3, 2).unwrap(), Face::PowerLevel1, 3),
    ];
    for (object, face, expected) in cases {
        let cert = certified_consensus_number(&object, face, 5, limits).unwrap();
        assert_eq!(cert.level, expected, "{} misplaced", object.name());
    }
}

/// Section 6: the certified power tables of O_n and O'_n agree, for n = 2
/// and 3.
#[test]
fn corollary_6_6_power_tables_agree() {
    for n in [2usize, 3] {
        let a = certify_power_table_o_n(n, 2, Limits::default()).unwrap();
        let b = certify_power_table_o_prime(n, 2, Limits::default()).unwrap();
        assert_eq!(a, b, "power tables differ at n = {n}");
        assert_eq!(a.n_k(1), Some(n));
        assert_eq!(a.n_k(2), Some(2 * n));
    }
}

/// The full separation pipeline (Corollaries 6.6/6.7) at n = 2.
#[test]
fn corollary_6_6_separation_pipeline() {
    let report = run_separation(2, 2, Limits::default(), 6).unwrap();
    assert!(report.powers_match());
    assert!(report.separation_established());
    assert_eq!(report.refutations.len(), 2);
}

/// The group-split protocol behind the power tables: k-set agreement among
/// k·n processes via k instances of O_n, exhaustively (n = 2, k = 2).
#[test]
fn group_split_over_o_n_certifies_lower_bound() {
    let inputs: Vec<Value> = (0..4).map(int).collect();
    let protocol = GroupSplitKSet::via_combined(inputs.clone(), 2).unwrap();
    let objects = vec![AnyObject::o_n(2).unwrap(), AnyObject::o_n(2).unwrap()];
    let explorer = Explorer::new(&protocol, &objects);
    check_k_set_agreement(&explorer, 2, &inputs, Limits::default()).unwrap();
    // And the same protocol does NOT achieve consensus.
    assert!(check_k_set_agreement(&explorer, 1, &inputs, Limits::default()).is_err());
}

/// Footnote 6's consensus object semantics drive the hierarchy: n processes
/// succeed, n+1 fail, across faces.
#[test]
fn consensus_object_budget_consistency_across_faces() {
    for n in [2usize, 3] {
        // Native face.
        let inputs: Vec<Value> = (0..n).map(|i| int(i as i64 % 2)).collect();
        let p = ConsensusViaObject::new(inputs.clone(), ObjId(0));
        let objects = vec![AnyObject::consensus(n).unwrap()];
        let ex = Explorer::new(&p, &objects);
        assert!(check_consensus(&ex, &inputs, Limits::default()).is_ok());

        // The same budget shows through O_n's consensus face.
        let mut more = inputs.clone();
        more.push(int(1));
        let p = ConsensusViaObject::via_propose_c(more.clone(), ObjId(0));
        let objects = vec![AnyObject::o_n(n).unwrap()];
        let ex = Explorer::new(&p, &objects);
        assert!(check_consensus(&ex, &more, Limits::default()).is_err());
    }
}

/// Section 7 / Theorem 7.1 (m = 2, n = 3): the (4,2)-PAC is at level 2 but
/// its PAC face resists implementation from a 3-consensus object (level 3!)
/// plus registers.
#[test]
fn theorem_7_1_qadri_instance() {
    // Level placements.
    let target = AnyObject::combined_pac(4, 2).unwrap();
    let cert = certified_consensus_number(&target, Face::ProposeC, 4, Limits::default()).unwrap();
    assert_eq!(cert.level, 2);
    let base = AnyObject::consensus(3).unwrap();
    let cert = certified_consensus_number(&base, Face::Propose, 4, Limits::default()).unwrap();
    assert_eq!(cert.level, 3);

    // Refute the candidate implementation of the 4-PAC face.
    let inputs = vec![int(1), int(0), int(0), int(0)];
    let inner = DacFromPac::new(inputs.clone(), Pid(0), ObjId(0)).unwrap();
    let procedure = CandidatePacProcedure::new(4, ValAgreement::ConsensusObject);
    let frontends = vec![CandidatePacProcedure::frontend(
        ObjId(0),
        ObjId(1),
        vec![ObjId(2), ObjId(3), ObjId(4), ObjId(5)],
    )];
    let derived = DerivedProtocol::new(&inner, &procedure, frontends);
    let mut objects = vec![AnyObject::consensus(3).unwrap()];
    objects.extend((0..5).map(|_| AnyObject::register()));
    let ex = Explorer::new(&derived, &objects);
    let instance = DacInstance {
        distinguished: Pid(0),
        inputs,
    };
    assert!(check_dac(&ex, &instance, Limits::new(5_000_000), 80).is_err());
}
