//! Integration tests for the `lbsa` command-line driver, exercised as a
//! real subprocess (Cargo builds the binary and exposes its path via
//! `CARGO_BIN_EXE_lbsa`).

use std::process::{Command, Output};

fn lbsa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lbsa"))
        .args(args)
        .output()
        .expect("the lbsa binary must run")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = lbsa(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage: lbsa"));
}

#[test]
fn unknown_command_prints_usage() {
    let out = lbsa(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage"));
}

#[test]
fn dac_verifies_and_reports() {
    let out = lbsa(&["dac", "2"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Theorem 4.1 verified for n = 2"));
    assert!(text.contains("70 configurations"));
}

#[test]
fn dac_rejects_out_of_range_n() {
    let out = lbsa(&["dac", "7"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("2..=4"));
    let out = lbsa(&["dac", "banana"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("not a number"));
}

#[test]
fn adversary_emits_a_verified_certificate() {
    let out = lbsa(&["adversary"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("candidate refuted"));
    assert!(text.contains("certificate verifies: true"));
    assert!(text.contains("schedule (3 pumps)"));
}

#[test]
fn dot_emits_valid_looking_graphviz() {
    let out = lbsa(&["dot", "race", "2"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.starts_with("digraph execution {"));
    assert!(text.contains("n0 [label="));
    assert!(text.trim_end().ends_with('}'));
}

#[test]
fn dot_rejects_unknown_workload() {
    let out = lbsa(&["dot", "nonsense", "2"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown workload"));
}

#[test]
fn separation_pipeline_runs_end_to_end() {
    let out = lbsa(&["separation", "2", "2"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("powers match: true"));
    assert!(text.contains("separation established: true"));
    assert!(text.contains("refuted:"));
}

#[test]
fn levels_table_contains_the_papers_objects() {
    let out = lbsa(&["levels"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    for name in ["2-consensus", "2-SA", "O_2", "O'_2", "O_3"] {
        assert!(text.contains(name), "missing row for {name}:\n{text}");
    }
}
