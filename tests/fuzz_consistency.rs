//! Whole-pipeline fuzzing: random straight-line workloads over random
//! object mixes, cross-validating the independent components against each
//! other:
//!
//! 1. the execution graphs of straight-line workloads are acyclic and
//!    complete;
//! 2. every concrete (sampled) run's outcome appears among the explorer's
//!    terminal outcomes — the sampler is an *underapproximation* of the
//!    exhaustive graph;
//! 3. every trace the runtime records is replayable through the sequential
//!    specifications — each recorded response is an admissible outcome in
//!    sequence (the runtime agrees with the specs);
//! 4. the trace, converted to a concurrent history of instantaneous ops, is
//!    linearizable (sanity of the linearizability checker on real traces).

use lbsa_support::check::run_cases;
use lbsa_support::rng::SmallRng;
use life_beyond_set_agreement::core::ids::Label;
use life_beyond_set_agreement::core::spec::ObjectSpec;
use life_beyond_set_agreement::core::value::int;
use life_beyond_set_agreement::core::{AnyObject, AnyState, ObjId, Op, Value};
use life_beyond_set_agreement::explorer::linearizability::check_linearizable;
use life_beyond_set_agreement::explorer::Explorer;
use life_beyond_set_agreement::runtime::derived::CompletedOp;
use life_beyond_set_agreement::runtime::outcome::RandomOutcome;
use life_beyond_set_agreement::runtime::scheduler::RandomScheduler;
use life_beyond_set_agreement::runtime::script::{ScriptEnd, ScriptProtocol};
use life_beyond_set_agreement::runtime::system::System;
use std::collections::BTreeSet;

/// The fuzzed object universe: a register, a 2-consensus, a 2-SA, and a
/// 2-PAC.
fn universe() -> Vec<AnyObject> {
    vec![
        AnyObject::register(),
        AnyObject::consensus(2).unwrap(),
        AnyObject::strong_sa(),
        AnyObject::pac(2).unwrap(),
    ]
}

/// A random operation valid for object `obj` in the universe.
fn random_op_for(rng: &mut SmallRng, obj: usize) -> Op {
    match obj {
        0 => {
            if rng.ratio(1, 2) {
                Op::Read
            } else {
                Op::Write(int(rng.i64_range(1..4)))
            }
        }
        1 | 2 => Op::Propose(int(rng.i64_range(1..4))),
        _ => {
            let label = Label::new(rng.random_range(0..2) + 1).unwrap();
            if rng.ratio(1, 2) {
                Op::ProposePac(int(rng.i64_range(1..4)), label)
            } else {
                Op::DecidePac(label)
            }
        }
    }
}

/// A random per-process script of 1..=3 operations.
fn random_script(rng: &mut SmallRng) -> Vec<(ObjId, Op)> {
    let len = rng.random_range(1..4);
    (0..len)
        .map(|_| {
            let obj = rng.random_range(0..4);
            (ObjId(obj), random_op_for(rng, obj))
        })
        .collect()
}

/// A random workload of 2..=3 processes.
fn random_workload(rng: &mut SmallRng) -> Vec<Vec<(ObjId, Op)>> {
    let procs = rng.random_range(2..4);
    (0..procs).map(|_| random_script(rng)).collect()
}

/// Replays a trace through the sequential specs, verifying every recorded
/// response is admissible, and returns the per-step validity.
fn trace_replays(objects: &[AnyObject], sys: &System<'_, ScriptProtocol>) -> bool {
    let mut states: Vec<AnyState> = objects.iter().map(ObjectSpec::initial_state).collect();
    for event in sys.trace().iter() {
        let outs = match objects[event.obj.index()].outcomes(&states[event.obj.index()], &event.op)
        {
            Ok(o) => o.into_vec(),
            Err(_) => return false,
        };
        match outs.into_iter().find(|(resp, _)| *resp == event.response) {
            Some((_, next)) => states[event.obj.index()] = next,
            None => return false, // recorded response not admissible
        }
    }
    true
}

/// Cross-validation of explorer, sampler, runtime, and checker on random
/// workloads.
#[test]
fn pipeline_components_agree_on_random_workloads() {
    run_cases("pipeline_agreement", 48, |rng| {
        let scripts = random_workload(rng);
        let seed = rng.next_u64();
        let protocol = ScriptProtocol::new(scripts, ScriptEnd::DecideLast).unwrap();
        let objects = universe();

        // 1. Straight-line workloads explore completely and acyclically.
        let explorer = Explorer::new(&protocol, &objects);
        let graph = explorer.exploration().max_configs(500_000).run().unwrap();
        assert!(graph.complete);
        assert!(!graph.has_cycle(), "straight-line programs cannot cycle");

        let explored_outcomes: BTreeSet<Vec<Option<Value>>> = graph
            .terminal_indices()
            .map(|t| graph.configs[t].decisions())
            .collect();

        // 2. A concrete random run's outcome is among the explored ones.
        let mut sys = System::new(&protocol, &objects).unwrap();
        let result = sys
            .run(
                &mut RandomScheduler::seeded(seed),
                &mut RandomOutcome::seeded(!seed),
                10_000,
            )
            .unwrap();
        assert!(result.is_quiescent());
        assert!(
            explored_outcomes.contains(&result.decisions),
            "sampled outcome {:?} missing from {} explored outcomes",
            result.decisions,
            explored_outcomes.len()
        );

        // 3. The recorded trace replays through the sequential specs.
        assert!(trace_replays(&objects, &sys), "trace not spec-admissible");

        // 4. The trace, as a history of instantaneous operations, is
        //    linearizable (each op's interval is its single step).
        let history: Vec<CompletedOp> = sys
            .trace()
            .iter()
            .map(|e| CompletedOp {
                pid: e.pid,
                obj: e.obj,
                op: e.op,
                response: e.response,
                invoked_at: e.step,
                responded_at: e.step,
            })
            .collect();
        assert!(check_linearizable(&history, &objects).is_ok());
    });
}

/// The explorer's terminal-outcome set is closed under schedule choice:
/// running the SAME workload under round-robin also lands inside it.
#[test]
fn round_robin_outcomes_are_explored() {
    use life_beyond_set_agreement::runtime::outcome::FirstOutcome;
    use life_beyond_set_agreement::runtime::scheduler::RoundRobin;
    run_cases("round_robin_explored", 48, |rng| {
        let scripts = random_workload(rng);
        let protocol = ScriptProtocol::new(scripts, ScriptEnd::DecideLast).unwrap();
        let objects = universe();
        let explorer = Explorer::new(&protocol, &objects);
        let graph = explorer.exploration().max_configs(500_000).run().unwrap();
        let explored: BTreeSet<Vec<Option<Value>>> = graph
            .terminal_indices()
            .map(|t| graph.configs[t].decisions())
            .collect();

        let mut sys = System::new(&protocol, &objects).unwrap();
        let result = sys
            .run(&mut RoundRobin::new(), &mut FirstOutcome, 10_000)
            .unwrap();
        assert!(explored.contains(&result.decisions));
    });
}

/// Decision counts are schedule-independent for halting workloads: the
/// number of decided processes equals the process count in every terminal
/// configuration.
#[test]
fn all_processes_decide_in_every_terminal() {
    run_cases("all_decide_terminal", 48, |rng| {
        let scripts = random_workload(rng);
        let n = scripts.len();
        let protocol = ScriptProtocol::new(scripts, ScriptEnd::DecideLast).unwrap();
        let objects = universe();
        let graph = Explorer::new(&protocol, &objects)
            .exploration()
            .max_configs(500_000)
            .run()
            .unwrap();
        for t in graph.terminal_indices() {
            let decided = graph.configs[t].decisions().iter().flatten().count();
            assert_eq!(decided, n);
        }
    });
}

/// Deterministic regression instance of the fuzz property (fast, pinned).
#[test]
fn pinned_mixed_workload_cross_check() {
    let l1 = Label::new(1).unwrap();
    let l2 = Label::new(2).unwrap();
    let scripts = vec![
        vec![
            (ObjId(3), Op::ProposePac(int(1), l1)),
            (ObjId(1), Op::Propose(int(2))),
            (ObjId(3), Op::DecidePac(l1)),
        ],
        vec![
            (ObjId(2), Op::Propose(int(3))),
            (ObjId(3), Op::ProposePac(int(2), l2)),
            (ObjId(0), Op::Read),
        ],
    ];
    let protocol = ScriptProtocol::new(scripts, ScriptEnd::DecideLast).unwrap();
    let objects = universe();
    let graph = Explorer::new(&protocol, &objects)
        .exploration()
        .run()
        .unwrap();
    assert!(graph.complete);
    assert!(!graph.has_cycle());
    let outcomes: BTreeSet<Vec<Option<Value>>> = graph
        .terminal_indices()
        .map(|t| graph.configs[t].decisions())
        .collect();
    assert!(!outcomes.is_empty());
    for seed in 0..30u64 {
        let mut sys = System::new(&protocol, &objects).unwrap();
        let result = sys
            .run(
                &mut RandomScheduler::seeded(seed),
                &mut RandomOutcome::seeded(seed),
                1000,
            )
            .unwrap();
        assert!(
            outcomes.contains(&result.decisions),
            "seed {seed} escaped the graph"
        );
        assert!(
            trace_replays(&objects, &sys),
            "seed {seed} trace not admissible"
        );
    }
}
