//! Whole-pipeline fuzzing: random straight-line workloads over random
//! object mixes, cross-validating the independent components against each
//! other:
//!
//! 1. the execution graphs of straight-line workloads are acyclic and
//!    complete;
//! 2. every concrete (sampled) run's outcome appears among the explorer's
//!    terminal outcomes — the sampler is an *underapproximation* of the
//!    exhaustive graph;
//! 3. every trace the runtime records is replayable through the sequential
//!    specifications — each recorded response is an admissible outcome in
//!    sequence (the runtime agrees with the specs);
//! 4. the trace, converted to a concurrent history of instantaneous ops, is
//!    linearizable (sanity of the linearizability checker on real traces).

use life_beyond_set_agreement::core::ids::Label;
use life_beyond_set_agreement::core::spec::ObjectSpec;
use life_beyond_set_agreement::core::value::int;
use life_beyond_set_agreement::core::{AnyObject, AnyState, ObjId, Op, Value};
use life_beyond_set_agreement::explorer::linearizability::check_linearizable;
use life_beyond_set_agreement::explorer::{Explorer, Limits};
use life_beyond_set_agreement::runtime::derived::CompletedOp;
use life_beyond_set_agreement::runtime::outcome::RandomOutcome;
use life_beyond_set_agreement::runtime::scheduler::RandomScheduler;
use life_beyond_set_agreement::runtime::script::{ScriptEnd, ScriptProtocol};
use life_beyond_set_agreement::runtime::system::System;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The fuzzed object universe: a register, a 2-consensus, a 2-SA, and a
/// 2-PAC.
fn universe() -> Vec<AnyObject> {
    vec![
        AnyObject::register(),
        AnyObject::consensus(2).unwrap(),
        AnyObject::strong_sa(),
        AnyObject::pac(2).unwrap(),
    ]
}

/// A random operation valid for object `obj` in the universe.
fn arb_op_for(obj: usize) -> BoxedStrategy<Op> {
    match obj {
        0 => prop_oneof![Just(Op::Read), (1..4i64).prop_map(|v| Op::Write(int(v)))].boxed(),
        1 | 2 => (1..4i64).prop_map(|v| Op::Propose(int(v))).boxed(),
        _ => prop_oneof![
            ((1..4i64), (1..=2usize))
                .prop_map(|(v, i)| Op::ProposePac(int(v), Label::new(i).unwrap())),
            (1..=2usize).prop_map(|i| Op::DecidePac(Label::new(i).unwrap())),
        ]
        .boxed(),
    }
}

/// A random per-process script of 1..=3 operations.
fn arb_script() -> impl Strategy<Value = Vec<(ObjId, Op)>> {
    proptest::collection::vec(
        (0..4usize).prop_flat_map(|obj| arb_op_for(obj).prop_map(move |op| (ObjId(obj), op))),
        1..=3,
    )
}

/// A random workload of 2..=3 processes.
fn arb_workload() -> impl Strategy<Value = Vec<Vec<(ObjId, Op)>>> {
    proptest::collection::vec(arb_script(), 2..=3)
}

/// Replays a trace through the sequential specs, verifying every recorded
/// response is admissible, and returns the per-step validity.
fn trace_replays(objects: &[AnyObject], sys: &System<'_, ScriptProtocol>) -> bool {
    let mut states: Vec<AnyState> = objects.iter().map(ObjectSpec::initial_state).collect();
    for event in sys.trace().iter() {
        let outs = match objects[event.obj.index()].outcomes(&states[event.obj.index()], &event.op)
        {
            Ok(o) => o.into_vec(),
            Err(_) => return false,
        };
        match outs.into_iter().find(|(resp, _)| *resp == event.response) {
            Some((_, next)) => states[event.obj.index()] = next,
            None => return false, // recorded response not admissible
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cross-validation of explorer, sampler, runtime, and checker on
    /// random workloads.
    #[test]
    fn pipeline_components_agree_on_random_workloads(scripts in arb_workload(), seed in 0u64..1000) {
        let protocol = ScriptProtocol::new(scripts, ScriptEnd::DecideLast).unwrap();
        let objects = universe();

        // 1. Straight-line workloads explore completely and acyclically.
        let explorer = Explorer::new(&protocol, &objects);
        let graph = explorer.explore(Limits::new(500_000)).unwrap();
        prop_assert!(graph.complete);
        prop_assert!(!graph.has_cycle(), "straight-line programs cannot cycle");

        let explored_outcomes: BTreeSet<Vec<Option<Value>>> =
            graph.terminal_indices().map(|t| graph.configs[t].decisions()).collect();

        // 2. A concrete random run's outcome is among the explored ones.
        let mut sys = System::new(&protocol, &objects).unwrap();
        let result = sys
            .run(
                &mut RandomScheduler::seeded(seed),
                &mut RandomOutcome::seeded(!seed),
                10_000,
            )
            .unwrap();
        prop_assert!(result.is_quiescent());
        prop_assert!(
            explored_outcomes.contains(&result.decisions),
            "sampled outcome {:?} missing from {} explored outcomes",
            result.decisions,
            explored_outcomes.len()
        );

        // 3. The recorded trace replays through the sequential specs.
        prop_assert!(trace_replays(&objects, &sys), "trace not spec-admissible");

        // 4. The trace, as a history of instantaneous operations, is
        //    linearizable (each op's interval is its single step).
        let history: Vec<CompletedOp> = sys
            .trace()
            .iter()
            .map(|e| CompletedOp {
                pid: e.pid,
                obj: e.obj,
                op: e.op,
                response: e.response,
                invoked_at: e.step,
                responded_at: e.step,
            })
            .collect();
        prop_assert!(check_linearizable(&history, &objects).is_ok());
    }

    /// The explorer's terminal-outcome set is closed under schedule choice:
    /// running the SAME workload under round-robin also lands inside it.
    #[test]
    fn round_robin_outcomes_are_explored(scripts in arb_workload()) {
        use life_beyond_set_agreement::runtime::outcome::FirstOutcome;
        use life_beyond_set_agreement::runtime::scheduler::RoundRobin;
        let protocol = ScriptProtocol::new(scripts, ScriptEnd::DecideLast).unwrap();
        let objects = universe();
        let explorer = Explorer::new(&protocol, &objects);
        let graph = explorer.explore(Limits::new(500_000)).unwrap();
        let explored: BTreeSet<Vec<Option<Value>>> =
            graph.terminal_indices().map(|t| graph.configs[t].decisions()).collect();

        let mut sys = System::new(&protocol, &objects).unwrap();
        let result = sys.run(&mut RoundRobin::new(), &mut FirstOutcome, 10_000).unwrap();
        prop_assert!(explored.contains(&result.decisions));
    }

    /// Decision counts are schedule-independent for halting workloads: the
    /// number of decided processes equals the process count in every
    /// terminal configuration.
    #[test]
    fn all_processes_decide_in_every_terminal(scripts in arb_workload()) {
        let n = scripts.len();
        let protocol = ScriptProtocol::new(scripts, ScriptEnd::DecideLast).unwrap();
        let objects = universe();
        let graph = Explorer::new(&protocol, &objects).explore(Limits::new(500_000)).unwrap();
        for t in graph.terminal_indices() {
            let decided = graph.configs[t].decisions().iter().flatten().count();
            prop_assert_eq!(decided, n);
        }
    }
}

/// Deterministic regression instance of the fuzz property (fast, pinned).
#[test]
fn pinned_mixed_workload_cross_check() {
    let l1 = Label::new(1).unwrap();
    let l2 = Label::new(2).unwrap();
    let scripts = vec![
        vec![
            (ObjId(3), Op::ProposePac(int(1), l1)),
            (ObjId(1), Op::Propose(int(2))),
            (ObjId(3), Op::DecidePac(l1)),
        ],
        vec![
            (ObjId(2), Op::Propose(int(3))),
            (ObjId(3), Op::ProposePac(int(2), l2)),
            (ObjId(0), Op::Read),
        ],
    ];
    let protocol = ScriptProtocol::new(scripts, ScriptEnd::DecideLast).unwrap();
    let objects = universe();
    let graph = Explorer::new(&protocol, &objects).explore(Limits::default()).unwrap();
    assert!(graph.complete);
    assert!(!graph.has_cycle());
    let outcomes: BTreeSet<Vec<Option<Value>>> =
        graph.terminal_indices().map(|t| graph.configs[t].decisions()).collect();
    assert!(!outcomes.is_empty());
    for seed in 0..30u64 {
        let mut sys = System::new(&protocol, &objects).unwrap();
        let result = sys
            .run(&mut RandomScheduler::seeded(seed), &mut RandomOutcome::seeded(seed), 1000)
            .unwrap();
        assert!(outcomes.contains(&result.decisions), "seed {seed} escaped the graph");
        assert!(trace_replays(&objects, &sys), "seed {seed} trace not admissible");
    }
}
