//! Property-based tests (seeded random cases via `lbsa_support::check`)
//! over the core invariants:
//!
//! * PAC: Lemma 3.2 (upset ⇔ illegal history) and Theorem 3.5 on random
//!   operation sequences far longer than the exhaustive sweeps;
//! * 2-SA and (n,k)-SA: output-set bounds and validity on every branch the
//!   random walk takes;
//! * consensus objects: first-wins and budget semantics;
//! * linearizability: recorded sequential runs always linearize; corrupting
//!   one response breaks it;
//! * schedulers: round-robin fairness, random-scheduler reproducibility.

use lbsa_support::check::run_cases;
use lbsa_support::rng::SmallRng;
use life_beyond_set_agreement::core::history::{
    check_pac_properties, is_legal_pac_history, run_pac,
};
use life_beyond_set_agreement::core::ids::Label;
use life_beyond_set_agreement::core::pac::PacSpec;
use life_beyond_set_agreement::core::spec::ObjectSpec;
use life_beyond_set_agreement::core::value::int;
use life_beyond_set_agreement::core::{AnyObject, ObjId, Op, Pid, Value};
use life_beyond_set_agreement::explorer::linearizability::check_linearizable;
use life_beyond_set_agreement::runtime::derived::CompletedOp;

/// A random PAC operation for an n-labelled object over small values.
fn random_pac_op(rng: &mut SmallRng, n: usize) -> Op {
    let label = Label::new(rng.random_range(0..n) + 1).expect("label >= 1");
    if rng.ratio(1, 2) {
        Op::ProposePac(int(rng.i64_range(1..4)), label)
    } else {
        Op::DecidePac(label)
    }
}

/// Lemma 3.2 on random sequences of up to 60 operations (far beyond the
/// exhaustive sweeps): upset ⇔ illegal prefix, at every prefix.
#[test]
fn lemma_3_2_random_long_sequences() {
    run_cases("lemma_3_2", 256, |rng| {
        let len = rng.random_range(0..60);
        let ops: Vec<Op> = (0..len).map(|_| random_pac_op(rng, 3)).collect();
        let spec = PacSpec::new(3).unwrap();
        let mut state = spec.initial_state();
        for (t, op) in ops.iter().enumerate() {
            spec.apply_deterministic(&mut state, op).unwrap();
            assert_eq!(spec.is_upset(&state), !is_legal_pac_history(&ops[..=t]));
        }
    });
}

/// Theorem 3.5 on random sequences.
#[test]
fn theorem_3_5_random_long_sequences() {
    run_cases("theorem_3_5", 256, |rng| {
        let len = rng.random_range(0..60);
        let ops: Vec<Op> = (0..len).map(|_| random_pac_op(rng, 3)).collect();
        let spec = PacSpec::new(3).unwrap();
        let history = run_pac(&spec, &ops).unwrap();
        assert!(check_pac_properties(&history).is_ok());
    });
}

/// 2-SA: on a random nondeterministic walk, responses always come from the
/// first two distinct proposals, and the object never returns more than two
/// distinct values.
#[test]
fn strong_sa_random_walk_respects_bounds() {
    run_cases("strong_sa_walk", 256, |rng| {
        let steps = rng.random_range(1..25);
        let sa = AnyObject::strong_sa();
        let mut state = sa.initial_state();
        let mut first_two: Vec<Value> = Vec::new();
        let mut seen: Vec<Value> = Vec::new();
        for _ in 0..steps {
            let v = int(rng.i64_range(1..6));
            if !first_two.contains(&v) && first_two.len() < 2 {
                first_two.push(v);
            }
            let outs = sa.outcomes(&state, &Op::Propose(v)).unwrap().into_vec();
            let pick = rng.random_range(0..outs.len());
            let (resp, next) = outs.into_iter().nth(pick).unwrap();
            assert!(
                first_two.contains(&resp),
                "response {resp} not among first two"
            );
            if !seen.contains(&resp) {
                seen.push(resp);
            }
            state = next;
        }
        assert!(seen.len() <= 2);
    });
}

/// (n,k)-SA: outputs stay within k distinct values and within the proposal
/// set on a random walk; ports beyond n answer ⊥.
#[test]
fn set_agreement_random_walk_respects_bounds() {
    run_cases("set_agreement_walk", 256, |rng| {
        let n = rng.random_range(2..6);
        let k = rng.random_range(1..4);
        let steps = rng.random_range(1..12);
        let sa = AnyObject::set_agreement(n, k).unwrap();
        let mut state = sa.initial_state();
        let mut proposed: Vec<Value> = Vec::new();
        let mut distinct: Vec<Value> = Vec::new();
        for i in 0..steps {
            let v = int(rng.i64_range(1..8));
            let outs = sa.outcomes(&state, &Op::Propose(v)).unwrap().into_vec();
            let pick = rng.random_range(0..outs.len());
            let (resp, next) = outs.into_iter().nth(pick).unwrap();
            if i < n {
                proposed.push(v);
                assert!(proposed.contains(&resp), "validity violated");
                if !distinct.contains(&resp) {
                    distinct.push(resp);
                }
            } else {
                assert_eq!(resp, Value::Bot, "port budget must be enforced");
            }
            state = next;
        }
        assert!(distinct.len() <= k);
    });
}

/// Consensus object: the first proposal wins for the first n operations and
/// the object answers ⊥ afterwards, for random n and sequences.
#[test]
fn consensus_first_wins_random() {
    run_cases("consensus_first_wins", 256, |rng| {
        let n = rng.random_range(1..6);
        let len = rng.random_range(1..14);
        let proposals: Vec<i64> = (0..len).map(|_| rng.i64_range(1..9)).collect();
        let cons = AnyObject::consensus(n).unwrap();
        let mut state = cons.initial_state();
        let first = int(proposals[0]);
        for (i, &v) in proposals.iter().enumerate() {
            let resp = cons
                .apply_deterministic(&mut state, &Op::Propose(int(v)))
                .unwrap();
            if i < n {
                assert_eq!(resp, first);
            } else {
                assert_eq!(resp, Value::Bot);
            }
        }
    });
}

/// Any sequentially-executed history is linearizable; corrupting the final
/// read's response to a never-written value breaks it.
#[test]
fn sequential_histories_linearize_and_corruption_breaks() {
    run_cases("sequential_linearizes", 128, |rng| {
        let len = rng.random_range(1..12);
        let writes: Vec<i64> = (0..len).map(|_| rng.i64_range(1..9)).collect();
        let specs = vec![AnyObject::register()];
        let mut history = Vec::new();
        let mut t = 0usize;
        for &w in &writes {
            history.push(CompletedOp {
                pid: Pid(0),
                obj: ObjId(0),
                op: Op::Write(int(w)),
                response: Value::Done,
                invoked_at: t,
                responded_at: t,
            });
            t += 1;
        }
        let last = *writes.last().unwrap();
        history.push(CompletedOp {
            pid: Pid(1),
            obj: ObjId(0),
            op: Op::Read,
            response: int(last),
            invoked_at: t,
            responded_at: t,
        });
        assert!(check_linearizable(&history, &specs).is_ok());

        // Corrupt: claim the read saw a value no write produced.
        let mut bad = history.clone();
        bad.last_mut().unwrap().response = int(100);
        assert!(check_linearizable(&bad, &specs).is_err());
    });
}

/// Round-robin fairness: over any window of `len(enabled)` consecutive
/// picks from a fixed enabled set, every pid appears exactly once.
#[test]
fn round_robin_is_fair() {
    use life_beyond_set_agreement::runtime::scheduler::{RoundRobin, Scheduler};
    run_cases("round_robin_fair", 64, |rng| {
        let enabled_mask = rng.random_range(1..32) as u8;
        let enabled: Vec<Pid> = (0..5)
            .filter(|i| enabled_mask >> i & 1 == 1)
            .map(Pid)
            .collect();
        let mut sched = RoundRobin::new();
        let window = enabled.len();
        let picks: Vec<Pid> = (0..window * 4)
            .map(|_| sched.next_pid(&enabled).unwrap())
            .collect();
        for chunk in picks.chunks(window) {
            let mut sorted: Vec<Pid> = chunk.to_vec();
            sorted.sort();
            assert_eq!(&sorted, &enabled, "window missed a pid");
        }
    });
}

/// Seeded randomness is reproducible across scheduler instances.
#[test]
fn random_scheduler_reproducible() {
    use life_beyond_set_agreement::runtime::scheduler::{RandomScheduler, Scheduler};
    run_cases("random_scheduler_repro", 64, |rng| {
        let seed = rng.next_u64();
        let enabled: Vec<Pid> = (0..4).map(Pid).collect();
        let run = |seed: u64| {
            let mut s = RandomScheduler::seeded(seed);
            (0..50)
                .map(|_| s.next_pid(&enabled).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(seed), run(seed));
    });
}
