#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in the order that fails
# fastest. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --quiet

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> report smoke (exp_t2_dac at n = 2, schema- and trace-validated)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -q -p lbsa-bench --bin exp_t2_dac -- \
  --max-n 2 --reports-dir "$smoke_dir"
cargo run --release -q -p lbsa-bench --bin exp_report -- \
  --validate "$smoke_dir/exp_t2_dac.json" \
  --validate-trace "$smoke_dir/exp_t2_dac.trace.jsonl"

echo "==> perf smoke (explore_scaling -> BENCH_explore.json gates)"
# Regenerate BENCH_explore.json from a fresh bench run and gate it against
# the committed copy (engine-vs-seed speedup floors, parallel-speedup
# regression, symmetry-reduction ratio). The committed file is restored
# afterwards — regenerating the tracked copy is a deliberate, separate act
# (see ci.yml, which uploads the fresh file as an artifact instead).
cp BENCH_explore.json "$smoke_dir/BENCH_committed.json"
restore_bench() { cp "$smoke_dir/BENCH_committed.json" BENCH_explore.json; rm -rf "$smoke_dir"; }
trap 'restore_bench' EXIT
cargo bench -q -p lbsa-bench --bench explore_scaling >/dev/null
cargo run --release -q -p lbsa-bench --bin perf_smoke -- \
  "$smoke_dir/BENCH_committed.json" BENCH_explore.json

echo "tier-1: OK"
