#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in the order that fails
# fastest. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --quiet

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> report smoke (exp_t2_dac at n = 2, schema-validated)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -q -p lbsa-bench --bin exp_t2_dac -- \
  --max-n 2 --reports-dir "$smoke_dir"
cargo run --release -q -p lbsa-bench --bin exp_report -- \
  --validate "$smoke_dir/exp_t2_dac.json"

echo "tier-1: OK"
