#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in the order that fails
# fastest. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --quiet

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "tier-1: OK"
