#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in the order that fails
# fastest. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --quiet

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> report smoke (exp_t2_dac at n = 2, schema- and trace-validated)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -q -p lbsa-bench --bin exp_t2_dac -- \
  --max-n 2 --reports-dir "$smoke_dir"
cargo run --release -q -p lbsa-bench --bin exp_report -- \
  --validate "$smoke_dir/exp_t2_dac.json" \
  --validate-trace "$smoke_dir/exp_t2_dac.trace.jsonl"

echo "==> sampling smoke (exp_f8 vote propagation, schema- and trace-validated)"
cargo run --release -q -p lbsa-bench --bin exp_f8_vote_propagation -- \
  --n 6 --runs 60 --reports-dir "$smoke_dir"
cargo run --release -q -p lbsa-bench --bin exp_report -- \
  --validate "$smoke_dir/exp_f8_vote_propagation.json" \
  --validate-trace "$smoke_dir/exp_f8_vote_propagation.trace.jsonl"

echo "==> trace observatory smoke (obs_analyze on the tier-1 trace)"
cargo run --release -q -p lbsa-bench --bin obs_analyze -- \
  "$smoke_dir/exp_t2_dac.trace.jsonl" --summary-json >/dev/null

echo "==> live progress smoke (profile_t2 with a 50ms sampler, validated + cockpit-rendered)"
# One traced WS run with the in-flight progress sampler: the trace must
# carry schema-valid `progress` events (exp_report checks the cockpit
# fields), obs_top must render a dashboard from it, and the Prometheus
# snapshot must land. Short runs still emit the guaranteed final event.
cargo run --release -q -p lbsa-bench --bin profile_t2 -- 1 --n 6 --ws \
  --trace "$smoke_dir/progress_smoke.trace.jsonl" \
  --progress-ms 50 \
  --metrics-out "$smoke_dir/progress_smoke.prom" 2>/dev/null
cargo run --release -q -p lbsa-bench --bin exp_report -- \
  --validate-trace "$smoke_dir/progress_smoke.trace.jsonl"
cargo run --release -q -p lbsa-bench --bin obs_top -- \
  "$smoke_dir/progress_smoke.trace.jsonl" --no-clear >/dev/null
grep -q "explore_configs_total" "$smoke_dir/progress_smoke.prom"

echo "==> perf smoke (explore_scaling -> BENCH_explore.json gates)"
# Regenerate BENCH_explore.json from a fresh bench run and gate it against
# the committed copy (engine-vs-seed speedup floors, parallel-speedup
# regression, symmetry-reduction ratio). The committed file is restored
# afterwards — regenerating the tracked copy is a deliberate, separate act
# (see ci.yml, which uploads the fresh file as an artifact instead).
cp BENCH_explore.json "$smoke_dir/BENCH_committed.json"
restore_bench() { cp "$smoke_dir/BENCH_committed.json" BENCH_explore.json; rm -rf "$smoke_dir"; }
trap 'restore_bench' EXIT
cargo bench -q -p lbsa-bench --bench explore_scaling >/dev/null
# --history accumulates the run into BENCH_history.jsonl (append-only
# perf trajectory; committing the grown file is a deliberate act, like
# regenerating BENCH_explore.json). The regression comparison against the
# trailing same-host median is advisory: it warns, it does not gate.
cargo run --release -q -p lbsa-bench --bin perf_smoke -- \
  "$smoke_dir/BENCH_committed.json" BENCH_explore.json \
  --history BENCH_history.jsonl
cargo run --release -q -p lbsa-bench --bin obs_analyze -- \
  --regress BENCH_history.jsonl \
  || echo "WARNING: perf regression vs trailing median (advisory)"

echo "tier-1: OK"
