//! The unified error hierarchy of the checking layer.
//!
//! Checks can fail for reasons that are not counterexamples: a protocol can
//! hit a runtime fault (stepping a halted process, an out-of-range object),
//! a specification can reject an operation, a linearizability history can
//! exceed the checker's capacity, or a replayed witness schedule can
//! diverge from the graph it was extracted from. [`CheckError`] folds all
//! of these into one `thiserror`-style tree — `Display` + `Error::source` +
//! `From` conversions, hand-written because the workspace builds offline —
//! so a [`crate::verdict::Verdict`] carries a structured cause instead of a
//! string.

use crate::linearizability::LinearizabilityError;
use lbsa_core::SpecError;
use lbsa_runtime::error::RuntimeError;
use std::error::Error;
use std::fmt;

/// Any failure of the checking machinery itself (as opposed to a property
/// violation, which is a successful check with a negative answer).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckError {
    /// The runtime/explorer failed to step the protocol.
    Runtime(RuntimeError),
    /// The linearizability checker could not process the history.
    Linearizability(LinearizabilityError),
    /// A witness replay did not reproduce the recorded violation: the
    /// schedule no longer describes this protocol/object combination.
    WitnessDiverged {
        /// Index of the schedule step where replay diverged, or the
        /// schedule length if the final predicate failed.
        step: usize,
        /// What went wrong at that step.
        reason: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Runtime(e) => write!(f, "runtime error: {e}"),
            CheckError::Linearizability(e) => write!(f, "linearizability check failed: {e}"),
            CheckError::WitnessDiverged { step, reason } => {
                write!(f, "witness replay diverged at step {step}: {reason}")
            }
        }
    }
}

impl Error for CheckError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckError::Runtime(e) => Some(e),
            CheckError::Linearizability(e) => Some(e),
            CheckError::WitnessDiverged { .. } => None,
        }
    }
}

impl From<RuntimeError> for CheckError {
    fn from(e: RuntimeError) -> Self {
        CheckError::Runtime(e)
    }
}

impl From<LinearizabilityError> for CheckError {
    fn from(e: LinearizabilityError) -> Self {
        CheckError::Linearizability(e)
    }
}

impl From<SpecError> for CheckError {
    fn from(e: SpecError) -> Self {
        CheckError::Runtime(RuntimeError::Spec(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::Pid;

    #[test]
    fn display_and_source_chain() {
        // Spec errors arrive through the runtime layer, and the chain
        // bottoms out at the SpecError itself.
        let e = CheckError::from(SpecError::ZeroLabel);
        assert!(e.to_string().contains("runtime error"));
        let source = Error::source(&e).expect("runtime source");
        assert!(Error::source(source).is_some(), "spec error underneath");

        let e = CheckError::from(RuntimeError::ProcessNotRunning(Pid(1)));
        assert!(e.to_string().contains("p1"));

        let e = CheckError::from(LinearizabilityError::NotLinearizable {
            obj: lbsa_core::ObjId(0),
        });
        assert!(e.to_string().contains("not linearizable"));
        assert!(Error::source(&e).is_some());

        let e = CheckError::WitnessDiverged {
            step: 3,
            reason: "pid cannot step".to_string(),
        };
        assert!(e.to_string().contains("step 3"));
        assert!(Error::source(&e).is_none());
    }
}
