//! Symmetry reduction: canonical orbit representatives under pid permutation.
//!
//! Every protocol the paper checks exhaustively — Algorithm 2 for n-DAC, the
//! PAC/strong-SA constructions behind Theorem 6.5 — is symmetric under
//! permutation of (some of) its process ids: processes in one role run the
//! same code on the same inputs, so permuting them maps executions to
//! executions. The explorer can therefore quotient the configuration graph
//! by that group action and search one representative per **orbit** instead
//! of every permuted copy; for a workload whose symmetry group has order
//! `g`, that divides the reachable state space by up to `g`.
//!
//! The machinery here is deliberately elementary (the groups are tiny —
//! products of symmetric groups over the pid classes, order ≤ 24 for the
//! n ≤ 5 instances we explore):
//!
//! * a protocol opts in by implementing [`lbsa_runtime::process::Symmetry`],
//!   declaring which pids are interchangeable and how pid-derived structure
//!   inside local/object states permutes;
//! * [`ConfigSymmetry::of`] materializes the full permutation group once and
//!   type-erases the protocol behind two closures (apply a permutation,
//!   compare configurations by content), so the exploration engine needs no
//!   `Ord` bound on local states in its own signatures;
//! * [`ConfigSymmetry::canonicalize`] maps a configuration to the minimum of
//!   its orbit under the content order — a canonical representative that is
//!   stable across runs and thread counts, unlike anything derived from
//!   interned ids;
//! * [`Concretizer`] walks a schedule expressed over the *quotient* graph
//!   and incrementally rebuilds a real (un-permuted) execution, which is how
//!   witnesses extracted from a reduced graph are de-canonicalized before
//!   [`crate::verdict::Witness::confirm`] replays them.
//!
//! # Soundness
//!
//! Let `G` be the declared group and write `π · C` for the action of
//! permutation `π` on configuration `C`. The [`Symmetry`] contract is the
//! equivariance law `step(π · C, π(p), o) ≃ π · step(C, p, o)` (equality up
//! to outcome order). It follows by induction that `C` is reachable iff
//! `π · C` is, and that the quotient graph — nodes are orbits, edges are
//! orbits of edges — is reachability- and cycle-equivalent to the full
//! graph. Every checker predicate we evaluate is orbit-invariant: agreement,
//! validity and undecided-terminal predicates only inspect the *multiset* of
//! decisions and statuses, which `π` preserves; predicates naming a specific
//! pid (n-DAC's distinguished process, solo runs) stay invariant because the
//! [`Symmetry`] contract requires distinguished roles to be singleton
//! classes, which every `π ∈ G` fixes. Hence a property holds on the
//! quotient iff it holds on the full graph, and a quotient counterexample
//! concretizes (via [`Concretizer`]) to a real counterexample.

use crate::config::Configuration;
use crate::error::CheckError;
use crate::explore::Explorer;
use lbsa_core::{ObjId, Pid};
use lbsa_runtime::process::{ProcStatus, Protocol, Symmetry};
use lbsa_support::obs::Counter;
use std::cmp::Ordering;
use std::fmt;

/// A pid permutation: `perm[i]` is the new pid of process `i`.
pub type PidPerm = Vec<usize>;

/// The symmetry group of a concrete protocol instance, type-erased so the
/// exploration engine can canonicalize configurations without knowing the
/// protocol type or requiring `Ord` bounds of its own.
///
/// Built with [`ConfigSymmetry::of`]; the identity permutation is always
/// `perms()[0]`.
pub struct ConfigSymmetry<'p, L> {
    perms: Vec<PidPerm>,
    /// `inverses[i]` is the inverse permutation of `perms[i]`, precomputed
    /// so the lazy comparison below can find which process lands in a slot
    /// without searching.
    inverses: Vec<PidPerm>,
    #[allow(clippy::type_complexity)]
    apply: Box<dyn Fn(&Configuration<L>, &[usize]) -> Configuration<L> + Sync + 'p>,
    #[allow(clippy::type_complexity)]
    cmp: Box<dyn Fn(&Configuration<L>, &Configuration<L>) -> Ordering + Sync + 'p>,
    /// Lazily compares `π · C` against a materialized `target` component by
    /// component in the content order, without materializing `π · C`. Takes
    /// `(C, π, π⁻¹, target)`.
    #[allow(clippy::type_complexity)]
    cmp_vs: Box<
        dyn Fn(&Configuration<L>, &[usize], &[usize], &Configuration<L>) -> Ordering + Sync + 'p,
    >,
    value_symmetric: bool,
    canon_calls: Counter,
    canon_fast: Counter,
    canon_full: Counter,
}

impl<L> fmt::Debug for ConfigSymmetry<'_, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConfigSymmetry")
            .field("group_order", &self.perms.len())
            .field("value_symmetric", &self.value_symmetric)
            .finish_non_exhaustive()
    }
}

impl<'p, L: Clone> ConfigSymmetry<'p, L> {
    /// Materializes the symmetry group of `protocol`: all pid permutations
    /// preserving its [`Symmetry::pid_classes`] partition (the direct
    /// product of symmetric groups over the classes).
    ///
    /// The `Ord` bound on the local state is consumed *here*, into the
    /// comparison closure — callers downstream (the engine, the verdict
    /// layer) work with the erased struct.
    pub fn of<P>(protocol: &'p P) -> Self
    where
        P: Symmetry<LocalState = L>,
        L: Ord,
    {
        let classes = protocol.pid_classes();
        assert_eq!(
            classes.len(),
            protocol.num_processes(),
            "pid_classes() must return one class per process"
        );
        let perms = class_preserving_perms(&classes);
        let inverses = perms.iter().map(|p| invert(p)).collect();
        let apply =
            move |c: &Configuration<P::LocalState>, perm: &[usize]| apply_perm(protocol, c, perm);
        // The content order is the derived `Ord` of `Configuration`: object
        // states lexicographically, then process statuses. `π · C` has the
        // same shape as any configuration over the same system, so comparing
        // it against a *materialized* target reduces to the first differing
        // component — computed on demand, with
        // `(π · C).object_states[o] = permute_object_state(o, C[o], π)` and
        // `(π · C).procs[j]` the permuted status of process `π⁻¹(j)`.
        // Non-running statuses are pid-free, so they compare by reference
        // without materializing a permuted copy.
        let cmp_vs = move |c: &Configuration<P::LocalState>,
                           perm: &[usize],
                           inv: &[usize],
                           target: &Configuration<P::LocalState>| {
            for (o, s) in c.object_states.iter().enumerate() {
                let moved = protocol.permute_object_state(ObjId(o), s, perm);
                match moved.cmp(&target.object_states[o]) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            for (j, s) in target.procs.iter().enumerate() {
                let ord = match &c.procs[inv[j]] {
                    ProcStatus::Running(ls) => {
                        ProcStatus::Running(protocol.permute_local(ls, perm)).cmp(s)
                    }
                    other => other.cmp(s),
                };
                match ord {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            Ordering::Equal
        };
        ConfigSymmetry {
            perms,
            inverses,
            apply: Box::new(apply),
            cmp: Box::new(|a, b| a.cmp(b)),
            cmp_vs: Box::new(cmp_vs),
            value_symmetric: protocol.value_symmetric(),
            canon_calls: Counter::new(),
            canon_fast: Counter::new(),
            canon_full: Counter::new(),
        }
    }

    /// The group elements; `perms()[0]` is the identity.
    #[must_use]
    pub fn perms(&self) -> &[PidPerm] {
        &self.perms
    }

    /// Number of group elements. Reduction divides the state space by at
    /// most this factor.
    #[must_use]
    pub fn group_order(&self) -> usize {
        self.perms.len()
    }

    /// `true` if the group is just the identity — canonicalization would be
    /// a no-op, so callers should skip reduction entirely.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.perms.len() == 1
    }

    /// Whether the protocol additionally declared value symmetry (advisory;
    /// see [`Symmetry::value_symmetric`]).
    #[must_use]
    pub fn value_symmetric(&self) -> bool {
        self.value_symmetric
    }

    /// Number of canonicalizations performed through this group so far
    /// (feeds [`crate::ExploreStats::canon_calls`]).
    #[must_use]
    pub fn canon_calls(&self) -> u64 {
        self.canon_calls.get()
    }

    /// Incremental canonicalizations that confirmed the input was already
    /// canonical via the lazy orbit-minimality check, skipping the full
    /// `|G|`-fold materialization (feeds
    /// [`crate::ExploreStats::canon_patches`]).
    #[must_use]
    pub fn canon_fast_hits(&self) -> u64 {
        self.canon_fast.get()
    }

    /// Incremental canonicalizations whose input was *not* orbit-minimal:
    /// the tournament materialized at least one improved candidate (feeds
    /// [`crate::ExploreStats::canon_full`]).
    #[must_use]
    pub fn canon_full_calls(&self) -> u64 {
        self.canon_full.get()
    }

    /// Applies one group element to a configuration.
    #[must_use]
    pub fn apply(&self, config: &Configuration<L>, perm: &[usize]) -> Configuration<L> {
        (self.apply)(config, perm)
    }

    /// The canonical representative of `config`'s orbit: the minimum of
    /// `{π · config : π ∈ G}` under the content order.
    #[must_use]
    pub fn canonicalize(&self, config: &Configuration<L>) -> Configuration<L> {
        self.canonicalize_with_perm(config).0
    }

    /// Canonicalizes and also returns the permutation `σ` that realizes it:
    /// `σ · config == canonical`. When several group elements yield the
    /// minimum, the first in enumeration order wins, so the choice is
    /// deterministic.
    #[must_use]
    pub fn canonicalize_with_perm(
        &self,
        config: &Configuration<L>,
    ) -> (Configuration<L>, &[usize]) {
        self.canon_calls.bump();
        self.orbit_min(config)
    }

    /// The full `|G|`-fold orbit minimization (no counter bump; callers
    /// account the call themselves).
    fn orbit_min(&self, config: &Configuration<L>) -> (Configuration<L>, &[usize]) {
        let mut best = (self.apply)(config, &self.perms[0]);
        let mut best_perm = &self.perms[0];
        for perm in &self.perms[1..] {
            let candidate = (self.apply)(config, perm);
            if (self.cmp)(&candidate, &best) == Ordering::Less {
                best = candidate;
                best_perm = perm;
            }
        }
        (best, best_perm)
    }

    /// Canonicalization tuned for the exploration engine's access pattern:
    /// the inputs are single-step successors of configurations that are
    /// *already canonical*, so most of them are still orbit-minimal (or
    /// become so after the engine's memo has seen the patch once).
    ///
    /// One lazy tournament replaces the `|G|`-fold materialization of
    /// [`Self::canonicalize`]: each `π · C` is compared against the running
    /// minimum component by component, bailing at the first difference, and
    /// a permuted copy is materialized only when `π` strictly improves on
    /// it — never, on the common already-minimal input, where the whole
    /// call allocates nothing beyond the returned clone. Both entry points
    /// return the same representative (the orbit minimum under the content
    /// order is unique), so the engine's graphs are byte-identical
    /// whichever runs; the split is pure throughput.
    #[must_use]
    pub fn canonicalize_incremental(&self, config: &Configuration<L>) -> Configuration<L> {
        self.canon_calls.bump();
        let mut best: Option<Configuration<L>> = None;
        for (perm, inv) in self.perms.iter().zip(&self.inverses).skip(1) {
            let target = best.as_ref().unwrap_or(config);
            if (self.cmp_vs)(config, perm, inv, target) == Ordering::Less {
                best = Some((self.apply)(config, perm));
            }
        }
        match best {
            None => {
                self.canon_fast.bump();
                config.clone()
            }
            Some(best) => {
                self.canon_full.bump();
                best
            }
        }
    }
}

/// Applies `perm` to a configuration under protocol `p`'s interpretation:
/// process `i`'s status moves to slot `perm[i]` (local state mapped through
/// [`Symmetry::permute_local`]), and every object state is rewritten through
/// [`Symmetry::permute_object_state`].
fn apply_perm<P: Symmetry>(
    p: &P,
    c: &Configuration<P::LocalState>,
    perm: &[usize],
) -> Configuration<P::LocalState> {
    let mut procs: Vec<Option<ProcStatus<P::LocalState>>> = vec![None; c.procs.len()];
    for (i, status) in c.procs.iter().enumerate() {
        let moved = match status {
            ProcStatus::Running(s) => ProcStatus::Running(p.permute_local(s, perm)),
            other => other.clone(),
        };
        procs[perm[i]] = Some(moved);
    }
    Configuration {
        object_states: c
            .object_states
            .iter()
            .enumerate()
            .map(|(o, s)| p.permute_object_state(ObjId(o), s, perm))
            .collect(),
        procs: procs
            .into_iter()
            .map(|s| s.expect("perm is a bijection on 0..n"))
            .collect(),
    }
}

/// The inverse of a permutation: `invert(p)[p[i]] == i`.
fn invert(perm: &[usize]) -> PidPerm {
    let mut inv = vec![0usize; perm.len()];
    for (i, &v) in perm.iter().enumerate() {
        inv[v] = i;
    }
    inv
}

/// Enumerates every permutation of `0..classes.len()` that maps each pid
/// class onto itself: the direct product, over the classes, of the full
/// symmetric group on that class's positions. The identity is first.
fn class_preserving_perms(classes: &[u32]) -> Vec<PidPerm> {
    let n = classes.len();
    // Positions grouped by class, in first-appearance order.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut seen: Vec<u32> = Vec::new();
    for (i, &c) in classes.iter().enumerate() {
        match seen.iter().position(|&s| s == c) {
            Some(g) => groups[g].push(i),
            None => {
                seen.push(c);
                groups.push(vec![i]);
            }
        }
    }
    // All permutations of each group's positions (identity first), then the
    // cartesian product across groups composed into full pid permutations.
    let group_perms: Vec<Vec<Vec<usize>>> = groups
        .iter()
        .map(|positions| permutations_of(positions))
        .collect();
    let mut result: Vec<PidPerm> = vec![(0..n).collect()];
    for (g, options) in group_perms.iter().enumerate() {
        let positions = &groups[g];
        let mut next = Vec::with_capacity(result.len() * options.len());
        for base in &result {
            for option in options {
                let mut perm = base.clone();
                for (slot, &target) in positions.iter().zip(option.iter()) {
                    perm[*slot] = target;
                }
                next.push(perm);
            }
        }
        result = next;
    }
    // The cartesian product enumerates the identity choice of every group
    // first, so result[0] is the identity; assert the invariant anyway.
    debug_assert!(result[0].iter().enumerate().all(|(i, &v)| i == v));
    result
}

/// All orderings of `items` (Heap's algorithm), the original order first.
fn permutations_of(items: &[usize]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut work = items.to_vec();
    heap_recurse(work.len(), &mut work, &mut out);
    // Heap's algorithm emits the unmodified input first, so out[0] == items.
    debug_assert_eq!(out[0], items);
    out
}

fn heap_recurse(k: usize, work: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(work.clone());
        return;
    }
    heap_recurse(k - 1, work, out);
    for i in 0..k - 1 {
        if k.is_multiple_of(2) {
            work.swap(i, k - 1);
        } else {
            work.swap(0, k - 1);
        }
        heap_recurse(k - 1, work, out);
    }
}

/// Incremental de-canonicalization: walks a schedule expressed over the
/// **quotient** graph (whose nodes are canonical representatives) and
/// rebuilds a real execution of the protocol, step by step.
///
/// The walker maintains a real configuration `R`, its canonical form `Q`,
/// and the permutation `σ` with `σ · R == Q`. Feeding it a quotient step
/// `(p, o)` — "process `p` takes outcome `o` *in the quotient*" — it:
///
/// 1. translates the pid: the real process is `σ⁻¹(p)`;
/// 2. computes the quotient target `Q' = canon(successors(Q, p)[o])`;
/// 3. finds the real outcome `j` with `canon(successors(R, σ⁻¹(p))[j]) ==
///    Q'`, which exists by equivariance. Successors are matched by
///    *canonical content*, never by outcome index, because outcome order
///    need not be equivariant (e.g. an object state holding a sorted set).
///
/// The real schedule it emits replays through [`crate::explore::Explorer`]
/// on the raw (unreduced) system, which is exactly what
/// [`crate::verdict::Witness::confirm`] does.
pub struct Concretizer<'e, 'a, 'p, P: Protocol> {
    explorer: &'e Explorer<'a, P>,
    sym: &'e ConfigSymmetry<'p, P::LocalState>,
    real: Configuration<P::LocalState>,
    quotient: Configuration<P::LocalState>,
    sigma: PidPerm,
    steps_taken: usize,
}

impl<'e, 'a, 'p, P: Protocol> Concretizer<'e, 'a, 'p, P> {
    /// Starts a walk at the protocol's initial configuration.
    #[must_use]
    pub fn new(explorer: &'e Explorer<'a, P>, sym: &'e ConfigSymmetry<'p, P::LocalState>) -> Self {
        let real = explorer.initial_config();
        let (quotient, sigma) = sym.canonicalize_with_perm(&real);
        Concretizer {
            explorer,
            sym,
            real,
            quotient,
            sigma: sigma.to_vec(),
            steps_taken: 0,
        }
    }

    /// The current real configuration `R`.
    #[must_use]
    pub fn real(&self) -> &Configuration<P::LocalState> {
        &self.real
    }

    /// The current canonical representative `Q = σ · R`.
    #[must_use]
    pub fn quotient(&self) -> &Configuration<P::LocalState> {
        &self.quotient
    }

    /// Maps a quotient-side pid to the real process it denotes: `σ⁻¹(p)`.
    #[must_use]
    pub fn real_pid(&self, quotient_pid: Pid) -> Pid {
        Pid(self
            .sigma
            .iter()
            .position(|&v| v == quotient_pid.index())
            .expect("sigma is a bijection on 0..n"))
    }

    /// Advances by one quotient step and returns the real `(pid, outcome)`
    /// that realizes it.
    ///
    /// # Errors
    ///
    /// Propagates step errors, and returns [`CheckError::WitnessDiverged`]
    /// if no real outcome lands in the demanded orbit — which would mean the
    /// protocol's [`Symmetry`] declaration violates the equivariance law.
    pub fn advance(&mut self, pid: Pid, outcome: usize) -> Result<(Pid, usize), CheckError> {
        let quot_succs = self.explorer.successors_of(&self.quotient, pid)?;
        let quot_next = quot_succs
            .get(outcome)
            .ok_or_else(|| CheckError::WitnessDiverged {
                step: self.steps_taken,
                reason: format!(
                    "quotient step p{} outcome {outcome} out of range ({} outcomes)",
                    pid.index(),
                    quot_succs.len()
                ),
            })?;
        let target = self.sym.canonicalize(quot_next);

        let real_pid = self.real_pid(pid);
        let real_succs = self.explorer.successors_of(&self.real, real_pid)?;
        let (j, real_next) = real_succs
            .into_iter()
            .enumerate()
            .find(|(_, s)| self.sym.canonicalize(s) == target)
            .ok_or_else(|| CheckError::WitnessDiverged {
                step: self.steps_taken,
                reason: format!(
                    "no outcome of p{} reaches the demanded orbit: the protocol's \
                     Symmetry declaration breaks equivariance",
                    real_pid.index()
                ),
            })?;
        self.real = real_next;
        let (q, sigma) = self.sym.canonicalize_with_perm(&self.real);
        self.quotient = q;
        self.sigma = sigma.to_vec();
        self.steps_taken += 1;
        Ok((real_pid, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::{AnyObject, Op, Value};
    use lbsa_runtime::process::Step;

    /// A toy symmetric protocol: every process writes its (identical) input
    /// to a shared register, reads it back, and decides what it read.
    #[derive(Debug)]
    struct WriteRead {
        n: usize,
        inputs: Vec<i64>,
    }

    impl Protocol for WriteRead {
        type LocalState = u8; // 0 = about to write, 1 = about to read

        fn num_processes(&self) -> usize {
            self.n
        }
        fn init(&self, _pid: Pid) -> u8 {
            0
        }
        fn pending_op(&self, pid: Pid, state: &u8) -> (ObjId, Op) {
            match state {
                0 => (ObjId(0), Op::Write(Value::Int(self.inputs[pid.index()]))),
                _ => (ObjId(0), Op::Read),
            }
        }
        fn on_response(&self, _pid: Pid, state: &u8, response: Value) -> Step<u8> {
            match state {
                0 => Step::Continue(1),
                _ => Step::Decide(response),
            }
        }
    }

    impl Symmetry for WriteRead {
        fn pid_classes(&self) -> Vec<u32> {
            // Processes with equal inputs are interchangeable.
            self.inputs
                .iter()
                .map(|&v| u32::try_from(v).unwrap())
                .collect()
        }
    }

    #[test]
    fn group_order_is_the_product_of_class_factorials() {
        let p = WriteRead {
            n: 4,
            inputs: vec![0, 0, 0, 0],
        };
        let sym = ConfigSymmetry::of(&p);
        assert_eq!(sym.group_order(), 24); // S_4
        assert!(!sym.is_trivial());

        let p = WriteRead {
            n: 4,
            inputs: vec![0, 1, 0, 1],
        };
        let sym = ConfigSymmetry::of(&p);
        assert_eq!(sym.group_order(), 4); // S_2 × S_2

        let p = WriteRead {
            n: 3,
            inputs: vec![0, 1, 2],
        };
        let sym = ConfigSymmetry::of(&p);
        assert_eq!(sym.group_order(), 1);
        assert!(sym.is_trivial());
    }

    #[test]
    fn identity_is_always_first() {
        for classes in [vec![0u32, 0, 0], vec![0, 1, 0, 1], vec![0, 0, 1, 0]] {
            let perms = class_preserving_perms(&classes);
            let n = classes.len();
            assert_eq!(perms[0], (0..n).collect::<Vec<_>>());
            // Every perm preserves classes and is a bijection.
            for perm in &perms {
                let mut seen = vec![false; n];
                for (i, &v) in perm.iter().enumerate() {
                    assert_eq!(classes[i], classes[v]);
                    assert!(!seen[v]);
                    seen[v] = true;
                }
            }
        }
    }

    #[test]
    fn canonical_forms_agree_across_an_orbit() {
        let p = WriteRead {
            n: 3,
            inputs: vec![0, 0, 0],
        };
        let objects = vec![AnyObject::register()];
        let ex = Explorer::new(&p, &objects);
        let sym = ConfigSymmetry::of(&p);
        let c = ex.initial_config();
        // Step p0 twice to break symmetry, then check that every permuted
        // copy canonicalizes to the same representative.
        let c = ex.step(&c, Pid(0), 0).unwrap().config;
        let c = ex.step(&c, Pid(0), 0).unwrap().config;
        let canon = sym.canonicalize(&c);
        for perm in sym.perms() {
            let moved = sym.apply(&c, perm);
            assert_eq!(sym.canonicalize(&moved), canon);
        }
        // The canonical form is a member of its own orbit and idempotent.
        assert_eq!(sym.canonicalize(&canon), canon);
        assert!(sym.canon_calls() >= 2 + sym.group_order() as u64);
    }

    #[test]
    fn incremental_canonicalization_matches_full_enumeration() {
        // Sweep every configuration reachable in a few steps (mixed inputs,
        // so the group is a proper subgroup of S_n and slot moves matter)
        // and check the incremental path lands on the same representative.
        let p = WriteRead {
            n: 4,
            inputs: vec![0, 0, 1, 1],
        };
        let objects = vec![AnyObject::register()];
        let ex = Explorer::new(&p, &objects);
        let sym = ConfigSymmetry::of(&p);
        let mut frontier = vec![ex.initial_config()];
        let mut seen = std::collections::HashSet::new();
        while let Some(c) = frontier.pop() {
            if !seen.insert(c.clone()) {
                continue;
            }
            assert_eq!(
                sym.canonicalize_incremental(&c),
                sym.canonicalize(&c),
                "incremental and full canonicalization disagree on {c:?}"
            );
            for pid in c.enabled_pids() {
                frontier.extend(ex.successors_of(&c, pid).unwrap());
            }
        }
        assert!(seen.len() > 10, "sweep must cover a nontrivial state set");
        // Both branches were exercised and accounted.
        assert_eq!(
            sym.canon_fast_hits() + sym.canon_full_calls(),
            seen.len() as u64
        );
        assert!(sym.canon_fast_hits() > 0);
    }

    #[test]
    fn incremental_fast_path_confirms_canonical_forms() {
        let p = WriteRead {
            n: 3,
            inputs: vec![0, 0, 0],
        };
        let objects = vec![AnyObject::register()];
        let ex = Explorer::new(&p, &objects);
        let sym = ConfigSymmetry::of(&p);
        let c = ex.initial_config();
        let c = ex.step(&c, Pid(1), 0).unwrap().config;
        let canon = sym.canonicalize(&c);
        // A canonical representative re-canonicalizes through the fast path.
        let fast_before = sym.canon_fast_hits();
        assert_eq!(sym.canonicalize_incremental(&canon), canon);
        assert_eq!(sym.canon_fast_hits(), fast_before + 1);
        // A non-canonical orbit member takes the full fallback.
        let moved = sym.apply(&c, &sym.perms()[1].clone());
        let full_before = sym.canon_full_calls();
        let via_incremental = sym.canonicalize_incremental(&moved);
        assert_eq!(via_incremental, sym.canonicalize(&moved));
        assert!(sym.canon_full_calls() >= full_before);
    }

    #[test]
    fn concretizer_realizes_quotient_schedules() {
        let p = WriteRead {
            n: 3,
            inputs: vec![0, 0, 0],
        };
        let objects = vec![AnyObject::register()];
        let ex = Explorer::new(&p, &objects);
        let sym = ConfigSymmetry::of(&p);

        // Drive the quotient to termination, always stepping its first
        // enabled pid (canonicalization may relocate processes after every
        // step, so a quotient schedule must be read off the quotient).
        let mut walker = Concretizer::new(&ex, &sym);
        let mut real = ex.initial_config();
        while !walker.quotient().is_terminal() {
            let qpid = walker.quotient().enabled_pids()[0];
            let (rpid, routcome) = walker.advance(qpid, 0).unwrap();
            real = ex.step(&real, rpid, routcome).unwrap().config;
            // The walker's real configuration replays consistently.
            assert_eq!(&real, walker.real());
            // And its quotient is exactly the canonicalized real config.
            assert_eq!(walker.quotient(), &sym.canonicalize(&real));
        }
        assert!(real.all_decided());
    }
}
