//! Adversarial schedulers and non-termination certificates.
//!
//! The impossibility proofs of the paper (Theorems 4.2 and 5.2) are
//! constructive adversary arguments: an adversary schedules steps so that the
//! configuration stays bivalent forever, so some process takes infinitely
//! many steps without deciding — contradicting Termination. This module is
//! that adversary, made executable:
//!
//! * [`find_nontermination`] searches the (complete) execution graph for a
//!   reachable **cycle**. Because configurations on a cycle repeat exactly,
//!   pumping the cycle yields an infinite execution in which every process
//!   that steps on the cycle takes infinitely many steps while remaining
//!   undecided — a sound, machine-checkable violation of wait-free
//!   termination. The returned [`NonTerminationWitness`] contains the finite
//!   prefix and the cycle schedule; [`verify_witness`] replays it against the
//!   protocol to confirm.
//! * [`bivalent_survival`] is the *online* flavour: starting from the
//!   (bivalent) initial configuration it greedily steps to bivalent
//!   successors, reporting how long it can keep the outcome open. On the
//!   object families covered by the paper's theorems it never gets stuck —
//!   the experiments use this to trace the proofs' mechanics on concrete
//!   candidate protocols.

use crate::explore::{Edge, ExplorationGraph};
use crate::valency::ValencyAnalysis;
use lbsa_core::Pid;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::hash::Hash;

/// A machine-checkable witness that a protocol admits an infinite execution
/// in which the `victims` take infinitely many steps without deciding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NonTerminationWitness {
    /// Edge path from the initial configuration to the cycle entry.
    pub prefix: Vec<Edge>,
    /// The cycle: edges from the entry configuration back to itself.
    pub cycle: Vec<Edge>,
    /// Processes that take at least one step on the cycle (and therefore
    /// infinitely many steps in the pumped execution) while never deciding.
    pub victims: Vec<Pid>,
}

impl NonTerminationWitness {
    /// The schedule of one pump: prefix then `k` repetitions of the cycle.
    #[must_use]
    pub fn schedule(&self, pumps: usize) -> Vec<Pid> {
        let mut s: Vec<Pid> = self.prefix.iter().map(|e| e.pid).collect();
        for _ in 0..pumps {
            s.extend(self.cycle.iter().map(|e| e.pid));
        }
        s
    }
}

/// Searches `graph` for a non-termination witness.
///
/// Returns `None` if the graph is acyclic — which, for a **complete** graph,
/// proves that every execution of the protocol is finite (each process
/// decides or halts after boundedly many steps: wait-freedom).
///
/// On a truncated graph a `None` is inconclusive; check `graph.complete`.
#[must_use]
pub fn find_nontermination<L: Clone + Eq + Hash + Debug>(
    graph: &ExplorationGraph<L>,
) -> Option<NonTerminationWitness> {
    // Iterative DFS keeping the current path of edges so the cycle can be
    // extracted when a grey node is re-entered.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let n = graph.configs.len();
    let mut color = vec![Color::White; n];
    // Stack of (node, next edge index); path_edges[i] is the edge taken from
    // stack[i] to stack[i+1].
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    let mut path_edges: Vec<Edge> = Vec::new();
    color[0] = Color::Grey;

    while let Some(&mut (node, ref mut next)) = stack.last_mut() {
        if *next < graph.edges[node].len() {
            let edge = graph.edges[node][*next];
            *next += 1;
            match color[edge.target] {
                Color::Grey => {
                    // Found a cycle: locate the target on the current stack.
                    let pos = stack
                        .iter()
                        .position(|&(v, _)| v == edge.target)
                        .expect("grey nodes are on the stack");
                    let mut cycle: Vec<Edge> = path_edges[pos..].to_vec();
                    cycle.push(edge);
                    let prefix = path_edges[..pos].to_vec();
                    let victims: BTreeSet<Pid> = cycle.iter().map(|e| e.pid).collect();
                    return Some(NonTerminationWitness {
                        prefix,
                        cycle,
                        victims: victims.into_iter().collect(),
                    });
                }
                Color::White => {
                    color[edge.target] = Color::Grey;
                    stack.push((edge.target, 0));
                    path_edges.push(edge);
                }
                Color::Black => {}
            }
        } else {
            color[node] = Color::Black;
            stack.pop();
            path_edges.pop();
        }
    }
    None
}

/// Replays a witness against the graph and confirms it is genuine: the
/// prefix leads from the initial configuration to a configuration `C`, the
/// cycle leads from `C` back to `C`, and every victim steps on the cycle and
/// is undecided in every cycle configuration.
///
/// Returns `true` if the witness checks out.
#[must_use]
pub fn verify_witness<L: Clone + Eq + Hash + Debug>(
    graph: &ExplorationGraph<L>,
    witness: &NonTerminationWitness,
) -> bool {
    if witness.cycle.is_empty() {
        return false;
    }
    // Walk the prefix.
    let mut cur = 0usize;
    for e in &witness.prefix {
        match graph.edges[cur]
            .iter()
            .find(|g| g.pid == e.pid && g.outcome == e.outcome)
        {
            Some(g) => cur = g.target,
            None => return false,
        }
    }
    let entry = cur;
    // Walk the cycle, checking victims remain undecided.
    let mut stepped: BTreeSet<Pid> = BTreeSet::new();
    for e in &witness.cycle {
        for victim in &witness.victims {
            match graph.configs[cur].procs.get(victim.index()) {
                Some(status) if status.decision().is_none() => {}
                _ => return false, // decided victim, or bogus pid
            }
        }
        match graph.edges[cur]
            .iter()
            .find(|g| g.pid == e.pid && g.outcome == e.outcome)
        {
            Some(g) => {
                stepped.insert(e.pid);
                cur = g.target;
            }
            None => return false,
        }
    }
    cur == entry && witness.victims.iter().all(|v| stepped.contains(v))
}

/// Outcome of an online bivalency-preservation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SurvivalReport {
    /// Steps taken while keeping the configuration multivalent.
    pub steps: usize,
    /// `true` if the walk revisited a configuration (the adversary can loop
    /// forever: unbounded survival).
    pub looped: bool,
    /// `true` if the walk got stuck (every successor of the current
    /// configuration is univalent or barren) before `max_steps`.
    pub stuck: bool,
}

/// Greedy bivalency-preserving adversary: starting from the initial
/// configuration, repeatedly move to any multivalent successor; stop after
/// `max_steps`, when stuck, or when a configuration repeats (a loop —
/// unbounded survival).
///
/// Requires an exact analysis (complete graph); on the object families of
/// Theorems 4.2/5.2 the paper proves this adversary never gets stuck before
/// the objects' nondeterminism is exhausted.
#[must_use]
pub fn bivalent_survival<L: Clone + Eq + Hash + Debug>(
    graph: &ExplorationGraph<L>,
    analysis: &ValencyAnalysis,
    max_steps: usize,
) -> SurvivalReport {
    let mut cur = 0usize;
    let mut seen: BTreeSet<usize> = BTreeSet::from([0]);
    let mut steps = 0usize;
    if !analysis.is_multivalent(cur) {
        return SurvivalReport {
            steps: 0,
            looped: false,
            stuck: true,
        };
    }
    while steps < max_steps {
        let Some(next) = graph.edges[cur]
            .iter()
            .find(|e| analysis.is_multivalent(e.target))
            .map(|e| e.target)
        else {
            return SurvivalReport {
                steps,
                looped: false,
                stuck: true,
            };
        };
        steps += 1;
        if !seen.insert(next) {
            return SurvivalReport {
                steps,
                looped: true,
                stuck: false,
            };
        }
        cur = next;
    }
    SurvivalReport {
        steps,
        looped: false,
        stuck: false,
    }
}

/// Report of an **online** lookahead-driven adversary run
/// (see [`drive_multivalent`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DriveReport {
    /// Steps taken while keeping at least two values decidable.
    pub steps: usize,
    /// `true` if a configuration repeated (the adversary can loop forever).
    pub looped: bool,
    /// `true` if no successor could be certified multivalent before
    /// `max_steps`.
    pub stuck: bool,
    /// Configurations explored across all lookahead probes (cost metric).
    pub lookahead_configs: usize,
}

/// The **online** bivalency adversary: instead of precomputing the whole
/// execution graph (as [`bivalent_survival`] requires), it re-explores a
/// bounded neighbourhood from each candidate successor and only moves to
/// configurations whose decision closure it can *certify* as multivalent.
///
/// This is the form of the adversary usable on systems too large for a full
/// graph, and it mirrors how the paper's proofs actually argue: a local
/// extension argument ("there is a step keeping the configuration
/// bivalent"), not a global one. Probes whose bounded exploration is
/// truncated are treated as *not* certified (sound but conservative).
///
/// # Errors
///
/// Propagates runtime errors from stepping (protocol bugs).
pub fn drive_multivalent<P: lbsa_runtime::process::Protocol>(
    explorer: &crate::explore::Explorer<'_, P>,
    lookahead: crate::explore::Limits,
    max_steps: usize,
) -> Result<DriveReport, lbsa_runtime::error::RuntimeError> {
    use crate::valency::ValencyAnalysis;
    let mut current = explorer.initial_config();
    let mut seen: std::collections::HashSet<crate::config::Configuration<P::LocalState>> =
        std::collections::HashSet::new();
    seen.insert(current.clone());
    let mut steps = 0usize;
    let mut lookahead_configs = 0usize;

    // Certify the start.
    let probe = explorer
        .exploration()
        .from(current.clone())
        .limits(lookahead)
        .run()?;
    lookahead_configs += probe.configs.len();
    let analysis = ValencyAnalysis::analyze(&probe);
    if !(analysis.exact && analysis.is_multivalent(0)) {
        return Ok(DriveReport {
            steps: 0,
            looped: false,
            stuck: true,
            lookahead_configs,
        });
    }

    while steps < max_steps {
        let mut moved = false;
        'candidates: for pid in current.enabled_pids() {
            for succ in explorer.successors_of(&current, pid)? {
                let probe = explorer
                    .exploration()
                    .from(succ.clone())
                    .limits(lookahead)
                    .run()?;
                lookahead_configs += probe.configs.len();
                let analysis = ValencyAnalysis::analyze(&probe);
                if analysis.exact && analysis.is_multivalent(0) {
                    steps += 1;
                    if !seen.insert(succ.clone()) {
                        return Ok(DriveReport {
                            steps,
                            looped: true,
                            stuck: false,
                            lookahead_configs,
                        });
                    }
                    current = succ;
                    moved = true;
                    break 'candidates;
                }
            }
        }
        if !moved {
            return Ok(DriveReport {
                steps,
                looped: false,
                stuck: true,
                lookahead_configs,
            });
        }
    }
    Ok(DriveReport {
        steps,
        looped: false,
        stuck: false,
        lookahead_configs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use lbsa_core::{AnyObject, ObjId, Op, Pid, Value};
    use lbsa_runtime::process::{Protocol, Step};

    /// A wait-free race: both processes decide after one step. Acyclic.
    #[derive(Debug)]
    struct Race;

    impl Protocol for Race {
        type LocalState = ();
        fn num_processes(&self) -> usize {
            2
        }
        fn init(&self, _pid: Pid) {}
        fn pending_op(&self, pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Propose(Value::Int(pid.index() as i64)))
        }
        fn on_response(&self, _pid: Pid, _s: &(), resp: Value) -> Step<()> {
            Step::Decide(resp)
        }
    }

    /// The classic doomed protocol: two processes try to reach consensus
    /// with only a register, by writing their value and reading the other's;
    /// on a tie-break disagreement they retry forever. The adversary must
    /// find a non-terminating execution (FLP in miniature).
    #[derive(Debug)]
    struct RegisterConsensusAttempt;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum RcState {
        Write,
        Read,
    }

    impl Protocol for RegisterConsensusAttempt {
        type LocalState = RcState;
        fn num_processes(&self) -> usize {
            2
        }
        fn init(&self, _pid: Pid) -> RcState {
            RcState::Write
        }
        fn pending_op(&self, pid: Pid, s: &RcState) -> (ObjId, Op) {
            match s {
                RcState::Write => (
                    ObjId(pid.index()),
                    Op::Write(Value::Int(pid.index() as i64)),
                ),
                RcState::Read => (ObjId(1 - pid.index()), Op::Read),
            }
        }
        fn on_response(&self, pid: Pid, s: &RcState, resp: Value) -> Step<RcState> {
            match s {
                RcState::Write => Step::Continue(RcState::Read),
                RcState::Read => match resp.as_int() {
                    // Other process hasn't written: decide own value (it ran
                    // solo so far, as far as it can tell).
                    None => Step::Decide(Value::Int(pid.index() as i64)),
                    // Saw the other value: defer — retry from the start.
                    // (A real protocol would need to break the symmetry; with
                    // registers only, it cannot.)
                    Some(_) => Step::Continue(RcState::Write),
                },
            }
        }
    }

    #[test]
    fn wait_free_protocol_has_no_witness() {
        let p = Race;
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let g = Explorer::new(&p, &objects).exploration().run().unwrap();
        assert!(g.complete);
        assert_eq!(find_nontermination(&g), None);
    }

    #[test]
    fn register_consensus_attempt_is_refuted() {
        let p = RegisterConsensusAttempt;
        let objects = vec![AnyObject::register(), AnyObject::register()];
        let g = Explorer::new(&p, &objects).exploration().run().unwrap();
        assert!(g.complete);
        let w = find_nontermination(&g).expect("the adversary must defeat register consensus");
        assert!(!w.cycle.is_empty());
        assert!(!w.victims.is_empty());
        assert!(
            verify_witness(&g, &w),
            "the witness must replay successfully"
        );
        // The pumped schedule has the right length.
        assert_eq!(w.schedule(3).len(), w.prefix.len() + 3 * w.cycle.len());
    }

    #[test]
    fn tampered_witnesses_are_rejected() {
        let p = RegisterConsensusAttempt;
        let objects = vec![AnyObject::register(), AnyObject::register()];
        let g = Explorer::new(&p, &objects).exploration().run().unwrap();
        let w = find_nontermination(&g).unwrap();

        let mut empty_cycle = w.clone();
        empty_cycle.cycle.clear();
        assert!(!verify_witness(&g, &empty_cycle));

        let mut wrong_victim = w.clone();
        wrong_victim.victims = vec![Pid(99)];
        assert!(!verify_witness(&g, &wrong_victim));

        let mut broken_edge = w.clone();
        if let Some(e) = broken_edge.cycle.first_mut() {
            e.outcome += 17;
        }
        assert!(!verify_witness(&g, &broken_edge));
    }

    /// A protocol against which bivalence persists forever: q0 loops
    /// (write 0; read; decide 1 if it reads 1), q1 symmetrically. From any
    /// point on the write/read/write/read cycle, either decision is still
    /// reachable, so the adversary can keep the outcome open indefinitely.
    #[derive(Debug)]
    struct Yielders;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum YState {
        Write,
        Read,
    }

    impl Protocol for Yielders {
        type LocalState = YState;
        fn num_processes(&self) -> usize {
            2
        }
        fn init(&self, _pid: Pid) -> YState {
            YState::Write
        }
        fn pending_op(&self, pid: Pid, s: &YState) -> (ObjId, Op) {
            match s {
                YState::Write => (ObjId(0), Op::Write(Value::Int(pid.index() as i64))),
                YState::Read => (ObjId(0), Op::Read),
            }
        }
        fn on_response(&self, pid: Pid, s: &YState, resp: Value) -> Step<YState> {
            match s {
                YState::Write => Step::Continue(YState::Read),
                YState::Read => {
                    let own = pid.index() as i64;
                    match resp.as_int() {
                        Some(v) if v != own => Step::Decide(Value::Int(v)),
                        _ => Step::Continue(YState::Write),
                    }
                }
            }
        }
    }

    #[test]
    fn survival_against_yielders_is_unbounded() {
        let p = Yielders;
        let objects = vec![AnyObject::register()];
        let g = Explorer::new(&p, &objects).exploration().run().unwrap();
        let va = ValencyAnalysis::analyze(&g);
        assert!(
            va.is_multivalent(0),
            "initial configuration must be bivalent"
        );
        let report = bivalent_survival(&g, &va, 10_000);
        assert!(
            report.looped,
            "the adversary must be able to keep the outcome open forever: {report:?}"
        );
        assert!(!report.stuck);
    }

    #[test]
    fn survival_against_a_real_consensus_object_is_bounded() {
        let p = Race;
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let g = Explorer::new(&p, &objects).exploration().run().unwrap();
        let va = ValencyAnalysis::analyze(&g);
        let report = bivalent_survival(&g, &va, 10_000);
        assert!(
            report.stuck,
            "one step on the consensus object fixes the outcome"
        );
        assert_eq!(report.steps, 0);
    }

    #[test]
    fn online_adversary_loops_forever_against_yielders() {
        use crate::explore::Limits;
        let p = Yielders;
        let objects = vec![AnyObject::register()];
        let ex = Explorer::new(&p, &objects);
        let report = drive_multivalent(&ex, Limits::default(), 10_000).unwrap();
        assert!(
            report.looped,
            "online adversary must find the loop: {report:?}"
        );
        assert!(report.lookahead_configs > 0);
    }

    #[test]
    fn online_adversary_stuck_against_real_consensus() {
        use crate::explore::Limits;
        let p = Race;
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let report = drive_multivalent(&ex, Limits::default(), 10_000).unwrap();
        assert!(report.stuck);
        assert_eq!(report.steps, 0, "one consensus step seals the outcome");
    }

    #[test]
    fn online_and_offline_adversaries_agree() {
        use crate::explore::Limits;
        let p = Yielders;
        let objects = vec![AnyObject::register()];
        let ex = Explorer::new(&p, &objects);
        let g = ex.exploration().run().unwrap();
        let va = ValencyAnalysis::analyze(&g);
        let offline = bivalent_survival(&g, &va, 10_000);
        let online = drive_multivalent(&ex, Limits::default(), 10_000).unwrap();
        assert_eq!(offline.looped, online.looped);
        assert_eq!(offline.stuck, online.stuck);
    }
}
