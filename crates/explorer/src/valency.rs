//! Valency analysis: decision closures over an execution graph.
//!
//! The bivalency technique of Fischer–Lynch–Paterson, used by the paper in
//! Theorems 4.2 and 5.2, classifies configurations by the set of values that
//! remain decidable from them: a configuration is `v`-valent if only `v` can
//! ever be decided from it, and *bivalent* if at least two values can. This
//! module computes those **decision closures** exactly, by a monotone
//! fixpoint over the (complete) exploration graph, and locates *critical
//! configurations* — bivalent configurations all of whose successors are
//! univalent — which is where every FLP-style argument digs in (Claim 5.2.2
//! in the paper).
//!
//! On a **symmetry-reduced** graph the analysis computes the valence of each
//! *orbit*: decidable-value sets are unions over executions, and pid
//! permutations map executions to executions while fixing every decided
//! value, so a configuration and its canonical representative have the same
//! closure. Counting is per orbit, not per raw configuration — a census over
//! a reduced graph reports orbit counts.

use crate::explore::{ExplorationGraph, Explorer};
use lbsa_core::{ObjId, Pid, Value};
use lbsa_runtime::process::Protocol;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::hash::Hash;

/// The valence of a configuration: which values remain decidable from it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Valence {
    /// No decision is reachable (possible for protocols that never decide).
    Barren,
    /// Exactly one value is decidable — the configuration is univalent.
    Univalent(Value),
    /// Two or more values are decidable — bivalent (or multivalent).
    Multivalent(Vec<Value>),
}

impl Valence {
    /// Returns `true` for a bivalent/multivalent configuration.
    #[must_use]
    pub fn is_multivalent(&self) -> bool {
        matches!(self, Valence::Multivalent(_))
    }

    /// Returns the unique decidable value, if univalent.
    #[must_use]
    pub fn univalent_value(&self) -> Option<Value> {
        match self {
            Valence::Univalent(v) => Some(*v),
            _ => None,
        }
    }
}

/// Decision closures for every configuration of an exploration graph.
#[derive(Clone, Debug)]
pub struct ValencyAnalysis {
    closures: Vec<BTreeSet<Value>>,
    /// `true` if the underlying graph was complete, making the closures
    /// exact. On a truncated graph the closures are **under**-approximations
    /// (more values might be decidable through unexpanded frontiers).
    pub exact: bool,
}

impl ValencyAnalysis {
    /// Computes decision closures for `graph` by fixpoint iteration.
    ///
    /// `closure[i]` is the set of values decided in configuration `i` itself
    /// or in any configuration reachable from it.
    #[must_use]
    pub fn analyze<L: Clone + Eq + Hash + Debug>(graph: &ExplorationGraph<L>) -> Self {
        let n = graph.configs.len();
        let mut closures: Vec<BTreeSet<Value>> = (0..n)
            .map(|i| graph.configs[i].distinct_decisions().into_iter().collect())
            .collect();
        // Monotone fixpoint: closures only grow, the lattice is finite.
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                for e in &graph.edges[i] {
                    if !closures[e.target].is_subset(&closures[i]) {
                        let add: Vec<Value> = closures[e.target].iter().copied().collect();
                        closures[i].extend(add);
                        changed = true;
                    }
                }
            }
        }
        ValencyAnalysis {
            closures,
            exact: graph.complete,
        }
    }

    /// The decision closure of configuration `idx`.
    #[must_use]
    pub fn closure(&self, idx: usize) -> &BTreeSet<Value> {
        &self.closures[idx]
    }

    /// The valence of configuration `idx`.
    #[must_use]
    pub fn valence(&self, idx: usize) -> Valence {
        let c = &self.closures[idx];
        match c.len() {
            0 => Valence::Barren,
            1 => Valence::Univalent(*c.iter().next().expect("len 1")),
            _ => Valence::Multivalent(c.iter().copied().collect()),
        }
    }

    /// Returns `true` if configuration `idx` is bivalent (or more).
    #[must_use]
    pub fn is_multivalent(&self, idx: usize) -> bool {
        self.closures[idx].len() >= 2
    }

    /// Number of analyzed configurations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.closures.len()
    }

    /// Analyses are never empty (the graph has an initial configuration).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Finds all **critical configurations**: multivalent configurations all
    /// of whose successors are univalent (the paper's Claim 5.2.2 / the FLP
    /// "decision step" configurations).
    ///
    /// Only meaningful on exact analyses of complete graphs.
    #[must_use]
    pub fn critical_configurations<L: Clone + Eq + Hash + Debug>(
        &self,
        graph: &ExplorationGraph<L>,
    ) -> Vec<usize> {
        (0..self.closures.len())
            .filter(|&i| {
                self.is_multivalent(i)
                    && !graph.edges[i].is_empty()
                    && graph.edges[i]
                        .iter()
                        .all(|e| !self.is_multivalent(e.target))
            })
            .collect()
    }

    /// Counts configurations by valence class: `(barren, univalent,
    /// multivalent)`.
    #[must_use]
    pub fn census(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for c in &self.closures {
            match c.len() {
                0 => counts.0 += 1,
                1 => counts.1 += 1,
                _ => counts.2 += 1,
            }
        }
        counts
    }
}

/// The anatomy of one critical configuration: which object each enabled
/// process is poised to access.
///
/// The combinatorial heart of the paper's proofs (Claims 4.2.7 and 5.2.3)
/// is that at a critical configuration, all processes must be about to
/// operate on the **same object** — and Claims 4.2.8 / 5.2.4 add that this
/// object cannot be a register. [`critical_anatomy`] extracts exactly this
/// data from concrete protocols, so the experiments can watch the proof's
/// skeleton appear in real executions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalInfo {
    /// Index of the critical configuration in the graph.
    pub config: usize,
    /// Each enabled process, the object its pending operation targets, and
    /// the operation itself (Subclaim 5.2.8.1 inspects the *kind* of the
    /// pending operations: at a critical configuration over a PAC object,
    /// every process is about to perform a decide).
    pub pending: Vec<(Pid, ObjId, lbsa_core::Op)>,
    /// The common target, when every pending operation addresses one object.
    pub same_object: Option<ObjId>,
    /// Human-readable family name of the common object, when one exists.
    pub object_kind: Option<&'static str>,
}

/// Computes the anatomy of every critical configuration of `graph`.
///
/// # Errors
///
/// Propagates runtime errors from querying pending operations.
pub fn critical_anatomy<P: Protocol>(
    explorer: &Explorer<'_, P>,
    graph: &ExplorationGraph<P::LocalState>,
    analysis: &ValencyAnalysis,
) -> Result<Vec<CriticalInfo>, lbsa_runtime::error::RuntimeError> {
    use lbsa_core::spec::ObjectSpec;
    use lbsa_runtime::process::ProcStatus;
    let mut out = Vec::new();
    for idx in analysis.critical_configurations(graph) {
        let config = &graph.configs[idx];
        let mut pending = Vec::new();
        for pid in config.enabled_pids() {
            let local = match &config.procs[pid.index()] {
                ProcStatus::Running(s) => s,
                _ => unreachable!("enabled pids are running"),
            };
            let (obj, op) = explorer.protocol().pending_op(pid, local);
            pending.push((pid, obj, op));
        }
        let same_object = match pending.split_first() {
            Some(((_, first, _), rest)) if rest.iter().all(|(_, o, _)| o == first) => Some(*first),
            _ => None,
        };
        let object_kind = same_object
            .and_then(|o| explorer.objects().get(o.index()))
            .map(|o| o.name());
        out.push(CriticalInfo {
            config: idx,
            pending,
            same_object,
            object_kind,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use lbsa_core::{AnyObject, Op};
    use lbsa_runtime::process::{Protocol, Step};

    /// Two processes propose their own pid to one consensus object.
    #[derive(Debug)]
    struct RaceConsensus;

    impl Protocol for RaceConsensus {
        type LocalState = ();
        fn num_processes(&self) -> usize {
            2
        }
        fn init(&self, _pid: Pid) {}
        fn pending_op(&self, pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Propose(Value::Int(pid.index() as i64)))
        }
        fn on_response(&self, _pid: Pid, _s: &(), resp: Value) -> Step<()> {
            Step::Decide(resp)
        }
    }

    #[test]
    fn initial_config_of_a_race_is_bivalent() {
        let p = RaceConsensus;
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let g = Explorer::new(&p, &objects).exploration().run().unwrap();
        let va = ValencyAnalysis::analyze(&g);
        assert!(va.exact);
        // Before anyone moves, either value can win: bivalent.
        assert_eq!(
            va.valence(0),
            Valence::Multivalent(vec![Value::Int(0), Value::Int(1)])
        );
        // After the first propose, the winner is fixed: every successor of
        // the initial configuration is univalent, so config 0 is critical.
        let crit = va.critical_configurations(&g);
        assert!(
            crit.contains(&0),
            "the race's initial configuration is critical"
        );
    }

    #[test]
    fn univalent_after_first_step() {
        let p = RaceConsensus;
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let g = ex.exploration().run().unwrap();
        let va = ValencyAnalysis::analyze(&g);
        for e in &g.edges[0] {
            let v = va.valence(e.target);
            assert_eq!(v.univalent_value(), Some(Value::Int(e.pid.index() as i64)));
            assert!(!v.is_multivalent());
        }
    }

    #[test]
    fn census_adds_up() {
        let p = RaceConsensus;
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let g = Explorer::new(&p, &objects).exploration().run().unwrap();
        let va = ValencyAnalysis::analyze(&g);
        let (b, u, m) = va.census();
        assert_eq!(b + u + m, va.len());
        assert_eq!(
            b, 0,
            "every configuration of this protocol leads to decisions"
        );
        assert!(m >= 1, "the initial configuration is multivalent");
        assert!(u >= 2);
    }

    /// A protocol that never decides: all configurations are barren.
    #[derive(Debug)]
    struct NeverDecide;

    impl Protocol for NeverDecide {
        type LocalState = ();
        fn num_processes(&self) -> usize {
            1
        }
        fn init(&self, _pid: Pid) {}
        fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Read)
        }
        fn on_response(&self, _pid: Pid, _s: &(), _r: Value) -> Step<()> {
            Step::Continue(())
        }
    }

    #[test]
    fn non_deciding_protocol_is_barren() {
        let p = NeverDecide;
        let objects = vec![AnyObject::register()];
        let g = Explorer::new(&p, &objects).exploration().run().unwrap();
        let va = ValencyAnalysis::analyze(&g);
        for i in 0..va.len() {
            assert_eq!(va.valence(i), Valence::Barren);
        }
        assert!(va.critical_configurations(&g).is_empty());
    }

    #[test]
    fn truncated_graphs_are_flagged_inexact() {
        let p = RaceConsensus;
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let g = Explorer::new(&p, &objects)
            .exploration()
            .max_configs(1)
            .run()
            .unwrap();
        let va = ValencyAnalysis::analyze(&g);
        assert!(!va.exact);
    }

    #[test]
    fn claim_4_2_7_critical_configs_converge_on_one_object() {
        // A two-object protocol: each process first writes a register, then
        // proposes to consensus. The critical configuration must have BOTH
        // processes poised on the consensus object — never the registers.
        #[derive(Debug)]
        struct WriteThenPropose;
        impl Protocol for WriteThenPropose {
            type LocalState = bool; // written yet?
            fn num_processes(&self) -> usize {
                2
            }
            fn init(&self, _pid: Pid) -> bool {
                false
            }
            fn pending_op(&self, pid: Pid, s: &bool) -> (ObjId, Op) {
                if !s {
                    (
                        ObjId(1 + pid.index()),
                        Op::Write(Value::Int(pid.index() as i64)),
                    )
                } else {
                    (ObjId(0), Op::Propose(Value::Int(pid.index() as i64)))
                }
            }
            fn on_response(&self, _pid: Pid, s: &bool, resp: Value) -> Step<bool> {
                if !s {
                    Step::Continue(true)
                } else {
                    Step::Decide(resp)
                }
            }
        }
        let p = WriteThenPropose;
        let objects = vec![
            AnyObject::consensus(2).unwrap(),
            AnyObject::register(),
            AnyObject::register(),
        ];
        let ex = Explorer::new(&p, &objects);
        let g = ex.exploration().run().unwrap();
        let va = ValencyAnalysis::analyze(&g);
        let anatomy = critical_anatomy(&ex, &g, &va).unwrap();
        assert!(!anatomy.is_empty(), "a decision step must exist");
        for info in &anatomy {
            assert_eq!(
                info.same_object,
                Some(ObjId(0)),
                "claim 4.2.7: all processes poised on the same object at {}",
                info.config
            );
            assert_eq!(
                info.object_kind,
                Some("n-consensus"),
                "claim 4.2.8: not a register"
            );
            assert_eq!(info.pending.len(), 2);
        }
    }

    #[test]
    fn critical_anatomy_of_the_plain_race() {
        let p = RaceConsensus;
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let g = ex.exploration().run().unwrap();
        let va = ValencyAnalysis::analyze(&g);
        let anatomy = critical_anatomy(&ex, &g, &va).unwrap();
        assert_eq!(anatomy.len(), 1);
        assert_eq!(
            anatomy[0].config, 0,
            "the initial configuration is the critical one"
        );
        assert_eq!(anatomy[0].same_object, Some(ObjId(0)));
    }
}
