//! Global configurations: the nodes of the execution graph.

use lbsa_core::{AnyState, Pid, Value};
use lbsa_runtime::process::ProcStatus;
use std::fmt::Debug;
use std::hash::Hash;

/// A global configuration: the state of every shared object plus the status
/// (and local state) of every process.
///
/// Configurations are plain first-order data — `Clone + Eq + Hash` — which is
/// what allows exhaustive exploration to deduplicate them. Two executions
/// that reach the same configuration have identical futures (protocols and
/// specs are deterministic functions of the configuration), so merging them
/// is sound.
///
/// The `Ord` derive (available when the local state is `Ord`) is a pure
/// *content* order: symmetry reduction picks the minimum of an orbit under
/// it as the canonical representative. Interned ids must never be compared
/// for this purpose — interning order differs between runs and thread
/// counts, while content order does not.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Configuration<L> {
    /// State of each shared object, indexed by `ObjId`.
    pub object_states: Vec<AnyState>,
    /// Status of each process, indexed by `Pid`.
    pub procs: Vec<ProcStatus<L>>,
}

impl<L: Clone + Eq + Hash + Debug> Configuration<L> {
    /// The pids currently able to take a step.
    #[must_use]
    pub fn enabled_pids(&self) -> Vec<Pid> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_running())
            .map(|(i, _)| Pid(i))
            .collect()
    }

    /// Returns `true` if no process can take a step.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        self.procs.iter().all(|s| !s.is_running())
    }

    /// Each process's decision so far.
    #[must_use]
    pub fn decisions(&self) -> Vec<Option<Value>> {
        self.procs.iter().map(ProcStatus::decision).collect()
    }

    /// The distinct values decided so far, sorted.
    #[must_use]
    pub fn distinct_decisions(&self) -> Vec<Value> {
        let mut vs: Vec<Value> = self.procs.iter().filter_map(ProcStatus::decision).collect();
        vs.sort();
        vs.dedup();
        vs
    }

    /// Returns `true` if every process has decided.
    #[must_use]
    pub fn all_decided(&self) -> bool {
        self.procs.iter().all(|s| s.decision().is_some())
    }

    /// Returns `true` if `pid` has aborted.
    #[must_use]
    pub fn has_aborted(&self, pid: Pid) -> bool {
        matches!(self.procs.get(pid.index()), Some(ProcStatus::Aborted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::spec::ObjectSpec;
    use lbsa_core::AnyObject;

    fn cfg(procs: Vec<ProcStatus<u8>>) -> Configuration<u8> {
        Configuration {
            object_states: vec![AnyObject::register().initial_state()],
            procs,
        }
    }

    #[test]
    fn enabled_and_terminal() {
        let c = cfg(vec![
            ProcStatus::Running(0),
            ProcStatus::Decided(Value::Int(1)),
        ]);
        assert_eq!(c.enabled_pids(), vec![Pid(0)]);
        assert!(!c.is_terminal());
        let c = cfg(vec![
            ProcStatus::Decided(Value::Int(1)),
            ProcStatus::Crashed,
        ]);
        assert!(c.is_terminal());
        assert!(c.enabled_pids().is_empty());
    }

    #[test]
    fn decision_queries() {
        let c = cfg(vec![
            ProcStatus::Decided(Value::Int(2)),
            ProcStatus::Decided(Value::Int(1)),
            ProcStatus::Decided(Value::Int(2)),
            ProcStatus::Running(0),
        ]);
        assert_eq!(c.distinct_decisions(), vec![Value::Int(1), Value::Int(2)]);
        assert!(!c.all_decided());
        let c = cfg(vec![ProcStatus::Decided(Value::Int(2))]);
        assert!(c.all_decided());
    }

    #[test]
    fn abort_query() {
        let c = cfg(vec![ProcStatus::Aborted, ProcStatus::Running(0)]);
        assert!(c.has_aborted(Pid(0)));
        assert!(!c.has_aborted(Pid(1)));
        assert!(!c.has_aborted(Pid(9)));
    }

    #[test]
    fn configurations_dedupe_in_hash_sets() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(cfg(vec![ProcStatus::Running(0)]));
        set.insert(cfg(vec![ProcStatus::Running(0)]));
        set.insert(cfg(vec![ProcStatus::Running(1)]));
        assert_eq!(set.len(), 2);
    }
}
