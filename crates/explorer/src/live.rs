//! Live observability: registry-backed metrics and the progress watcher.
//!
//! The engines in [`crate::explore`] and [`crate::sampling`] report
//! [`ExploreStats`](crate::stats::ExploreStats) *after* a run; this module
//! is the during-a-run view. [`LiveMetrics`] registers a fixed set of
//! dotted-name counters and gauges into an
//! [`lbsa_support::obs::Registry`], hands the engines lock-free handles to
//! bump, and [`ProgressWatcher`] samples those handles on its own thread,
//! emitting one `progress` trace event per period (plus a final one at
//! stop, so even sub-period runs produce at least one).
//!
//! Overhead contract: nothing here runs unless the caller opts in via
//! [`Exploration::registry`](crate::Exploration::registry) or
//! [`Exploration::progress_every`](crate::Exploration::progress_every) —
//! the engines take `Option<&LiveMetrics>` and the disabled path is one
//! branch per level (deterministic engine) or per task (work-stealing).
//! Enabled, every update is a relaxed atomic on a handle shared with the
//! watcher; the registry lock is touched only at registration and
//! snapshot.
//!
//! The `progress` event schema (validated by `exp_report
//! --validate-trace`):
//!
//! ```json
//! {"event":"progress","strategy":"work-stealing","configs":1234,
//!  "configs_per_sec":81000.0,"ema_configs_per_sec":78500.0,
//!  "frontier_depth":96,"workers":4,"utilization":0.75,
//!  "eta_us":140000,"mem_bytes":1048576,"elapsed_us":50234,"final":false}
//! ```
//!
//! `eta_us` is `-1` when no estimate is available; the model depends on
//! the strategy (see [`EtaModel`]): sampling scales elapsed time by the
//! remaining run budget, work-stealing divides the pending-task gauge by
//! the EMA rate, and level-synchronous BFS fits a geometric
//! frontier-growth model to consecutive frontier readings.

use lbsa_support::json::Json;
use lbsa_support::obs::{Counter, Gauge, Registry, Tracer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The engines' shared handles into a [`Registry`]: one allocation of
/// names up front, relaxed atomics ever after. Cloning shares the
/// underlying metrics (all fields are `Arc`s), which is how the watcher
/// observes the engines without ever taking the registry lock.
#[derive(Clone, Debug)]
pub(crate) struct LiveMetrics {
    /// `explore.configs` — configurations expanded so far.
    pub configs: Arc<Counter>,
    /// `explore.transitions` — transitions (edges) discovered so far.
    pub transitions: Arc<Counter>,
    /// `explore.dedup_hits` — successors that resolved to a known node.
    pub dedup_hits: Arc<Counter>,
    /// `explore.frontier_depth` — pending work: the next BFS frontier's
    /// width (deterministic engine) or the pending-task count
    /// (work-stealing).
    pub frontier_depth: Arc<Gauge>,
    /// `explore.workers` — worker thread count of the running engine.
    pub workers: Arc<Gauge>,
    /// `explore.parked_workers` — workers currently in a timed park.
    pub parked_workers: Arc<Gauge>,
    /// `ws.steals` — successful steal sweeps (work-stealing only).
    pub steals: Arc<Counter>,
    /// `sample.runs` — seeded runs completed (sampling only).
    pub sample_runs: Arc<Counter>,
    /// `sample.runs_total` — the sweep's effective run budget.
    pub sample_runs_total: Arc<Gauge>,
    /// `mem.interner_bytes` — state + proc interner footprint estimate.
    pub mem_interner: Arc<Gauge>,
    /// `mem.index_bytes` — dedup index footprint estimate.
    pub mem_index: Arc<Gauge>,
    /// `mem.canon_memo_bytes` — canonicalization memo footprint estimate.
    pub mem_canon: Arc<Gauge>,
    /// `mem.graph_bytes` — final graph footprint estimate (set at the end
    /// of a run; the graph's backing vectors are not cheaply measurable
    /// mid-flight).
    pub mem_graph: Arc<Gauge>,
    /// `mem.deque_bytes` — work-stealing deque buffers (set at worker
    /// join; the owner end is not shareable mid-run).
    pub mem_deques: Arc<Gauge>,
}

impl LiveMetrics {
    /// Registers (or re-attaches to) the full metric set in `registry`.
    pub fn register(registry: &Registry) -> LiveMetrics {
        LiveMetrics {
            configs: registry.counter("explore.configs"),
            transitions: registry.counter("explore.transitions"),
            dedup_hits: registry.counter("explore.dedup_hits"),
            frontier_depth: registry.gauge("explore.frontier_depth"),
            workers: registry.gauge("explore.workers"),
            parked_workers: registry.gauge("explore.parked_workers"),
            steals: registry.counter("ws.steals"),
            sample_runs: registry.counter("sample.runs"),
            sample_runs_total: registry.gauge("sample.runs_total"),
            mem_interner: registry.gauge("mem.interner_bytes"),
            mem_index: registry.gauge("mem.index_bytes"),
            mem_canon: registry.gauge("mem.canon_memo_bytes"),
            mem_graph: registry.gauge("mem.graph_bytes"),
            mem_deques: registry.gauge("mem.deque_bytes"),
        }
    }

    /// Total estimated footprint across the `mem.*` gauges (heap-tracking
    /// gauges from the `mem-profile` allocator are reported separately by
    /// their binaries).
    fn mem_bytes(&self) -> i64 {
        self.mem_interner.get()
            + self.mem_index.get()
            + self.mem_canon.get()
            + self.mem_graph.get()
            + self.mem_deques.get()
    }
}

/// Which ETA model a [`ProgressWatcher`] applies — one per strategy, since
/// each exposes a different notion of "work remaining".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EtaModel {
    /// Level-synchronous BFS: remaining work is estimated from the
    /// geometric growth ratio of consecutive frontier readings `g =
    /// f_now / f_prev` — when the frontier shrinks (`g < 1`) the tail sums
    /// to `f_now / (1 - g)` nodes; while it still grows the ETA is
    /// unknown (`-1`).
    LevelSync,
    /// Work-stealing: the pending-task gauge *is* the known remaining
    /// work; ETA divides it by the EMA rate. An underestimate while
    /// discovery outpaces expansion — documented, not corrected.
    WorkStealing,
    /// Sampling: the run budget is fixed up front, so ETA scales elapsed
    /// time by `remaining / done`.
    Sampling,
}

impl EtaModel {
    /// The strategy tag carried by every `progress` event.
    fn strategy(self) -> &'static str {
        match self {
            EtaModel::LevelSync => "level-sync",
            EtaModel::WorkStealing => "work-stealing",
            EtaModel::Sampling => "sampling",
        }
    }
}

/// Between-tick state of the watcher's rate and ETA estimators.
struct ProgressState {
    model: EtaModel,
    started: Instant,
    last_tick: Instant,
    last_configs: i64,
    ema: Option<f64>,
    prev_frontier: Option<i64>,
}

/// Exponential-moving-average smoothing for the configs/sec rate: ~70% of
/// the weight within the last three ticks — responsive to phase changes
/// without gyrating on per-tick noise.
const EMA_ALPHA: f64 = 0.3;

impl ProgressState {
    /// Reads the live handles, advances the estimators, and builds one
    /// `progress` payload.
    fn tick(&mut self, live: &LiveMetrics, is_final: bool) -> Json {
        let now = Instant::now();
        let configs = match self.model {
            EtaModel::Sampling => i64::try_from(live.sample_runs.get()).unwrap_or(i64::MAX),
            _ => i64::try_from(live.configs.get()).unwrap_or(i64::MAX),
        };
        let dt = now.duration_since(self.last_tick).as_secs_f64();
        #[allow(clippy::cast_precision_loss)]
        let inst = if dt > 0.0 {
            (configs - self.last_configs) as f64 / dt
        } else {
            0.0
        };
        let ema = EMA_ALPHA.mul_add(inst, (1.0 - EMA_ALPHA) * self.ema.unwrap_or(inst));
        self.ema = Some(ema);
        self.last_tick = now;
        self.last_configs = configs;

        let frontier = match self.model {
            EtaModel::Sampling => 0,
            _ => live.frontier_depth.get(),
        };
        let workers = live.workers.get();
        let parked = live.parked_workers.get().clamp(0, workers);
        #[allow(clippy::cast_precision_loss)]
        let utilization = if workers > 0 {
            (workers - parked) as f64 / workers as f64
        } else {
            1.0
        };
        let eta_us = if is_final {
            0
        } else {
            self.eta_us(live, configs, frontier, ema)
        };
        self.prev_frontier = Some(frontier);

        Json::object()
            .set("strategy", self.model.strategy())
            .set("configs", configs)
            .set("configs_per_sec", inst)
            .set("ema_configs_per_sec", ema)
            .set("frontier_depth", frontier)
            .set("workers", workers)
            .set("utilization", utilization)
            .set("eta_us", eta_us)
            .set("mem_bytes", live.mem_bytes())
            .set(
                "elapsed_us",
                u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX),
            )
            .set("final", is_final)
    }

    /// Estimated microseconds to completion, `-1` when unknown.
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    fn eta_us(&self, live: &LiveMetrics, configs: i64, frontier: i64, ema: f64) -> i64 {
        let secs_to_us = |secs: f64| -> i64 {
            if secs.is_finite() && secs >= 0.0 {
                (secs * 1e6).min(i64::MAX as f64) as i64
            } else {
                -1
            }
        };
        match self.model {
            EtaModel::Sampling => {
                let total = live.sample_runs_total.get();
                if total > 0 && configs > 0 {
                    let remaining = (total - configs).max(0) as f64;
                    let per_run = self.started.elapsed().as_secs_f64() / configs as f64;
                    secs_to_us(remaining * per_run)
                } else {
                    -1
                }
            }
            EtaModel::WorkStealing => {
                if ema > 0.0 && frontier >= 0 {
                    secs_to_us(frontier as f64 / ema)
                } else {
                    -1
                }
            }
            EtaModel::LevelSync => match self.prev_frontier {
                Some(prev) if prev > 0 && frontier > 0 && frontier < prev && ema > 0.0 => {
                    let g = frontier as f64 / prev as f64;
                    let remaining = frontier as f64 / (1.0 - g);
                    secs_to_us(remaining / ema)
                }
                _ => -1,
            },
        }
    }
}

/// A background thread sampling [`LiveMetrics`] every `period` and
/// emitting `progress` trace events; started by the builder when
/// [`Exploration::progress_every`](crate::Exploration::progress_every) is
/// set and the run's tracer is enabled.
///
/// [`ProgressWatcher::finish`] signals the thread, which emits one final
/// event (with `"final": true` and `eta_us == 0`) before exiting — so a
/// run shorter than a period still produces at least one `progress` line,
/// carrying the run's end-state counters.
pub(crate) struct ProgressWatcher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ProgressWatcher {
    /// Spawns the watcher thread. `live` and `tracer` are shared handles;
    /// the watcher owns its clones and never blocks the engines.
    pub fn spawn(
        live: LiveMetrics,
        tracer: Tracer,
        period: Duration,
        model: EtaModel,
    ) -> ProgressWatcher {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let period = period.max(Duration::from_millis(1));
        let handle = std::thread::Builder::new()
            .name("lbsa-progress".into())
            .spawn(move || {
                let started = Instant::now();
                let mut state = ProgressState {
                    model,
                    started,
                    last_tick: started,
                    last_configs: 0,
                    ema: None,
                    prev_frontier: None,
                };
                loop {
                    // Sleep in short slices so `finish()` joins promptly
                    // even with multi-second periods.
                    let mut slept = Duration::ZERO;
                    while slept < period && !stop_flag.load(Ordering::Acquire) {
                        let slice = (period - slept).min(Duration::from_millis(2));
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                    let is_final = stop_flag.load(Ordering::Acquire);
                    tracer.emit("progress", state.tick(&live, is_final));
                    if is_final {
                        return;
                    }
                }
            })
            .expect("spawning the progress watcher thread");
        ProgressWatcher {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the watcher: signals the thread, which emits the final
    /// `progress` event, and joins it.
    pub fn finish(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressWatcher {
    /// Belt-and-braces: an unfinished watcher (engine error path) is still
    /// signalled and joined, never leaked.
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_support::obs::MemorySink;

    #[test]
    fn watcher_emits_ticks_and_a_final_event() {
        let registry = Registry::new();
        let live = LiveMetrics::register(&registry);
        live.workers.set(4);
        let sink = MemorySink::new();
        let tracer = Tracer::new(sink.clone());
        let watcher = ProgressWatcher::spawn(
            live.clone(),
            tracer,
            Duration::from_millis(5),
            EtaModel::WorkStealing,
        );
        for _ in 0..10 {
            live.configs.add(800);
            live.frontier_depth.set(10);
            std::thread::sleep(Duration::from_millis(5));
        }
        watcher.finish();
        let events = sink.events();
        assert!(
            events.len() >= 5,
            "a 50ms simulated run on a 5ms cadence must tick repeatedly, got {}",
            events.len()
        );
        for event in events.iter() {
            assert_eq!(event.name, "progress");
            let configs = event.fields.get("configs").and_then(Json::as_i64);
            assert!(configs.is_some(), "progress events carry numeric configs");
            assert!(event.fields.get("configs_per_sec").is_some());
            assert!(event.fields.get("frontier_depth").is_some());
            assert!(event.fields.get("eta_us").is_some());
        }
        let last = events.last().expect("at least one event");
        assert_eq!(last.fields.get("final").and_then(Json::as_bool), Some(true));
        assert_eq!(last.fields.get("eta_us").and_then(Json::as_i64), Some(0));
        assert_eq!(
            last.fields.get("configs").and_then(Json::as_i64),
            Some(8000),
            "the final event carries the end-state counters"
        );
        assert_eq!(
            last.fields.get("strategy").and_then(Json::as_str),
            Some("work-stealing")
        );
    }

    #[test]
    fn fast_runs_still_get_one_final_progress_event() {
        let registry = Registry::new();
        let live = LiveMetrics::register(&registry);
        let sink = MemorySink::new();
        let tracer = Tracer::new(sink.clone());
        // Stop immediately: the run finished well inside one period.
        let watcher =
            ProgressWatcher::spawn(live, tracer, Duration::from_secs(3600), EtaModel::LevelSync);
        watcher.finish();
        let events = sink.events();
        assert_eq!(events.len(), 1, "exactly the final event");
        assert_eq!(
            events[0].fields.get("final").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn sampling_eta_scales_elapsed_by_remaining_budget() {
        let registry = Registry::new();
        let live = LiveMetrics::register(&registry);
        live.sample_runs_total.set(1000);
        live.sample_runs.add(250);
        let started = Instant::now() - Duration::from_secs(1);
        let state = ProgressState {
            model: EtaModel::Sampling,
            started,
            last_tick: started,
            last_configs: 0,
            ema: None,
            prev_frontier: None,
        };
        let eta = state.eta_us(&live, 250, 0, 100.0);
        // 250 runs took ~1s, 750 remain: ETA ≈ 3s, generous tolerance for
        // scheduling noise.
        assert!(
            (2_000_000..=4_500_000).contains(&eta),
            "eta_us {eta} outside the expected ~3s band"
        );
    }
}
