//! Exploration metrics: where the model checker's time and memory go.
//!
//! [`ExploreStats`] is filled in by every exploration and carried on the
//! resulting [`ExplorationGraph`](crate::ExplorationGraph); the experiment
//! binaries print it so state-space growth and engine throughput are
//! visible in the recorded experiment outputs.
//!
//! Timings are wall-clock and therefore *not* part of graph identity: two
//! explorations of the same protocol produce identical graphs with
//! different stats.

use std::time::Duration;

/// Per-BFS-level measurements.
#[derive(Clone, Copy, Debug, Default)]
pub struct LevelStats {
    /// Number of configurations expanded in this level.
    pub width: usize,
    /// Transitions discovered while expanding this level.
    pub transitions: usize,
    /// Wall-clock time spent on this level (expansion + merge).
    pub elapsed: Duration,
    /// `true` if this level ran on the parallel expansion path. A progress
    /// callback watching a multi-threaded run can use this to warn when the
    /// workload never crosses the parallel threshold (see
    /// [`ExploreStats::underparallelized`]).
    pub parallel: bool,
}

/// Aggregate metrics of one exploration run.
#[derive(Clone, Debug, Default)]
pub struct ExploreStats {
    /// Configurations discovered (graph nodes).
    pub configs: usize,
    /// Configurations expanded (successors computed).
    pub expanded: usize,
    /// Transitions discovered (graph edges).
    pub transitions: usize,
    /// Successor configurations that deduplicated onto an existing node.
    pub dedup_hits: usize,
    /// Distinct interned object states.
    pub distinct_object_states: usize,
    /// Distinct interned process statuses.
    pub distinct_proc_statuses: usize,
    /// Widest BFS frontier encountered.
    pub peak_frontier: usize,
    /// Worker threads used for frontier expansion.
    pub threads: usize,
    /// Number of BFS levels that actually ran on the parallel path. The
    /// engine's adaptive gate keeps narrow or cheap levels sequential, so
    /// this can be zero even when `threads > 1`.
    pub parallel_levels: usize,
    /// `true` if the exploration deduplicated on canonical orbit
    /// representatives (symmetry reduction) rather than raw configurations.
    pub reduced: bool,
    /// Total wall-clock time of the exploration.
    pub elapsed: Duration,
    /// Per-level breakdown, in BFS order.
    pub levels: Vec<LevelStats>,
}

impl ExploreStats {
    /// Expanded configurations per second of wall-clock time.
    #[must_use]
    pub fn configs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.expanded as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of discovered transitions whose target configuration was
    /// already known (`0.0..=1.0`).
    #[must_use]
    pub fn dedup_rate(&self) -> f64 {
        if self.transitions > 0 {
            self.dedup_hits as f64 / self.transitions as f64
        } else {
            0.0
        }
    }

    /// Number of BFS levels (graph depth plus one, when complete).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// `true` if more than one worker thread was requested but no level ever
    /// crossed the parallel threshold — the whole run executed sequentially.
    /// Callers asking for `threads(n)` on tiny workloads should surface this
    /// instead of implying the run parallelized.
    #[must_use]
    pub fn underparallelized(&self) -> bool {
        self.threads > 1 && self.parallel_levels == 0 && self.expanded > 0
    }

    /// A one-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let reduced = if self.reduced {
            ", symmetry-reduced"
        } else {
            ""
        };
        let warn = if self.underparallelized() {
            " [sequential: below parallel threshold]"
        } else {
            ""
        };
        format!(
            "{} configs, {} transitions, {:.1}% dedup, depth {}, peak frontier {}, {} threads ({} parallel levels){}{}, {:.3}s ({:.0} configs/s)",
            self.configs,
            self.transitions,
            100.0 * self.dedup_rate(),
            self.depth(),
            self.peak_frontier,
            self.threads,
            self.parallel_levels,
            reduced,
            warn,
            self.elapsed.as_secs_f64(),
            self.configs_per_sec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty_runs() {
        let stats = ExploreStats::default();
        assert_eq!(stats.configs_per_sec(), 0.0);
        assert_eq!(stats.dedup_rate(), 0.0);
        assert_eq!(stats.depth(), 0);
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let stats = ExploreStats {
            configs: 42,
            expanded: 40,
            transitions: 100,
            dedup_hits: 59,
            peak_frontier: 7,
            threads: 4,
            elapsed: Duration::from_millis(500),
            levels: vec![LevelStats::default(); 3],
            ..ExploreStats::default()
        };
        let s = stats.summary();
        assert!(s.contains("42 configs"));
        assert!(s.contains("100 transitions"));
        assert!(s.contains("59.0% dedup"));
        assert!(s.contains("depth 3"));
        assert!(s.contains("4 threads"));
        assert!(s.contains("80 configs/s"));
    }

    #[test]
    fn underparallelized_flags_silent_sequential_runs() {
        let mut stats = ExploreStats {
            threads: 4,
            expanded: 100,
            parallel_levels: 0,
            ..ExploreStats::default()
        };
        assert!(stats.underparallelized());
        assert!(stats.summary().contains("below parallel threshold"));

        stats.parallel_levels = 2;
        assert!(!stats.underparallelized());
        assert!(!stats.summary().contains("below parallel threshold"));

        // A single-threaded run is sequential by request, not silently.
        stats.threads = 1;
        stats.parallel_levels = 0;
        assert!(!stats.underparallelized());
    }

    #[test]
    fn summary_mentions_reduction() {
        let stats = ExploreStats {
            reduced: true,
            ..ExploreStats::default()
        };
        assert!(stats.summary().contains("symmetry-reduced"));
    }
}
