//! Exploration metrics: where the model checker's time and memory go.
//!
//! [`ExploreStats`] is filled in by every exploration and carried on the
//! resulting [`ExplorationGraph`](crate::ExplorationGraph); the experiment
//! binaries print it so state-space growth and engine throughput are
//! visible in the recorded experiment outputs. [`ExploreStats::to_json`]
//! is the `metrics.explore` section of the schema-v2 report artifacts.
//!
//! Timings are wall-clock and therefore *not* part of graph identity: two
//! explorations of the same protocol produce identical graphs with
//! different stats.

use lbsa_support::json::Json;
use lbsa_support::obs::HistogramNs;
use std::time::Duration;

/// Per-BFS-level measurements.
#[derive(Clone, Copy, Debug, Default)]
pub struct LevelStats {
    /// BFS level index (0 = the initial configuration's level).
    pub level: usize,
    /// Number of configurations expanded in this level.
    pub width: usize,
    /// Transitions discovered while expanding this level.
    pub transitions: usize,
    /// Wall-clock time spent on this level (expansion + merge).
    pub elapsed: Duration,
    /// Wall-clock time of this level's expansion phase (successor
    /// computation, canonicalization, interning, dedup probing). On the
    /// fused sequential path expansion and merge are interleaved, so the
    /// whole level is accounted here and [`LevelStats::merge`] is zero.
    pub expand: Duration,
    /// Wall-clock time of this level's merge phase (node-index assignment
    /// and edge stitching). Nonzero only on the two-phase parallel path.
    pub merge: Duration,
    /// `true` if this level ran on the parallel expansion path. A progress
    /// callback watching a multi-threaded run can use this to warn when the
    /// workload never crosses the parallel threshold (see
    /// [`ExploreStats::underparallelized`]).
    pub parallel: bool,
}

/// Aggregate per-phase wall-clock breakdown of an exploration.
///
/// `expand` and `merge` partition the measured per-level work (their sum is
/// ≤ [`ExploreStats::elapsed`]; the remainder is frontier bookkeeping
/// between levels). `canonicalize` is a *subset* of `expand`, measured
/// per call and therefore only populated when a tracer is attached — the
/// per-successor clock reads would otherwise violate the overhead policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Total expansion-phase time across levels.
    pub expand: Duration,
    /// Total merge-phase time across levels (parallel levels only).
    pub merge: Duration,
    /// Time inside orbit canonicalization (⊆ `expand`; zero unless the run
    /// was traced, see [`crate::Exploration::trace`]).
    pub canonicalize: Duration,
}

impl PhaseTimes {
    /// The per-level time actually attributed to a phase
    /// (`expand + merge`); always ≤ the run's total `elapsed`.
    #[must_use]
    pub fn measured(&self) -> Duration {
        self.expand + self.merge
    }

    /// Which phase dominates: `"expand-bound"` when expansion takes more
    /// than twice the merge time, `"merge-bound"` for the converse, and
    /// `"balanced"` in between.
    #[must_use]
    pub fn dominant(&self) -> &'static str {
        let (e, m) = (self.expand.as_nanos(), self.merge.as_nanos());
        if e > 2 * m {
            "expand-bound"
        } else if m > 2 * e {
            "merge-bound"
        } else {
            "balanced"
        }
    }
}

/// Per-worker measurements of one work-stealing run — the breakdown that
/// makes load imbalance *diagnosable* rather than just countable from the
/// aggregate steal counters.
///
/// The counting fields (`expanded`, `transitions`, steal outcomes, deque
/// depth, idle spins) are always populated. The wall-clock fields follow
/// the overhead policy: `idle` is measured unconditionally (the clock is
/// only read while the worker has no work to do), while `busy` requires a
/// per-task clock read and is therefore zero unless the run was traced.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Worker index, `0..threads`.
    pub worker: usize,
    /// Configurations this worker expanded.
    pub expanded: usize,
    /// Transitions this worker discovered.
    pub transitions: usize,
    /// Successful steal operations this worker performed.
    pub steals: u64,
    /// Full steal sweeps by this worker that came back empty.
    pub steal_fails: u64,
    /// Tasks this worker popped from its own deque.
    pub local_hits: u64,
    /// Deepest its own deque ever got (sampled at push time).
    pub max_deque_depth: usize,
    /// CPU-burning backoff rounds (spin or yield) while looking for work.
    /// Bounded per idle episode by the engine's backoff thresholds; parked
    /// waits count in `park_count` instead.
    pub idle_spins: u64,
    /// Times this worker parked after exhausting its spin/yield budget.
    pub park_count: u64,
    /// Times this worker's lock-free deque buffer doubled.
    pub deque_grows: u64,
    /// Wall-clock time spent idle burning CPU (failed steal sweeps,
    /// spinning, yielding). Excludes parked time, so it stays proportional
    /// to CPU actually consumed while starved.
    pub idle: Duration,
    /// Wall-clock time spent parked (the thread was asleep, not burning a
    /// core).
    pub parked: Duration,
    /// Wall-clock time spent expanding tasks. Zero unless traced — this
    /// needs a clock read per task.
    pub busy: Duration,
}

impl WorkerStats {
    /// Serializes one worker's row of the `metrics.explore.workers` array.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("worker", self.worker)
            .set("expanded", self.expanded)
            .set("transitions", self.transitions)
            .set("steals", self.steals)
            .set("steal_fails", self.steal_fails)
            .set("local_hits", self.local_hits)
            .set("max_deque_depth", self.max_deque_depth)
            .set("idle_spins", self.idle_spins)
            .set("park_count", self.park_count)
            .set("deque_grows", self.deque_grows)
            .set("idle_us", duration_us(self.idle))
            .set("parked_us", duration_us(self.parked))
            .set("busy_us", duration_us(self.busy))
    }
}

/// Per-worker telemetry for one sampling sweep (see the `sampling`
/// module): the sampler's analogue of [`WorkerStats`]. Each worker owns a
/// stride of the seed range, so the per-worker run counts depend on the
/// thread count even though the merged [`SampleReport`](crate::sampling::SampleReport)
/// does not — which is why these live in trace events (`sample.worker`),
/// never in the report itself.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SampleWorkerStats {
    /// Worker index, `0..threads`.
    pub worker: usize,
    /// Seeded runs this worker executed.
    pub runs: u64,
    /// Runs that reached quiescence.
    pub quiescent: u64,
    /// Runs stopped by the per-run step budget.
    pub budget_hit: u64,
    /// Total atomic steps across this worker's runs.
    pub total_steps: usize,
    /// Wall-clock time from the worker's first run to its last.
    pub busy: Duration,
}

impl SampleWorkerStats {
    /// Stats for worker `worker` with nothing recorded yet.
    #[must_use]
    pub fn new(worker: usize) -> SampleWorkerStats {
        SampleWorkerStats {
            worker,
            ..SampleWorkerStats::default()
        }
    }

    /// Serializes one worker's `sample.worker` trace payload.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("worker", self.worker)
            .set("runs", self.runs)
            .set("quiescent", self.quiescent)
            .set("budget_hit", self.budget_hit)
            .set("total_steps", self.total_steps)
            .set("busy_us", duration_us(self.busy))
    }
}

/// The run's latency histograms (see
/// [`HistogramNs`](lbsa_support::obs::HistogramNs)): log2-bucketed
/// nanosecond distributions that survive aggregation, where the
/// [`PhaseTimes`] totals only say how much, not how it was spread.
///
/// `level_expand`/`level_merge` record one sample per BFS level and are
/// always on (per-level clock reads are already part of [`LevelStats`]).
/// `steal` records the latency of each successful steal operation, and
/// `canonicalize`/`task_expand` record per-call and per-task costs — all
/// three need extra clock reads on hot paths and are therefore only
/// populated when the run is traced.
#[derive(Clone, Debug, Default)]
pub struct LatencyHistograms {
    /// Per-level expansion-phase times (level-sync frontier, always on).
    pub level_expand: HistogramNs,
    /// Per-level merge-phase times (parallel levels only, always on).
    pub level_merge: HistogramNs,
    /// Latency of each successful steal operation (traced runs only).
    pub steal: HistogramNs,
    /// Size of each successful steal batch — raw task counts, not
    /// nanoseconds (traced, work-stealing runs only).
    pub steal_batch: HistogramNs,
    /// Per-call orbit-canonicalization cost (traced, reduced runs only).
    pub canonicalize: HistogramNs,
    /// Per-task expansion cost in the work-stealing frontier (traced runs
    /// only).
    pub task_expand: HistogramNs,
}

impl LatencyHistograms {
    /// Serializes every non-empty histogram under its name; `None` when
    /// nothing was recorded (the report omits the `hist` object entirely).
    #[must_use]
    pub fn to_json(&self) -> Option<Json> {
        let named = [
            ("level_expand", &self.level_expand),
            ("level_merge", &self.level_merge),
            ("steal", &self.steal),
            ("steal_batch", &self.steal_batch),
            ("canonicalize", &self.canonicalize),
            ("task_expand", &self.task_expand),
        ];
        let mut doc = Json::object();
        let mut any = false;
        for (name, hist) in named {
            if !hist.is_empty() {
                doc = doc.set(name, hist.to_json());
                any = true;
            }
        }
        any.then_some(doc)
    }
}

/// Aggregate metrics of one exploration run.
#[derive(Clone, Debug, Default)]
pub struct ExploreStats {
    /// Configurations discovered (graph nodes).
    pub configs: usize,
    /// Configurations expanded (successors computed).
    pub expanded: usize,
    /// Transitions discovered (graph edges).
    pub transitions: usize,
    /// Successor configurations that deduplicated onto an existing node.
    pub dedup_hits: usize,
    /// Distinct interned object states.
    pub distinct_object_states: usize,
    /// Distinct interned process statuses.
    pub distinct_proc_statuses: usize,
    /// Widest BFS frontier encountered.
    pub peak_frontier: usize,
    /// Worker threads used for frontier expansion.
    pub threads: usize,
    /// Number of BFS levels that actually ran on the parallel path. The
    /// engine's adaptive gate keeps narrow or cheap levels sequential, so
    /// this can be zero even when `threads > 1`.
    pub parallel_levels: usize,
    /// `true` if the exploration deduplicated on canonical orbit
    /// representatives (symmetry reduction) rather than raw configurations.
    pub reduced: bool,
    /// Total wall-clock time of the exploration.
    pub elapsed: Duration,
    /// Per-phase wall-clock breakdown (see [`PhaseTimes`]).
    pub phases: PhaseTimes,
    /// Transition-memo lookups that hit a previously computed successor
    /// set.
    pub memo_hits: u64,
    /// Transition-memo lookups that missed and computed successors afresh.
    pub memo_misses: u64,
    /// State/status interner lookups resolved on the read path (value
    /// already interned).
    pub intern_hits: u64,
    /// State/status interner lookups that inserted a new distinct value.
    pub intern_misses: u64,
    /// Orbit-canonicalization invocations (zero unless symmetry-reduced).
    pub canon_calls: u64,
    /// Canonicalizations resolved cheaply: the successor's canonical form
    /// came out of the engine's canon memo, or the incremental fast path
    /// confirmed the delta-patched successor was already orbit-minimal.
    /// Zero unless symmetry-reduced.
    pub canon_patches: u64,
    /// Canonicalizations that fell back to the full `|G|`-fold orbit
    /// enumeration. Zero unless symmetry-reduced.
    pub canon_full: u64,
    /// `true` if the run used the work-stealing frontier
    /// (`Frontier::WorkStealing`) instead of level-synchronous BFS.
    pub work_stealing: bool,
    /// Successful steal operations across workers (work-stealing only).
    pub steals: u64,
    /// Steal sweeps that visited every other worker's deque and found
    /// nothing (work-stealing only).
    pub steal_fails: u64,
    /// Tasks a worker popped from its own deque rather than stole
    /// (work-stealing only).
    pub local_hits: u64,
    /// Times a starved worker parked after exhausting its spin/yield
    /// backoff budget (work-stealing only).
    pub park_count: u64,
    /// Lock-free deque buffer doublings across workers (work-stealing
    /// only).
    pub deque_grows: u64,
    /// Keys the batched index round resolved to already-interned nodes —
    /// i.e. races another worker won between a task's read-only pre-probe
    /// and its insert round (work-stealing only).
    pub index_batch_hits: u64,
    /// Estimated heap footprint of the state/status interners at the end
    /// of the run (see `Interner::approx_bytes` — a structural estimate,
    /// not an allocator measurement).
    pub interner_bytes: usize,
    /// Estimated heap footprint of the dedup index at the end of the run.
    pub index_bytes: usize,
    /// Per-level breakdown, in BFS order. Empty in work-stealing mode,
    /// which has no levels.
    pub levels: Vec<LevelStats>,
    /// Per-worker breakdown, indexed by worker id. Populated by the
    /// work-stealing frontier; empty for level-sync runs.
    pub workers: Vec<WorkerStats>,
    /// Latency distributions (see [`LatencyHistograms`]).
    pub hist: LatencyHistograms,
}

impl ExploreStats {
    /// Expanded configurations per second of wall-clock time.
    #[must_use]
    pub fn configs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.expanded as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of discovered transitions whose target configuration was
    /// already known (`0.0..=1.0`).
    #[must_use]
    pub fn dedup_rate(&self) -> f64 {
        if self.transitions > 0 {
            self.dedup_hits as f64 / self.transitions as f64
        } else {
            0.0
        }
    }

    /// Fraction of transition-memo lookups that hit (`0.0..=1.0`).
    #[must_use]
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total > 0 {
            self.memo_hits as f64 / total as f64
        } else {
            0.0
        }
    }

    /// Number of BFS levels (graph depth plus one, when complete).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// `true` if more than one worker thread was requested but no level ever
    /// crossed the parallel threshold — the whole run executed sequentially.
    /// Callers asking for `threads(n)` on tiny workloads should surface this
    /// instead of implying the run parallelized.
    #[must_use]
    pub fn underparallelized(&self) -> bool {
        !self.work_stealing && self.threads > 1 && self.parallel_levels == 0 && self.expanded > 0
    }

    /// Load-imbalance factor across workers: the busiest worker's expanded
    /// count over the per-worker mean. `1.0` is perfectly balanced; `1.0`
    /// is also returned when there is no per-worker breakdown (level-sync
    /// runs) or nothing was expanded.
    #[must_use]
    pub fn worker_imbalance(&self) -> f64 {
        let total: usize = self.workers.iter().map(|w| w.expanded).sum();
        if self.workers.is_empty() || total == 0 {
            return 1.0;
        }
        let max = self.workers.iter().map(|w| w.expanded).max().unwrap_or(0);
        let mean = total as f64 / self.workers.len() as f64;
        max as f64 / mean
    }

    /// A one-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let reduced = if self.reduced {
            ", symmetry-reduced"
        } else {
            ""
        };
        let frontier = if self.work_stealing {
            ", work-stealing"
        } else {
            ""
        };
        let warn = if self.underparallelized() {
            " [sequential: below parallel threshold]"
        } else {
            ""
        };
        format!(
            "{} configs, {} transitions, {:.1}% dedup, depth {}, peak frontier {}, {} threads ({} parallel levels){}{}{}, {:.3}s ({:.0} configs/s, {}: {:.3}s expand / {:.3}s merge)",
            self.configs,
            self.transitions,
            100.0 * self.dedup_rate(),
            self.depth(),
            self.peak_frontier,
            self.threads,
            self.parallel_levels,
            reduced,
            frontier,
            warn,
            self.elapsed.as_secs_f64(),
            self.configs_per_sec(),
            self.phases.dominant(),
            self.phases.expand.as_secs_f64(),
            self.phases.merge.as_secs_f64(),
        )
    }

    /// Serializes the stats as the `metrics.explore` object of a schema-v2
    /// report: headline aggregates, the phase breakdown in microseconds,
    /// and the engine counters. Per-level detail stays in the JSONL trace,
    /// not the report.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object()
            .set("configs", self.configs)
            .set("expanded", self.expanded)
            .set("transitions", self.transitions)
            .set("dedup_hits", self.dedup_hits)
            .set("distinct_object_states", self.distinct_object_states)
            .set("distinct_proc_statuses", self.distinct_proc_statuses)
            .set("peak_frontier", self.peak_frontier)
            .set("threads", self.threads)
            .set("parallel_levels", self.parallel_levels)
            .set("levels", self.levels.len())
            .set("reduced", self.reduced)
            .set("elapsed_us", duration_us(self.elapsed))
            .set("expand_us", duration_us(self.phases.expand))
            .set("merge_us", duration_us(self.phases.merge))
            .set("canonicalize_us", duration_us(self.phases.canonicalize))
            .set("dominant_phase", self.phases.dominant())
            .set("memo_hits", self.memo_hits)
            .set("memo_misses", self.memo_misses)
            .set("intern_hits", self.intern_hits)
            .set("intern_misses", self.intern_misses)
            .set("canon_calls", self.canon_calls)
            .set("canon_patches", self.canon_patches)
            .set("canon_full", self.canon_full)
            .set(
                "frontier",
                if self.work_stealing {
                    "work-stealing"
                } else {
                    "level-sync"
                },
            )
            .set("steals", self.steals)
            .set("steal_fails", self.steal_fails)
            .set("local_hits", self.local_hits)
            .set("park_count", self.park_count)
            .set("deque_grows", self.deque_grows)
            .set("index_batch_hits", self.index_batch_hits)
            .set("interner_bytes", self.interner_bytes)
            .set("index_bytes", self.index_bytes);
        if !self.workers.is_empty() {
            doc = doc.set("worker_imbalance", self.worker_imbalance()).set(
                "workers",
                Json::Arr(self.workers.iter().map(WorkerStats::to_json).collect()),
            );
        }
        if let Some(hist) = self.hist.to_json() {
            doc = doc.set("hist", hist);
        }
        doc
    }
}

/// A duration in whole microseconds, saturating at `u64::MAX`.
pub(crate) fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// A duration in whole nanoseconds, saturating at `u64::MAX`.
pub(crate) fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty_runs() {
        let stats = ExploreStats::default();
        assert_eq!(stats.configs_per_sec(), 0.0);
        assert_eq!(stats.dedup_rate(), 0.0);
        assert_eq!(stats.memo_hit_rate(), 0.0);
        assert_eq!(stats.depth(), 0);
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let stats = ExploreStats {
            configs: 42,
            expanded: 40,
            transitions: 100,
            dedup_hits: 59,
            peak_frontier: 7,
            threads: 4,
            elapsed: Duration::from_millis(500),
            levels: vec![LevelStats::default(); 3],
            ..ExploreStats::default()
        };
        let s = stats.summary();
        assert!(s.contains("42 configs"));
        assert!(s.contains("100 transitions"));
        assert!(s.contains("59.0% dedup"));
        assert!(s.contains("depth 3"));
        assert!(s.contains("4 threads"));
        assert!(s.contains("80 configs/s"));
    }

    #[test]
    fn underparallelized_flags_silent_sequential_runs() {
        let mut stats = ExploreStats {
            threads: 4,
            expanded: 100,
            parallel_levels: 0,
            ..ExploreStats::default()
        };
        assert!(stats.underparallelized());
        assert!(stats.summary().contains("below parallel threshold"));

        stats.parallel_levels = 2;
        assert!(!stats.underparallelized());
        assert!(!stats.summary().contains("below parallel threshold"));

        // A single-threaded run is sequential by request, not silently.
        stats.threads = 1;
        stats.parallel_levels = 0;
        assert!(!stats.underparallelized());

        // Work-stealing runs have no levels to parallelize: the flag does
        // not apply to them.
        stats.threads = 4;
        stats.work_stealing = true;
        assert!(!stats.underparallelized());
    }

    #[test]
    fn work_stealing_counters_flow_into_json_and_summary() {
        let stats = ExploreStats {
            work_stealing: true,
            steals: 12,
            steal_fails: 3,
            local_hits: 250,
            park_count: 7,
            deque_grows: 2,
            index_batch_hits: 5,
            canon_patches: 40,
            canon_full: 2,
            ..ExploreStats::default()
        };
        assert!(stats.summary().contains("work-stealing"));
        let doc = stats.to_json();
        assert_eq!(
            doc.get("frontier").and_then(Json::as_str),
            Some("work-stealing")
        );
        assert_eq!(doc.get("steals"), Some(&Json::Int(12)));
        assert_eq!(doc.get("steal_fails"), Some(&Json::Int(3)));
        assert_eq!(doc.get("local_hits"), Some(&Json::Int(250)));
        assert_eq!(doc.get("park_count"), Some(&Json::Int(7)));
        assert_eq!(doc.get("deque_grows"), Some(&Json::Int(2)));
        assert_eq!(doc.get("index_batch_hits"), Some(&Json::Int(5)));
        assert_eq!(doc.get("canon_patches"), Some(&Json::Int(40)));
        assert_eq!(doc.get("canon_full"), Some(&Json::Int(2)));
        let level_sync = ExploreStats::default().to_json();
        assert_eq!(
            level_sync.get("frontier").and_then(Json::as_str),
            Some("level-sync")
        );
    }

    #[test]
    fn worker_stats_flow_into_json_with_imbalance() {
        let stats = ExploreStats {
            work_stealing: true,
            workers: vec![
                WorkerStats {
                    worker: 0,
                    expanded: 30,
                    transitions: 80,
                    steals: 2,
                    local_hits: 28,
                    max_deque_depth: 9,
                    idle_spins: 4,
                    idle: Duration::from_micros(120),
                    ..WorkerStats::default()
                },
                WorkerStats {
                    worker: 1,
                    expanded: 10,
                    steal_fails: 1,
                    ..WorkerStats::default()
                },
            ],
            ..ExploreStats::default()
        };
        // max 30 over mean 20.
        assert!((stats.worker_imbalance() - 1.5).abs() < 1e-9);
        let doc = stats.to_json();
        let workers = doc
            .get("workers")
            .and_then(Json::as_arr)
            .expect("workers array");
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[0].get("expanded"), Some(&Json::Int(30)));
        assert_eq!(workers[0].get("max_deque_depth"), Some(&Json::Int(9)));
        assert_eq!(workers[0].get("idle_us"), Some(&Json::Int(120)));
        assert_eq!(workers[1].get("steal_fails"), Some(&Json::Int(1)));
        assert!(doc.get("worker_imbalance").is_some());
        // Level-sync runs have no per-worker breakdown and omit the keys.
        let plain = ExploreStats::default();
        assert_eq!(plain.worker_imbalance(), 1.0);
        assert!(plain.to_json().get("workers").is_none());
    }

    #[test]
    fn histograms_serialize_only_when_populated() {
        let stats = ExploreStats::default();
        assert!(
            stats.to_json().get("hist").is_none(),
            "empty histograms stay out of the report"
        );
        let stats = ExploreStats::default();
        stats.hist.level_expand.record(Duration::from_micros(100));
        stats.hist.steal.record(Duration::from_nanos(900));
        let doc = stats.to_json();
        let hist = doc.get("hist").expect("hist object");
        assert!(hist.get("level_expand").is_some());
        assert!(hist.get("steal").is_some());
        assert!(
            hist.get("level_merge").is_none(),
            "untouched histograms are omitted"
        );
        assert_eq!(
            hist.get("steal")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_i64),
            Some(1)
        );
    }

    #[test]
    fn summary_mentions_reduction() {
        let stats = ExploreStats {
            reduced: true,
            ..ExploreStats::default()
        };
        assert!(stats.summary().contains("symmetry-reduced"));
    }

    #[test]
    fn dominant_phase_classifies_by_ratio() {
        let expand_bound = PhaseTimes {
            expand: Duration::from_millis(10),
            merge: Duration::from_millis(1),
            canonicalize: Duration::ZERO,
        };
        assert_eq!(expand_bound.dominant(), "expand-bound");
        let merge_bound = PhaseTimes {
            expand: Duration::from_millis(1),
            merge: Duration::from_millis(10),
            canonicalize: Duration::ZERO,
        };
        assert_eq!(merge_bound.dominant(), "merge-bound");
        let balanced = PhaseTimes {
            expand: Duration::from_millis(5),
            merge: Duration::from_millis(4),
            canonicalize: Duration::ZERO,
        };
        assert_eq!(balanced.dominant(), "balanced");
        assert_eq!(balanced.measured(), Duration::from_millis(9));
        // An empty breakdown (0 vs 0) is balanced, not a division by zero.
        assert_eq!(PhaseTimes::default().dominant(), "balanced");
    }

    #[test]
    fn summary_names_the_dominant_phase() {
        let stats = ExploreStats {
            phases: PhaseTimes {
                expand: Duration::from_millis(9),
                merge: Duration::from_millis(1),
                canonicalize: Duration::ZERO,
            },
            ..ExploreStats::default()
        };
        assert!(stats.summary().contains("expand-bound"));
    }

    #[test]
    fn to_json_carries_phase_and_counter_fields() {
        let stats = ExploreStats {
            configs: 10,
            transitions: 20,
            memo_hits: 7,
            memo_misses: 3,
            intern_hits: 100,
            intern_misses: 4,
            elapsed: Duration::from_micros(1500),
            phases: PhaseTimes {
                expand: Duration::from_micros(1000),
                merge: Duration::from_micros(200),
                canonicalize: Duration::from_micros(50),
            },
            ..ExploreStats::default()
        };
        let doc = stats.to_json();
        assert_eq!(doc.get("configs"), Some(&Json::Int(10)));
        assert_eq!(doc.get("elapsed_us"), Some(&Json::Int(1500)));
        assert_eq!(doc.get("expand_us"), Some(&Json::Int(1000)));
        assert_eq!(doc.get("merge_us"), Some(&Json::Int(200)));
        assert_eq!(doc.get("canonicalize_us"), Some(&Json::Int(50)));
        assert_eq!(
            doc.get("dominant_phase").and_then(Json::as_str),
            Some("expand-bound")
        );
        assert_eq!(doc.get("memo_hits"), Some(&Json::Int(7)));
        assert_eq!(doc.get("intern_misses"), Some(&Json::Int(4)));
        assert_eq!(stats.memo_hit_rate(), 0.7);
    }
}
