//! # lbsa-explorer — executable proof machinery
//!
//! The theorems of *Life Beyond Set Agreement* quantify over **all**
//! executions ("in every execution, agreement holds") and over schedules
//! chosen by an adversary (the bivalency arguments of Theorems 4.2 and 5.2).
//! This crate makes both quantifiers executable:
//!
//! * [`explore`] — exhaustive breadth-first exploration of *every*
//!   interleaving and *every* nondeterministic object outcome of a protocol,
//!   with configuration deduplication. For the finite-state instances used in
//!   the experiments, the resulting [`explore::ExplorationGraph`] covers the
//!   paper's "for every execution" exactly.
//! * [`valency`] — decision-closure computation over an exploration graph:
//!   classify configurations as 0-valent, 1-valent, or bivalent, and locate
//!   *critical* configurations (bivalent, all successors univalent) — the
//!   combinatorial heart of the FLP-style proofs.
//! * [`adversary`] — the executable counterpart of the impossibility proofs:
//!   find cycles of undecided configurations. A reachable cycle in which a
//!   process keeps stepping without deciding is a *machine-checkable
//!   certificate* that the protocol violates wait-free termination.
//! * [`checker`] — whole-execution-space verification of the problems in the
//!   paper: consensus, k-set agreement, and the n-DAC problem with its four
//!   properties (Agreement, Validity, Termination (a)/(b), Nontriviality).
//! * [`linearizability`] — a Wing–Gold linearizability checker for the
//!   concurrent front-end histories produced by
//!   [`lbsa_runtime::derived::record_frontend_history`], used to validate
//!   every derived implementation against its target specification.
//! * [`sampling`] — seeded randomized checking for instances beyond the
//!   exhaustive frontier: a parallel, seed-sharded sweep whose verdicts are
//!   thread-count independent, with safety checked on every sampled run and
//!   violations returned with their reproducing seed. First-class via
//!   [`explore::Strategy::Sample`] on the [`Exploration`] builder.
//! * [`verdict`] — the structured reporting layer over the checkers: every
//!   property check yields a typed [`verdict::Verdict`] whose counterexample
//!   [`verdict::Witness`] is a replayable, delta-minimized schedule that can
//!   be deterministically re-executed to confirm the violation.
//! * [`error`] — the unified [`error::CheckError`] hierarchy that verdicts
//!   carry as a structured cause.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod checker;
pub mod config;
pub mod error;
pub mod explore;
pub mod intern;
pub mod linearizability;
mod live;
pub mod sampling;
pub mod stats;
pub mod symmetry;
pub mod valency;
pub mod verdict;

pub use config::Configuration;
pub use error::CheckError;
pub use explore::{
    Exploration, ExplorationGraph, ExploreOptions, Explorer, Frontier, Limits, StepRecord, Strategy,
};
pub use lbsa_support::obs::{
    Counter, Gauge, JsonlSink, MemorySink, Registry, StderrSink, TraceSink, Tracer,
};
pub use sampling::{
    sample_confidence, SampleConfig, SampleReport, SampleViolation, OUTCOME_SEED_XOR,
};
pub use stats::{
    ExploreStats, LatencyHistograms, LevelStats, PhaseTimes, SampleWorkerStats, WorkerStats,
};
pub use symmetry::{Concretizer, ConfigSymmetry};
pub use valency::{Valence, ValencyAnalysis};
pub use verdict::{Outcome, Verdict, Witness};
