//! A Wing–Gold linearizability checker.
//!
//! The paper's implementation relation ("`A` is implemented from instances
//! of `B` and registers") is defined through linearizability [Herlihy &
//! Wing 1990]: a concurrent history of the implemented front-end object must
//! have a sequential witness that (1) respects real-time order — if one
//! operation responds before another is invoked, it comes first — and
//! (2) conforms to the object's sequential specification, including the
//! nondeterministic specs (2-SA, (n,k)-SA), where conformance means *some*
//! admissible outcome produced each recorded response.
//!
//! [`check_linearizable`] takes the concurrent front-end history produced by
//! [`lbsa_runtime::derived::record_frontend_history`] and searches for such
//! a witness per object (objects are independent, so the full history is
//! linearizable iff each per-object projection is). The search is the
//! classic Wing–Gold backtracking with memoization on (completed-set,
//! object-state) pairs.

use lbsa_core::spec::ObjectSpec;
use lbsa_core::{AnyObject, AnyState, ObjId, SpecError};
use lbsa_runtime::derived::CompletedOp;
use std::collections::{BTreeMap, HashSet};
use std::error::Error;
use std::fmt;

/// A successful linearization: for each object, the order (indices into the
/// original history slice) in which its operations take effect.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Linearization {
    /// Per-object linearization orders.
    pub orders: BTreeMap<ObjId, Vec<usize>>,
}

/// Why a history failed the linearizability check.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinearizabilityError {
    /// No sequential witness exists for this object's projection.
    NotLinearizable {
        /// The object whose projection has no witness.
        obj: ObjId,
    },
    /// An operation referenced an object with no supplied specification.
    UnknownObject {
        /// The unmatched object id.
        obj: ObjId,
    },
    /// The per-object projection exceeds the checker's capacity (128 ops).
    TooManyOps {
        /// The oversized object.
        obj: ObjId,
        /// Number of operations in its projection.
        count: usize,
    },
    /// A specification rejected an operation (malformed history).
    Spec(SpecError),
}

impl fmt::Display for LinearizabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinearizabilityError::NotLinearizable { obj } => {
                write!(f, "history of {obj} is not linearizable")
            }
            LinearizabilityError::UnknownObject { obj } => {
                write!(f, "history references {obj}, which has no specification")
            }
            LinearizabilityError::TooManyOps { obj, count } => {
                write!(f, "history of {obj} has {count} operations; the checker supports at most 128 per object")
            }
            LinearizabilityError::Spec(e) => write!(f, "specification error: {e}"),
        }
    }
}

impl Error for LinearizabilityError {}

impl From<SpecError> for LinearizabilityError {
    fn from(e: SpecError) -> Self {
        LinearizabilityError::Spec(e)
    }
}

/// Checks that `history` is linearizable with respect to `specs`
/// (`specs[i]` is the sequential specification of front-end `ObjId(i)`).
///
/// Returns a per-object witness order on success.
///
/// # Errors
///
/// Returns [`LinearizabilityError::NotLinearizable`] naming the first object
/// whose projection has no sequential witness, or a capacity/spec error.
pub fn check_linearizable(
    history: &[CompletedOp],
    specs: &[AnyObject],
) -> Result<Linearization, LinearizabilityError> {
    // Project per object.
    let mut per_object: BTreeMap<ObjId, Vec<usize>> = BTreeMap::new();
    for (idx, op) in history.iter().enumerate() {
        if op.obj.index() >= specs.len() {
            return Err(LinearizabilityError::UnknownObject { obj: op.obj });
        }
        per_object.entry(op.obj).or_default().push(idx);
    }

    let mut result = Linearization::default();
    for (obj, indices) in per_object {
        if indices.len() > 128 {
            return Err(LinearizabilityError::TooManyOps {
                obj,
                count: indices.len(),
            });
        }
        let spec = &specs[obj.index()];
        let order = linearize_one(history, &indices, spec)?
            .ok_or(LinearizabilityError::NotLinearizable { obj })?;
        result.orders.insert(obj, order);
    }
    Ok(result)
}

/// Wing–Gold search for a single object's projection. Returns the witness
/// order (as indices into `history`) or `None`.
fn linearize_one(
    history: &[CompletedOp],
    indices: &[usize],
    spec: &AnyObject,
) -> Result<Option<Vec<usize>>, SpecError> {
    let n = indices.len();
    if n == 0 {
        return Ok(Some(vec![]));
    }
    let full: u128 = if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    let mut failed: HashSet<(u128, AnyState)> = HashSet::new();
    let mut order: Vec<usize> = Vec::with_capacity(n);

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        history: &[CompletedOp],
        indices: &[usize],
        spec: &AnyObject,
        state: &AnyState,
        done: u128,
        full: u128,
        failed: &mut HashSet<(u128, AnyState)>,
        order: &mut Vec<usize>,
    ) -> Result<bool, SpecError> {
        if done == full {
            return Ok(true);
        }
        if failed.contains(&(done, state.clone())) {
            return Ok(false);
        }
        for i in 0..indices.len() {
            if done & (1 << i) != 0 {
                continue;
            }
            let op_i = &history[indices[i]];
            // Real-time order: i may be next only if no other pending op
            // responded strictly before i was invoked.
            let blocked = (0..indices.len()).any(|j| {
                j != i && done & (1 << j) == 0 && history[indices[j]].responded_at < op_i.invoked_at
            });
            if blocked {
                continue;
            }
            for (resp, next_state) in spec.outcomes(state, &op_i.op)?.into_vec() {
                if resp != op_i.response {
                    continue;
                }
                order.push(indices[i]);
                if dfs(
                    history,
                    indices,
                    spec,
                    &next_state,
                    done | (1 << i),
                    full,
                    failed,
                    order,
                )? {
                    return Ok(true);
                }
                order.pop();
            }
        }
        failed.insert((done, state.clone()));
        Ok(false)
    }

    let initial = spec.initial_state();
    if dfs(
        history,
        indices,
        spec,
        &initial,
        0,
        full,
        &mut failed,
        &mut order,
    )? {
        Ok(Some(order))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::value::{int, Value};
    use lbsa_core::{Op, Pid};

    fn op(
        pid: usize,
        obj: usize,
        op: Op,
        response: Value,
        invoked_at: usize,
        responded_at: usize,
    ) -> CompletedOp {
        CompletedOp {
            pid: Pid(pid),
            obj: ObjId(obj),
            op,
            response,
            invoked_at,
            responded_at,
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        let lin = check_linearizable(&[], &[AnyObject::register()]).unwrap();
        assert!(lin.orders.is_empty());
    }

    #[test]
    fn sequential_register_history_is_linearizable() {
        let specs = vec![AnyObject::register()];
        let history = vec![
            op(0, 0, Op::Write(int(1)), Value::Done, 0, 0),
            op(1, 0, Op::Read, int(1), 1, 1),
            op(0, 0, Op::Write(int(2)), Value::Done, 2, 2),
            op(1, 0, Op::Read, int(2), 3, 3),
        ];
        let lin = check_linearizable(&history, &specs).unwrap();
        assert_eq!(lin.orders[&ObjId(0)], vec![0, 1, 2, 3]);
    }

    #[test]
    fn stale_read_without_overlap_is_rejected() {
        // WRITE(1) completes at step 0; a read invoked at step 5 must not
        // return nil.
        let specs = vec![AnyObject::register()];
        let history = vec![
            op(0, 0, Op::Write(int(1)), Value::Done, 0, 0),
            op(1, 0, Op::Read, Value::Nil, 5, 5),
        ];
        let err = check_linearizable(&history, &specs).unwrap_err();
        assert_eq!(err, LinearizabilityError::NotLinearizable { obj: ObjId(0) });
    }

    #[test]
    fn overlapping_read_may_return_either_value() {
        // The read overlaps the write: both orders are admissible, so both
        // nil and 1 linearize.
        let specs = vec![AnyObject::register()];
        for resp in [Value::Nil, int(1)] {
            let history = vec![
                op(0, 0, Op::Write(int(1)), Value::Done, 2, 6),
                op(1, 0, Op::Read, resp, 3, 5),
            ];
            assert!(
                check_linearizable(&history, &specs).is_ok(),
                "read returning {resp} must linearize"
            );
        }
    }

    #[test]
    fn consensus_history_requires_first_wins() {
        let specs = vec![AnyObject::consensus(2).unwrap()];
        // Non-overlapping: p0 proposes 5 first, p1 later proposes 7 and must
        // learn 5.
        let good = vec![
            op(0, 0, Op::Propose(int(5)), int(5), 0, 1),
            op(1, 0, Op::Propose(int(7)), int(5), 2, 3),
        ];
        assert!(check_linearizable(&good, &specs).is_ok());
        // p1 claiming its own value is not linearizable.
        let bad = vec![
            op(0, 0, Op::Propose(int(5)), int(5), 0, 1),
            op(1, 0, Op::Propose(int(7)), int(7), 2, 3),
        ];
        assert!(check_linearizable(&bad, &specs).is_err());
        // But if the two proposals overlap, either may have gone first, so
        // both learning 7 is fine.
        let overlapping = vec![
            op(0, 0, Op::Propose(int(5)), int(7), 0, 3),
            op(1, 0, Op::Propose(int(7)), int(7), 1, 2),
        ];
        assert!(check_linearizable(&overlapping, &specs).is_ok());
    }

    #[test]
    fn nondeterministic_spec_accepts_any_admissible_branch() {
        // 2-SA: three sequential proposes; the third may get either captured
        // value.
        let specs = vec![AnyObject::strong_sa()];
        for third in [int(1), int(2)] {
            let history = vec![
                op(0, 0, Op::Propose(int(1)), int(1), 0, 0),
                op(1, 0, Op::Propose(int(2)), int(2), 1, 1),
                op(2, 0, Op::Propose(int(3)), third, 2, 2),
            ];
            assert!(check_linearizable(&history, &specs).is_ok());
        }
        // …but never the uncaptured third value.
        let history = vec![
            op(0, 0, Op::Propose(int(1)), int(1), 0, 0),
            op(1, 0, Op::Propose(int(2)), int(2), 1, 1),
            op(2, 0, Op::Propose(int(3)), int(3), 2, 2),
        ];
        assert!(check_linearizable(&history, &specs).is_err());
    }

    #[test]
    fn objects_are_checked_independently() {
        let specs = vec![AnyObject::register(), AnyObject::consensus(2).unwrap()];
        let history = vec![
            op(0, 0, Op::Write(int(3)), Value::Done, 0, 0),
            op(0, 1, Op::Propose(int(4)), int(4), 1, 1),
            op(1, 0, Op::Read, int(3), 2, 2),
            op(1, 1, Op::Propose(int(6)), int(4), 3, 3),
        ];
        let lin = check_linearizable(&history, &specs).unwrap();
        assert_eq!(lin.orders.len(), 2);
        assert_eq!(lin.orders[&ObjId(0)], vec![0, 2]);
        assert_eq!(lin.orders[&ObjId(1)], vec![1, 3]);
    }

    #[test]
    fn unknown_object_is_an_error() {
        let history = vec![op(0, 3, Op::Read, Value::Nil, 0, 0)];
        let err = check_linearizable(&history, &[AnyObject::register()]).unwrap_err();
        assert_eq!(err, LinearizabilityError::UnknownObject { obj: ObjId(3) });
    }

    #[test]
    fn witness_respects_real_time_order() {
        // Two non-overlapping writes then a read: the witness must order the
        // writes as they happened.
        let specs = vec![AnyObject::register()];
        let history = vec![
            op(0, 0, Op::Write(int(1)), Value::Done, 0, 1),
            op(0, 0, Op::Write(int(2)), Value::Done, 2, 3),
            op(1, 0, Op::Read, int(2), 4, 5),
        ];
        let lin = check_linearizable(&history, &specs).unwrap();
        let order = &lin.orders[&ObjId(0)];
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn pac_concurrent_history_linearizes() {
        // Two processes drive a 2-PAC concurrently; the recorded responses
        // come from an actual interleaving, so a witness must exist.
        use lbsa_core::ids::Label;
        let l1 = Label::new(1).unwrap();
        let l2 = Label::new(2).unwrap();
        let specs = vec![AnyObject::pac(2).unwrap()];
        // Interleaving: P(1,1) P(2,2) D(2)=2 D(1)=⊥ (port 1's decide saw
        // L != 1 after port 2's decide reset L).
        let history = vec![
            op(0, 0, Op::ProposePac(int(1), l1), Value::Done, 0, 0),
            op(1, 0, Op::ProposePac(int(2), l2), Value::Done, 1, 1),
            op(1, 0, Op::DecidePac(l2), int(2), 2, 2),
            op(0, 0, Op::DecidePac(l1), Value::Bot, 3, 3),
        ];
        assert!(check_linearizable(&history, &specs).is_ok());
    }
}
