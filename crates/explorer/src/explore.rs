//! Exhaustive exploration: the execution graph of a protocol.
//!
//! [`Explorer`] steps configurations *purely* (no mutable system), branching
//! on both sources of nondeterminism — which process moves, and which
//! admissible outcome a nondeterministic object picks. A fluent
//! [`Exploration`] builder ([`Explorer::exploration`]) builds the full
//! [`ExplorationGraph`] by breadth-first search with configuration
//! deduplication, up to a configurable limit. A complete graph
//! (`complete == true`) covers **every** execution of the protocol, which is
//! what turns the paper's universally-quantified properties into finite
//! checks.
//!
//! ```ignore
//! let graph = explorer
//!     .exploration()
//!     .limits(Limits::new(1_000_000))
//!     .threads(4)
//!     .on_progress(|level| eprintln!("level width {}", level.width))
//!     .run()?;
//! ```
//!
//! ## Engine
//!
//! The search is **level-synchronous**: the frontier of one BFS depth is
//! expanded as a batch, then merged into the graph, then the next frontier
//! is formed. Expansion — the pure, expensive part: protocol steps, object
//! outcome computation, successor construction — runs on a pool of worker
//! threads ([`ExploreOptions::threads`]); the merge is a single sequential
//! scan over the batch in frontier order, so node indices are assigned in
//! exactly the order a sequential FIFO BFS would assign them. **Any thread
//! count produces the identical graph** — same configurations, same
//! indices, same edges — which keeps every downstream analysis (valency,
//! adversary search, certification) and every recorded experiment output
//! reproducible.
//!
//! Deduplication never compares full configurations: object states and
//! process statuses are hash-consed into `u32` ids
//! ([`crate::intern::Interner`]), and a configuration is keyed by its short
//! id vector in a sharded index ([`crate::intern::ShardedIndex`]). Workers
//! pre-probe the (frozen) index during expansion, so the sequential merge
//! mostly copies precomputed targets.
//!
//! Every exploration reports [`ExploreStats`] — throughput, dedup rate,
//! frontier shape, per-level timing — on the resulting graph.

use crate::config::Configuration;
use crate::intern::{CompactConfig, ConcurrentIndex, Interner, ShardedIndex, SHARDS};
use crate::live::{EtaModel, LiveMetrics, ProgressWatcher};
use crate::sampling::SampleConfig;
use crate::stats::{
    duration_ns, duration_us, ExploreStats, LatencyHistograms, LevelStats, PhaseTimes, WorkerStats,
};
use crate::symmetry::ConfigSymmetry;
use lbsa_core::spec::ObjectSpec;
use lbsa_core::{AnyObject, AnyState, ObjId, Op, Pid, Value};
use lbsa_runtime::error::RuntimeError;
use lbsa_runtime::process::{ProcStatus, Protocol, Step, Symmetry};
use lbsa_support::deque as lfdeque;
use lbsa_support::json::Json;
use lbsa_support::obs::{Counter, HistogramNs, Registry, TimerNs, Tracer};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// A per-level progress callback, invoked by [`Exploration::run`] after
/// each BFS level with that level's [`LevelStats`].
type ProgressCallback<'e> = Box<dyn FnMut(&LevelStats) + 'e>;

/// Resource limits for exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of configurations to **expand** (compute successors
    /// of). When the reachable space is larger, the graph is returned
    /// truncated, with `complete == false`; discovered-but-unexpanded
    /// configurations stay in the graph with no outgoing edges.
    pub max_configs: usize,
}

impl Limits {
    /// Creates a limit on the number of expanded configurations.
    #[must_use]
    pub fn new(max_configs: usize) -> Self {
        Limits { max_configs }
    }
}

impl Default for Limits {
    /// Defaults to one million configurations — ample for the experiment
    /// instances, small enough to fail fast on runaway state spaces.
    fn default() -> Self {
        Limits {
            max_configs: 1_000_000,
        }
    }
}

/// Which frontier discipline the engine runs.
///
/// The two modes build graphs over the **same** reachable set (the same
/// configurations, transitions, and verdicts), but order and index the nodes
/// differently — see [`Exploration::frontier`] for the contract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Frontier {
    /// Level-synchronous BFS with a sequential merge: the graph is
    /// byte-identical for every thread count, at the cost of a barrier per
    /// BFS depth. The default, and required for witness extraction and the
    /// determinism test suite.
    #[default]
    Deterministic,
    /// Work-stealing frontier: per-worker deques with steal-half semantics
    /// and a concurrent dedup index, no inter-depth barrier. Node indices
    /// depend on discovery order, so only *verdict equality* (same
    /// configurations, transitions, and checker outcomes) is guaranteed —
    /// the throughput mode for large instances.
    WorkStealing,
}

/// How a `check_*` terminal of the [`Exploration`] builder quantifies over
/// executions.
///
/// Both strategies answer through the same [`Verdict`](crate::Verdict)
/// type; they differ in the strength of a positive answer. Exhaustive
/// checking proves the property over *every* execution
/// ([`Outcome::Holds`](crate::Outcome::Holds)); sampled checking runs a
/// seeded random sweep and answers
/// [`Outcome::HoldsSampled`](crate::Outcome::HoldsSampled) with a
/// Clopper–Pearson confidence bound — evidence, never proof. Violations
/// found by either strategy come back as replayable, `confirm()`-able
/// [`Witness`](crate::Witness)es.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// Explore the full execution graph and check it — the default, and
    /// the only strategy that can *prove* a property.
    #[default]
    Exhaustive,
    /// Run a seeded sampling sweep (see [`crate::sampling`]) instead of
    /// exploring: reaches instances far beyond the exhaustive frontier,
    /// answers with a confidence bound. The verdict and any violating seed
    /// are independent of the worker thread count.
    Sample(SampleConfig),
}

/// Tuning knobs for one exploration run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Resource limits (see [`Limits`]).
    pub limits: Limits,
    /// Worker threads for frontier expansion. `0` means auto: the
    /// `LBSA_EXPLORE_THREADS` environment variable if set, otherwise every
    /// core the machine offers (optionally capped by
    /// `LBSA_EXPLORE_MAX_THREADS`). `1` forces the sequential path. In
    /// [`Frontier::Deterministic`] mode the thread count never affects the
    /// resulting graph, only how fast it is built.
    pub threads: usize,
    /// Bypass the adaptive parallel gate: every level of a multi-threaded
    /// run takes the parallel path regardless of its projected benefit.
    /// For tests pinning parallel-path behaviour and for benchmarking the
    /// parallel machinery itself; production runs should leave this off and
    /// let the gate keep unprofitable levels sequential. Ignored by the
    /// work-stealing frontier, which has no gate.
    pub force_parallel: bool,
    /// Frontier discipline (see [`Frontier`]).
    pub frontier: Frontier,
}

impl ExploreOptions {
    /// Options with the given limits and automatic thread count.
    #[must_use]
    pub fn new(limits: Limits) -> Self {
        ExploreOptions {
            limits,
            threads: 0,
            force_parallel: false,
            frontier: Frontier::Deterministic,
        }
    }

    /// Sets the worker thread count (`0` = auto).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Disables the adaptive parallel gate (see
    /// [`ExploreOptions::force_parallel`]).
    #[must_use]
    pub fn with_force_parallel(mut self, force: bool) -> Self {
        self.force_parallel = force;
        self
    }

    /// Sets the frontier discipline (see [`Frontier`]).
    #[must_use]
    pub fn with_frontier(mut self, frontier: Frontier) -> Self {
        self.frontier = frontier;
        self
    }

    /// The concrete thread count this run will use.
    ///
    /// `0` resolves to `LBSA_EXPLORE_THREADS` if set, otherwise all
    /// available cores. The old hardcoded cap of 8 is gone — the adaptive
    /// [`ParGate`] already keeps levels sequential when extra threads cannot
    /// pay for themselves — but deployments that must bound the engine's
    /// footprint can set `LBSA_EXPLORE_MAX_THREADS` to cap the auto count.
    #[must_use]
    pub fn resolved_threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        if let Some(n) = env_threads("LBSA_EXPLORE_THREADS") {
            return n;
        }
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        match env_threads("LBSA_EXPLORE_MAX_THREADS") {
            Some(cap) => cores.min(cap),
            None => cores,
        }
    }
}

/// A positive thread count from an environment variable, if present and
/// parseable.
fn env_threads(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions::new(Limits::default())
    }
}

/// Bootstrap parallel threshold: before the engine has measured anything,
/// levels narrower than this are expanded inline — spawning workers for a
/// handful of nodes costs more than the expansion itself. Once per-node cost
/// has been measured, the adaptive gate in [`ParGate`] takes over.
const PAR_MIN_LEVEL: usize = 32;

/// Estimated cost of spawning and joining one scoped worker thread, in
/// nanoseconds. The adaptive gate parallelizes a level only when the
/// projected expansion time it saves exceeds this overhead for the whole
/// pool. Deliberately pessimistic: mis-gating a level sequential costs a
/// little throughput, mis-gating it parallel costs a regression.
const SPAWN_COST_NS: f64 = 50_000.0;

/// The adaptive decision of whether to expand a level on worker threads.
///
/// The old engine used the fixed [`PAR_MIN_LEVEL`] width cutoff, which
/// parallelized wide-but-cheap levels (losing to spawn overhead — the
/// `speedup_par_vs_seq < 1` regression in the committed benchmarks) and kept
/// narrow-but-expensive levels sequential. The gate instead tracks an
/// exponential moving average of measured per-node expansion cost and
/// parallelizes exactly when the projected saving beats the spawn cost:
///
/// ```text
/// width · ns_per_node · (1 − 1/p)  >  SPAWN_COST_NS · threads
/// ```
///
/// where `p` is the effective parallelism — the requested thread count
/// capped by the machine's available cores, because threads beyond cores
/// save nothing. On a single-core machine `p = 1`, the projected saving is
/// zero, and every level stays sequential: asking for `threads(8)` then
/// costs nothing and `speedup_par_vs_seq` sits at 1.0 by construction.
///
/// Both paths build the identical graph, so gating on wall-clock timing is
/// safe: the choice affects speed only, never results.
struct ParGate {
    threads: usize,
    effective: usize,
    force: bool,
    ema_ns_per_node: Option<f64>,
}

impl ParGate {
    fn new(threads: usize, force: bool) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        ParGate {
            threads,
            effective: threads.min(cores).max(1),
            force,
            ema_ns_per_node: None,
        }
    }

    /// Should a level of `width` nodes run on the parallel path?
    fn go_parallel(&self, width: usize) -> bool {
        if self.threads <= 1 {
            return false;
        }
        if self.force {
            return true;
        }
        match self.ema_ns_per_node {
            // No measurement yet: fall back to the static width cutoff.
            None => width >= PAR_MIN_LEVEL && self.effective > 1,
            Some(ema) => {
                let saved = width as f64 * ema * (1.0 - 1.0 / self.effective as f64);
                saved > SPAWN_COST_NS * self.threads as f64
            }
        }
    }

    /// Feeds back one level's measured cost. Sequential levels measure true
    /// per-node cost directly; parallel levels measure it scaled by the
    /// parallelism actually achieved, which keeps the estimate conservative.
    fn observe(&mut self, width: usize, elapsed: std::time::Duration) {
        if width == 0 {
            return;
        }
        let ns = elapsed.as_nanos() as f64 / width as f64;
        self.ema_ns_per_node = Some(match self.ema_ns_per_node {
            None => ns,
            Some(ema) => 0.7 * ema + 0.3 * ns,
        });
    }
}

/// One labelled edge of the execution graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// The process that takes the step.
    pub pid: Pid,
    /// The index of the object outcome chosen (0 for deterministic objects).
    pub outcome: usize,
    /// Index of the target configuration.
    pub target: usize,
}

/// The (possibly truncated) execution graph of a protocol.
#[derive(Clone, Debug)]
pub struct ExplorationGraph<L> {
    /// All discovered configurations; index 0 is the initial configuration.
    pub configs: Vec<Configuration<L>>,
    /// Outgoing edges per configuration. Empty for unexpanded (frontier)
    /// configurations of a truncated graph and for terminal configurations.
    pub edges: Vec<Vec<Edge>>,
    /// `expanded[i]` is `true` if configuration `i`'s successors were
    /// computed (always true when `complete`).
    pub expanded: Vec<bool>,
    /// `true` if the whole reachable space was covered.
    pub complete: bool,
    /// Total number of transitions discovered.
    pub transitions: usize,
    /// Metrics of the exploration that built this graph. Timing fields vary
    /// run to run; everything structural is deterministic.
    pub stats: ExploreStats,
}

impl<L> ExplorationGraph<L> {
    /// Number of discovered configurations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Returns `true` if the graph holds no configurations (never the case
    /// for graphs built by [`Explorer::explore`], which always contain at
    /// least the initial configuration).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Approximate heap bytes held by the graph itself: the configuration
    /// and edge storage (shallow — per-configuration heap such as deep
    /// object states is estimated at one `Configuration` header each, not
    /// traversed). Feeds the `mem.graph_bytes` report metric.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let configs = self.configs.capacity() * std::mem::size_of::<Configuration<L>>();
        let edges: usize = self
            .edges
            .iter()
            .map(|e| e.capacity() * std::mem::size_of::<Edge>())
            .sum::<usize>()
            + self.edges.capacity() * std::mem::size_of::<Vec<Edge>>();
        configs + edges + self.expanded.capacity()
    }

    /// Iterates over the indices of terminal configurations (no process can
    /// step).
    pub fn terminal_indices(&self) -> impl Iterator<Item = usize> + '_
    where
        L: Clone + Eq + std::hash::Hash + std::fmt::Debug,
    {
        self.configs
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_terminal())
            .map(|(i, _)| i)
    }

    /// Structural equality: same configurations at the same indices, same
    /// edges, same expansion set, same completeness. Stats (timings) are
    /// deliberately ignored — this is the equality under which the engine
    /// guarantees thread-count independence.
    #[must_use]
    pub fn same_structure(&self, other: &Self) -> bool
    where
        L: PartialEq,
    {
        self.configs == other.configs
            && self.edges == other.edges
            && self.expanded == other.expanded
            && self.complete == other.complete
            && self.transitions == other.transitions
    }

    /// A hash over the graph's structural content (configurations, edges,
    /// expansion set, completeness) — a cheap fingerprint for determinism
    /// checks across runs and thread counts.
    #[must_use]
    pub fn structural_digest(&self) -> u64
    where
        L: std::hash::Hash,
    {
        use std::hash::{Hash, Hasher};
        let mut h = lbsa_support::hash::FxHasher::default();
        self.configs.hash(&mut h);
        self.edges.hash(&mut h);
        self.expanded.hash(&mut h);
        self.complete.hash(&mut h);
        self.transitions.hash(&mut h);
        h.finish()
    }

    /// Returns `true` if the graph contains a cycle reachable from the
    /// initial configuration (iterative three-color DFS).
    #[must_use]
    pub fn has_cycle(&self) -> bool {
        self.find_cycle().is_some()
    }

    /// Finds a cycle if one exists: returns the index of a configuration
    /// that lies on a cycle.
    #[must_use]
    pub fn find_cycle(&self) -> Option<usize> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color = vec![Color::White; self.configs.len()];
        // Iterative DFS: stack of (node, next-edge-index).
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        color[0] = Color::Grey;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < self.edges[node].len() {
                let target = self.edges[node][*next].target;
                *next += 1;
                match color[target] {
                    Color::Grey => return Some(target),
                    Color::White => {
                        color[target] = Color::Grey;
                        stack.push((target, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                stack.pop();
            }
        }
        None
    }

    /// BFS depth of each configuration from the initial one (`None` for
    /// configurations unreachable through recorded edges — only possible in
    /// truncated graphs).
    #[must_use]
    pub fn depths(&self) -> Vec<Option<usize>> {
        let mut depth = vec![None; self.configs.len()];
        depth[0] = Some(0);
        let mut queue = VecDeque::from([0usize]);
        while let Some(node) = queue.pop_front() {
            let d = depth[node].expect("queued nodes have depths");
            for e in &self.edges[node] {
                if depth[e.target].is_none() {
                    depth[e.target] = Some(d + 1);
                    queue.push_back(e.target);
                }
            }
        }
        depth
    }

    /// Renders the graph in Graphviz DOT format. `label` produces each
    /// node's label; terminal configurations are drawn as double circles,
    /// the initial configuration as a box.
    #[must_use]
    pub fn to_dot<F>(&self, mut label: F) -> String
    where
        L: Clone + Eq + std::hash::Hash + std::fmt::Debug,
        F: FnMut(usize, &Configuration<L>) -> String,
    {
        use std::fmt::Write as _;
        let mut out = String::from("digraph execution {\n  rankdir=LR;\n");
        for (i, config) in self.configs.iter().enumerate() {
            let text = label(i, config).replace('"', "'");
            let shape = if i == 0 {
                "box"
            } else if config.is_terminal() {
                "doublecircle"
            } else {
                "ellipse"
            };
            let _ = writeln!(out, "  n{i} [label=\"{text}\", shape={shape}];");
        }
        for (i, edges) in self.edges.iter().enumerate() {
            for e in edges {
                let _ = writeln!(
                    out,
                    "  n{i} -> n{} [label=\"{}/{}\"];",
                    e.target, e.pid, e.outcome
                );
            }
        }
        out.push_str("}\n");
        out
    }

    /// Reconstructs a path (as a list of edges) from the initial
    /// configuration to `target` by BFS.
    #[must_use]
    pub fn path_to(&self, target: usize) -> Option<Vec<Edge>> {
        if target == 0 {
            return Some(vec![]);
        }
        let mut pred: Vec<Option<(usize, Edge)>> = vec![None; self.configs.len()];
        let mut queue = VecDeque::from([0usize]);
        let mut seen = vec![false; self.configs.len()];
        seen[0] = true;
        while let Some(node) = queue.pop_front() {
            for &e in &self.edges[node] {
                if !seen[e.target] {
                    seen[e.target] = true;
                    pred[e.target] = Some((node, e));
                    if e.target == target {
                        let mut path = vec![];
                        let mut cur = target;
                        while cur != 0 {
                            let (p, edge) = pred[cur].expect("predecessor recorded");
                            path.push(edge);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(e.target);
                }
            }
        }
        None
    }
}

/// One successor discovered by an expansion worker, in deterministic
/// `(enabled-pid, outcome)` order within its source node.
struct SuccRecord<L> {
    pid: Pid,
    outcome: usize,
    /// The successor's compact key, kept only when `known` is `None` —
    /// known-duplicate successors never allocate one.
    key: Option<CompactConfig>,
    /// The node index, when the worker's pre-probe found the configuration
    /// already in the index. The index is append-only, so a hit is final.
    known: Option<u32>,
    /// The materialized configuration, kept only when `known` is `None`.
    config: Option<SuccConfig<L>>,
}

/// How a successor record carries its configuration: owned when the worker
/// materialized it afresh, shared when it came out of the canon memo (whose
/// entries stay alive for future hits — cloning them eagerly on every hit
/// would defeat the memo).
enum SuccConfig<L> {
    Owned(Configuration<L>),
    Shared(Arc<Configuration<L>>),
}

impl<L: Clone> SuccConfig<L> {
    /// Extracts the configuration, cloning only if the memo still shares it.
    fn into_config(self) -> Configuration<L> {
        match self {
            SuccConfig::Owned(c) => c,
            SuccConfig::Shared(arc) => Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone()),
        }
    }
}

/// Canonicalization memo for symmetry-reduced exploration: maps a raw
/// successor's **delta-patched compact key** (the parent's canonical key
/// with the stepped object-state and process-status slots replaced) to the
/// successor's canonical form.
///
/// Every graph node under reduction is canonical, so a successor is fully
/// determined by `(parent key, patched slots)` — the patched key. Retry
/// loops and diamond interleavings reproduce the same patched keys from
/// thousands of parents; on a hit the engine skips materializing the raw
/// successor *and* the whole orbit computation. Entries hold both the
/// canonical compact key (for dedup probing) and the canonical
/// configuration (for the rare hit that still discovers a new node — the
/// first key occurrence by wall clock need not be the first in merge
/// order).
///
/// Sharded and lock-guarded like [`TransitionMemo`], shared by parallel
/// expansion workers of both frontier modes; the fused sequential path owns
/// a plain-map analogue.
type CanonShard<L> = lbsa_support::hash::FxHashMap<CompactConfig, CanonEntry<L>>;

/// One canon-memo entry: the canonical compact key and its configuration.
type CanonEntry<L> = (CompactConfig, Arc<Configuration<L>>);

/// The symmetry context a reduced expansion threads through: the group
/// (for canonicalizing misses) and the shared canonicalization memo.
type SymCtx<'a, 'p, L> = (&'a ConfigSymmetry<'p, L>, &'a CanonMemo<L>);

struct CanonMemo<L> {
    shards: Vec<RwLock<CanonShard<L>>>,
    hits: Counter,
    misses: Counter,
    bytes: Counter,
}

impl<L> CanonMemo<L> {
    fn new() -> Self {
        CanonMemo {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(Default::default()))
                .collect(),
            hits: Counter::new(),
            misses: Counter::new(),
            bytes: Counter::new(),
        }
    }

    /// Approximate heap bytes held by the memo, tracked incrementally at
    /// insert time (structural estimate: key payloads plus a shallow
    /// `Configuration`; O(1) to read, so a live watcher can poll it).
    fn approx_bytes(&self) -> usize {
        usize::try_from(self.bytes.get()).unwrap_or(usize::MAX)
    }

    fn get(&self, raw_key: &[u32]) -> Option<CanonEntry<L>> {
        let found = self.shards[ShardedIndex::shard_of(raw_key)]
            .read()
            .expect("canon memo lock poisoned")
            .get(raw_key)
            .cloned();
        match found {
            Some(_) => self.hits.bump(),
            None => self.misses.bump(),
        }
        found
    }

    fn insert(&self, raw_key: CompactConfig, entry: CanonEntry<L>) {
        // 16 per Arc header, 24 assumed map-slot overhead; matches the
        // estimate discipline of `Interner::approx_bytes`.
        let bytes = 2 * 16
            + 24
            + (raw_key.len() + entry.0.len()) * std::mem::size_of::<u32>()
            + std::mem::size_of::<(CompactConfig, CanonEntry<L>)>()
            + std::mem::size_of::<Configuration<L>>();
        self.bytes.add(bytes as u64);
        self.shards[ShardedIndex::shard_of(&raw_key)]
            .write()
            .expect("canon memo lock poisoned")
            .insert(raw_key, entry);
    }
}

/// How a [`WsTask`] carries its configuration. Raw mode owns it outright:
/// the configuration rides the deque by value and the worker that expands
/// the task moves it into the assembly set — no extra allocation, no
/// refcounts. Under symmetry reduction the canonical representative is
/// shared with the canon memo, so tasks hold an `Arc` and assembly unwraps
/// it after the memo drops.
enum WsConfig<L> {
    Owned(Configuration<L>),
    Shared(Arc<Configuration<L>>),
}

impl<L> WsConfig<L> {
    fn get(&self) -> &Configuration<L> {
        match self {
            WsConfig::Owned(c) => c,
            WsConfig::Shared(a) => a,
        }
    }
}

/// One pending node of the work-stealing frontier: its assigned index, its
/// compact dedup key (the delta-interning base for its successors), and its
/// configuration (see [`WsConfig`]).
struct WsTask<L> {
    id: u32,
    key: CompactConfig,
    config: WsConfig<L>,
}

/// Backoff thresholds of the work-stealing idle loop, in consecutive
/// failed sweeps: the first [`WS_SPIN_ROUNDS`] failures spin-wait, the
/// next [`WS_YIELD_ROUNDS`] yield the core, and everything past that
/// parks the thread for [`WS_PARK`] between quiescence re-checks — so a
/// worker can burn at most `WS_SPIN_ROUNDS + WS_YIELD_ROUNDS` sweeps of
/// CPU per idle episode before it starts sleeping.
const WS_SPIN_ROUNDS: u32 = 6;
/// See [`WS_SPIN_ROUNDS`].
const WS_YIELD_ROUNDS: u32 = 10;
/// How long an exhausted worker parks between quiescence re-checks. No
/// unpark signal exists (quiescence is detected by polling `pending`),
/// so the timeout bounds both the wasted CPU and the wake-up latency.
const WS_PARK: Duration = Duration::from_micros(100);
/// Upper bound on tasks transferred by one batched steal.
const WS_STEAL_MAX: usize = 32;

/// One pre-probe *miss* of phase A, patched in place by phase B. Successors
/// whose pre-probe hit emit their edge directly in phase A and leave no
/// record at all — only misses (one per fresh configuration, a small
/// minority once dedup saturates) carry state between the phases. `edge`
/// indexes this worker's edge pool; the batched
/// [`ConcurrentIndex::get_or_insert_batch`] round supplies its target, and
/// an insert win obliges this worker to materialize the configuration.
/// Fixups and batch keys are pushed in lockstep, so the `i`-th fixup reads
/// the `i`-th batch result.
enum WsFixup<L> {
    /// Raw successor: on an insert win, materialize the config by patching
    /// the parent at `obj` / the edge's process slot.
    Raw {
        edge: u32,
        obj: u32,
        succ_state: u32,
        succ_proc: u32,
    },
    /// Canonical successor (symmetry reduction): the orbit representative
    /// is already materialized (canon memo or fresh canonicalization).
    Canon {
        edge: u32,
        arc: Arc<Configuration<L>>,
    },
}

/// What one work-stealing worker hands back at join: the sub-graph it
/// built and its scheduling counters. Node indices come from the shared
/// [`ConcurrentIndex`], so the per-worker pieces assemble by plain index
/// assignment.
struct WsWorkerOut<L> {
    /// Flat pool of every edge this worker emitted, in expansion order —
    /// one growing allocation instead of a `Vec` per task.
    edge_pool: Vec<Edge>,
    /// `(node, start, len)` slices of [`WsWorkerOut::edge_pool`] for every
    /// node this worker expanded.
    tasks: Vec<(u32, u32, u32)>,
    /// `(node, configuration)` for every *shared* (symmetry-reduction) node
    /// this worker discovered, recorded at discovery time — the canon memo
    /// co-owns these, so unexpanded nodes of truncated runs are covered.
    discovered: Vec<(u32, Arc<Configuration<L>>)>,
    /// `(node, configuration)` for every *owned* (raw-mode) node this
    /// worker expanded or discarded over budget — ownership rides the task,
    /// so the record is made where the task ends, not where it was spawned.
    discovered_owned: Vec<(u32, Configuration<L>)>,
    transitions: usize,
    dedup_hits: usize,
    steals: u64,
    steal_fails: u64,
    local_hits: u64,
    /// Deepest this worker's own deque ever got (sampled at push time).
    max_deque_depth: usize,
    /// CPU-burning backoff rounds (spin or yield) while looking for work.
    /// Bounded per idle episode by the backoff thresholds — parked waits
    /// count in `park_count`, not here.
    idle_spins: u64,
    /// Times this worker parked after exhausting the spin/yield budget.
    park_count: u64,
    /// Nanoseconds spent parked — always measured (the park path is cold).
    parked_ns: u64,
    /// Times this worker's deque buffer grew (retiring its predecessor).
    deque_grows: u64,
    /// Final estimated footprint of this worker's deque buffers (live +
    /// retired), read at loop exit while the owner end is still in scope.
    deque_bytes: usize,
    /// Keys resolved to existing nodes by batched index probes.
    index_batch_hits: u64,
    /// Transition-memo hits served by this worker's private L1 map
    /// without touching the shared sharded memo.
    memo_l1_hits: u64,
    /// Nanoseconds spent in steal sweeps, spinning, and yielding — the
    /// clock is only read on the no-local-work path, so this is always
    /// measured. Excludes parked time.
    idle_ns: u64,
    /// Nanoseconds spent expanding tasks. Needs a clock read per task, so
    /// per the overhead policy it stays zero unless the run is traced.
    busy_ns: u64,
}

impl<L> Default for WsWorkerOut<L> {
    fn default() -> Self {
        WsWorkerOut {
            edge_pool: Vec::new(),
            tasks: Vec::new(),
            discovered: Vec::new(),
            discovered_owned: Vec::new(),
            transitions: 0,
            dedup_hits: 0,
            steals: 0,
            steal_fails: 0,
            local_hits: 0,
            max_deque_depth: 0,
            idle_spins: 0,
            park_count: 0,
            parked_ns: 0,
            deque_grows: 0,
            deque_bytes: 0,
            index_batch_hits: 0,
            memo_l1_hits: 0,
            idle_ns: 0,
            busy_ns: 0,
        }
    }
}

type NodeResult<L> = Result<Vec<SuccRecord<L>>, RuntimeError>;

/// Phase-A classification of one not-pre-probed successor record, produced
/// by [`classify_level`] and consumed by the sequential stitch.
#[derive(Clone, Copy, Debug)]
enum MergeClass {
    /// The key was already in the (frozen) index: a cross-level duplicate.
    Known(u32),
    /// The key first appeared earlier in this level, at the given ordinal —
    /// a level-local duplicate of whatever node that ordinal resolves to.
    Dup(usize),
    /// First global occurrence: the stitch assigns it a fresh node index.
    New,
}

/// Phase A of the two-phase merge: classify every successor record whose
/// pre-probe missed (`known == None`) as [`MergeClass::Known`],
/// [`MergeClass::Dup`], or [`MergeClass::New`], returning one
/// ordinal-ascending vector per index shard.
///
/// Records are numbered by a single *ordinal* sequence — their encounter
/// order scanning the level in frontier order — and each record belongs to
/// exactly one shard (a pure function of its key), so the per-shard work is
/// disjoint and runs on worker threads with no locking: every worker scans
/// the shared record list in the same global order but only touches its own
/// shards. Duplicate detection is exact because equal keys always hash to
/// the same shard, so one shard's scan sees every occurrence in ordinal
/// order and can name the first.
///
/// Nodes whose expansion failed are skipped entirely; the stitch stops at
/// the first error anyway, and skipping keeps the ordinal sequences of both
/// phases aligned up to that point.
fn classify_level<L: Send + Sync>(
    results: &[NodeResult<L>],
    index: &ShardedIndex,
    threads: usize,
) -> Vec<Vec<(usize, MergeClass)>> {
    let workers = threads.clamp(1, SHARDS);
    let mut per_worker: Vec<Vec<Vec<(usize, MergeClass)>>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let mut out: Vec<Vec<(usize, MergeClass)>> = vec![Vec::new(); SHARDS];
                    let mut seen: Vec<lbsa_support::hash::FxHashMap<CompactConfig, usize>> =
                        vec![Default::default(); SHARDS];
                    let mut ordinal = 0usize;
                    for result in results {
                        let Ok(records) = result else { continue };
                        for rec in records {
                            if rec.known.is_some() {
                                continue;
                            }
                            let key = rec.key.as_ref().expect("unknown successors carry keys");
                            let shard = ShardedIndex::shard_of(key);
                            if shard % workers == w {
                                let class = if let Some(t) = index.probe(key) {
                                    MergeClass::Known(t)
                                } else {
                                    match seen[shard].entry(key.clone()) {
                                        std::collections::hash_map::Entry::Occupied(e) => {
                                            MergeClass::Dup(*e.get())
                                        }
                                        std::collections::hash_map::Entry::Vacant(v) => {
                                            v.insert(ordinal);
                                            MergeClass::New
                                        }
                                    }
                                };
                                out[shard].push((ordinal, class));
                            }
                            ordinal += 1;
                        }
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            per_worker.push(handle.join().expect("classification worker panicked"));
        }
    });
    // Collapse: each shard was filled by exactly one worker.
    let mut merged: Vec<Vec<(usize, MergeClass)>> = vec![Vec::new(); SHARDS];
    for (w, worker_out) in per_worker.into_iter().enumerate() {
        for (shard, classes) in worker_out.into_iter().enumerate() {
            if shard % workers == w {
                merged[shard] = classes;
            }
        }
    }
    merged
}

/// One frontier entry handed to expansion workers: node index, a borrow of
/// its configuration, and its compact key (the delta-interning base).
type WorkItem<'w, L> = (u32, &'w Configuration<L>, &'w CompactConfig);

/// Canonicalizes through the optional probe timer: traced runs clock the
/// call into the canonicalization-phase accumulator, untraced runs pay
/// nothing beyond the `Option` check (overhead policy: no per-successor
/// clock reads unless a tracer asked for them).
///
/// Goes through [`ConfigSymmetry::canonicalize_incremental`]: engine inputs
/// are one-step patches of canonical parents, the access pattern the lazy
/// already-minimal check is built for. Both its branches return the same
/// representative, so graphs stay byte-identical.
fn timed_canonicalize<L: Clone>(
    sym: &ConfigSymmetry<'_, L>,
    config: &Configuration<L>,
    probe: Option<&CanonProbe>,
) -> Configuration<L> {
    match probe {
        Some(p) => {
            let t0 = Instant::now();
            let canon = sym.canonicalize_incremental(config);
            let elapsed = t0.elapsed();
            p.timer.record(elapsed);
            p.hist.record(elapsed);
            canon
        }
        None => sym.canonicalize_incremental(config),
    }
}

/// The per-call canonicalization probe behind [`timed_canonicalize`],
/// attached only when a tracer is enabled (overhead policy): the timer
/// totals into [`PhaseTimes::canonicalize`], the histogram becomes the
/// `hist.canonicalize` latency distribution of the run's stats.
#[derive(Default)]
struct CanonProbe {
    timer: TimerNs,
    hist: HistogramNs,
}

/// Memoized transition function.
///
/// By the determinism contract, the successors of one `(pid, local state,
/// object state)` triple are a pure function — and after interning, the
/// triple is three integers. The memo maps it to the interned
/// `(object-state, proc-status)` id pairs of the successors, in outcome
/// order, so recurring combinations (retry loops revisit the same local
/// state against the same object state from thousands of configurations)
/// skip the specification and protocol code entirely.
type MemoShard = lbsa_support::hash::FxHashMap<(u32, u32, u32), Arc<Pairs>>;

struct TransitionMemo {
    shards: Vec<RwLock<MemoShard>>,
    hits: Counter,
    misses: Counter,
}

impl TransitionMemo {
    fn new() -> Self {
        TransitionMemo {
            shards: (0..16)
                .map(|_| RwLock::new(lbsa_support::hash::FxHashMap::default()))
                .collect(),
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    fn shard_of(key: (u32, u32, u32)) -> usize {
        (lbsa_support::hash::fx_hash(&key) as usize) & 15
    }

    fn get(&self, key: (u32, u32, u32)) -> Option<Arc<Pairs>> {
        let found = self.shards[Self::shard_of(key)]
            .read()
            .expect("memo lock poisoned")
            .get(&key)
            .cloned();
        match found {
            Some(_) => self.hits.bump(),
            None => self.misses.bump(),
        }
        found
    }

    fn insert(&self, key: (u32, u32, u32), value: Pairs) -> Arc<Pairs> {
        let arc = Arc::new(value);
        self.shards[Self::shard_of(key)]
            .write()
            .expect("memo lock poisoned")
            .insert(key, Arc::clone(&arc));
        arc
    }
}

/// The interned `(object-state id, proc-status id)` outcome pairs of one
/// step, in outcome order. Steps of deterministic objects have exactly one
/// outcome; keeping that case inline spares a heap allocation per memoized
/// transition.
#[derive(Debug)]
enum Pairs {
    One((u32, u32)),
    Many(Vec<(u32, u32)>),
}

impl Pairs {
    fn as_slice(&self) -> &[(u32, u32)] {
        match self {
            Pairs::One(pair) => std::slice::from_ref(pair),
            Pairs::Many(pairs) => pairs,
        }
    }
}

/// How a step hands freshly computed values to an [`Interner`]. The two
/// implementations let one `compute_pairs` body serve both execution paths:
/// `&Interner` goes through the shard locks (parallel workers), `&mut
/// Interner` proves exclusivity and skips them (fused sequential path).
trait InternSink<T> {
    fn put(&mut self, value: &T) -> u32;
}

impl<T: Eq + std::hash::Hash + Clone> InternSink<T> for &Interner<T> {
    fn put(&mut self, value: &T) -> u32 {
        self.intern(value)
    }
}

impl<T: Eq + std::hash::Hash + Clone> InternSink<T> for &mut Interner<T> {
    fn put(&mut self, value: &T) -> u32 {
        self.intern_mut(value)
    }
}

/// A pure, replayable stepper over a protocol's configurations.
#[derive(Debug)]
pub struct Explorer<'a, P: Protocol> {
    protocol: &'a P,
    objects: &'a [AnyObject],
    tracer: Tracer,
    registry: Option<Registry>,
}

impl<'a, P: Protocol> Explorer<'a, P> {
    /// Creates an explorer for `protocol` over `objects`, with tracing
    /// disabled (attach a sink with [`Explorer::with_trace`]).
    #[must_use]
    pub fn new(protocol: &'a P, objects: &'a [AnyObject]) -> Self {
        Explorer {
            protocol,
            objects,
            tracer: Tracer::disabled(),
            registry: None,
        }
    }

    /// Attaches a [`Tracer`]: every exploration started from this explorer
    /// and every verdict check taking it by reference emits phase events
    /// through it. A per-run override is available on the builder
    /// ([`Exploration::trace`]).
    #[must_use]
    pub fn with_trace(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches a live-metrics [`Registry`]: every exploration started
    /// from this explorer (including the ones the `verdict_*` helpers run
    /// internally) publishes its live counters and gauges there, exactly
    /// as if [`Exploration::registry`] had been called on each builder.
    #[must_use]
    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// The attached tracer ([`Tracer::disabled`] unless
    /// [`Explorer::with_trace`] was called).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The protocol being explored.
    #[must_use]
    pub fn protocol(&self) -> &P {
        self.protocol
    }

    /// The object table.
    #[must_use]
    pub fn objects(&self) -> &[AnyObject] {
        self.objects
    }

    /// The initial configuration.
    #[must_use]
    pub fn initial_config(&self) -> Configuration<P::LocalState> {
        Configuration {
            object_states: self.objects.iter().map(ObjectSpec::initial_state).collect(),
            procs: (0..self.protocol.num_processes())
                .map(|i| ProcStatus::Running(self.protocol.init(Pid(i))))
                .collect(),
        }
    }

    /// All configurations reachable from `config` by one step of `pid`, one
    /// per admissible object outcome (in outcome order).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ProcessNotRunning`] if `pid` cannot step, and
    /// propagates specification errors.
    pub fn successors_of(
        &self,
        config: &Configuration<P::LocalState>,
        pid: Pid,
    ) -> Result<Vec<Configuration<P::LocalState>>, RuntimeError> {
        let local = match config.procs.get(pid.index()) {
            None => {
                return Err(RuntimeError::PidOutOfRange {
                    pid,
                    len: config.procs.len(),
                })
            }
            Some(ProcStatus::Running(s)) => s.clone(),
            Some(_) => return Err(RuntimeError::ProcessNotRunning(pid)),
        };
        let (obj, op) = self.protocol.pending_op(pid, &local);
        let spec = self
            .objects
            .get(obj.index())
            .ok_or(RuntimeError::ObjIdOutOfRange {
                obj,
                len: self.objects.len(),
            })?;
        let outs = spec.outcomes(&config.object_states[obj.index()], &op)?;
        Ok(outs
            .into_vec()
            .into_iter()
            .map(|(response, obj_state)| {
                let mut next = config.clone();
                next.object_states[obj.index()] = obj_state;
                next.procs[pid.index()] = match self.protocol.on_response(pid, &local, response) {
                    Step::Continue(s) => ProcStatus::Running(s),
                    Step::Decide(v) => ProcStatus::Decided(v),
                    Step::Abort => ProcStatus::Aborted,
                    Step::Halt => ProcStatus::Halted,
                };
                next
            })
            .collect())
    }

    /// Replays one chosen step: `pid` takes its pending operation and the
    /// object resolves to its `outcome`-th admissible result (0 for
    /// deterministic objects). Returns the successor configuration together
    /// with what happened at the object — the raw material for a replayable
    /// [`lbsa_runtime::trace::TraceEvent`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::OutcomeOutOfRange`] if the object admits
    /// fewer than `outcome + 1` results, plus every error
    /// [`Explorer::successors_of`] can raise.
    pub fn step(
        &self,
        config: &Configuration<P::LocalState>,
        pid: Pid,
        outcome: usize,
    ) -> Result<StepRecord<P::LocalState>, RuntimeError> {
        let local = match config.procs.get(pid.index()) {
            None => {
                return Err(RuntimeError::PidOutOfRange {
                    pid,
                    len: config.procs.len(),
                })
            }
            Some(ProcStatus::Running(s)) => s.clone(),
            Some(_) => return Err(RuntimeError::ProcessNotRunning(pid)),
        };
        let (obj, op) = self.protocol.pending_op(pid, &local);
        let spec = self
            .objects
            .get(obj.index())
            .ok_or(RuntimeError::ObjIdOutOfRange {
                obj,
                len: self.objects.len(),
            })?;
        let outs = spec
            .outcomes(&config.object_states[obj.index()], &op)?
            .into_vec();
        let len = outs.len();
        let (response, obj_state) = outs
            .into_iter()
            .nth(outcome)
            .ok_or(RuntimeError::OutcomeOutOfRange { obj, outcome, len })?;
        let mut next = config.clone();
        next.object_states[obj.index()] = obj_state;
        next.procs[pid.index()] = match self.protocol.on_response(pid, &local, response) {
            Step::Continue(s) => ProcStatus::Running(s),
            Step::Decide(v) => ProcStatus::Decided(v),
            Step::Abort => ProcStatus::Aborted,
            Step::Halt => ProcStatus::Halted,
        };
        Ok(StepRecord {
            config: next,
            obj,
            op,
            response,
        })
    }

    /// Starts a fluent [`Exploration`] of this explorer's protocol.
    ///
    /// This is the single entry point to the engine: configure the run with
    /// the builder, then finish with [`Exploration::run`] for the raw graph
    /// or a `check_*` terminal for a [`Verdict`](crate::Verdict) under the
    /// chosen [`Strategy`].
    pub fn exploration(&self) -> Exploration<'_, 'a, P> {
        Exploration::builder(self)
    }

    /// The engine: builds the execution graph reachable from `initial`.
    ///
    /// The graph is identical for every thread count: workers only compute
    /// successors; node indices are assigned by a sequential merge that
    /// scans each level in frontier order, which reproduces the FIFO order
    /// of a sequential BFS exactly. When several nodes of one level fail,
    /// the error of the earliest node in frontier order is returned — the
    /// same error a sequential exploration reports.
    fn run_engine(
        &self,
        initial: Configuration<P::LocalState>,
        options: ExploreOptions,
        mut on_progress: Option<ProgressCallback<'_>>,
        sym: Option<&ConfigSymmetry<'_, P::LocalState>>,
        tracer: &Tracer,
        live: Option<&LiveMetrics>,
    ) -> Result<ExplorationGraph<P::LocalState>, RuntimeError> {
        let started = Instant::now();
        let threads = options.resolved_threads();
        let limits = options.limits;
        let mut gate = ParGate::new(threads, options.force_parallel);
        if let Some(live) = live {
            live.workers.set_usize(threads);
        }
        tracer.emit_with("explore.begin", || {
            Json::object()
                .set("threads", threads)
                .set("max_configs", limits.max_configs)
                .set("force_parallel", options.force_parallel)
                .set("reduced", sym.is_some())
                .set("frontier", "level-sync")
        });
        // Per-call canonicalization timing means a clock read per successor,
        // so by the overhead policy it runs only under an attached tracer;
        // untraced runs report PhaseTimes::canonicalize == 0.
        let canon_store = CanonProbe::default();
        let canon_probe = tracer.enabled().then_some(&canon_store);
        let canon_calls_before = sym.map_or(0, ConfigSymmetry::canon_calls);
        let canon_fast_before = sym.map_or(0, ConfigSymmetry::canon_fast_hits);
        let canon_full_before = sym.map_or(0, ConfigSymmetry::canon_full_calls);
        // Per-level latency distributions: the level clocks are read anyway,
        // so these are always on.
        let hists = LatencyHistograms::default();

        // Under symmetry reduction every graph node is the canonical
        // representative of its orbit, starting with the root.
        let initial = match sym {
            Some(s) => s.canonicalize(&initial),
            None => initial,
        };
        let mut state_interner: Interner<AnyState> = Interner::new();
        let mut proc_interner: Interner<ProcStatus<P::LocalState>> = Interner::new();
        let mut index = ShardedIndex::new();
        let n_obj = initial.object_states.len();
        let n_procs = initial.procs.len();
        let mut scratch = vec![0u32; n_obj + n_procs];
        let mut out_scratch: Vec<Edge> = Vec::new();
        let initial_key = self.compact(&initial, &state_interner, &proc_interner);
        index.insert(initial_key.clone(), 0);

        let mut configs = vec![initial];
        let mut edges: Vec<Vec<Edge>> = vec![vec![]];
        let mut expanded = vec![false];
        let mut transitions = 0usize;
        let mut complete = true;
        let mut frontier: Vec<(u32, CompactConfig)> = vec![(0, initial_key)];

        let mut expanded_count = 0usize;
        let mut dedup_hits = 0usize;
        // Cumulative dedup already mirrored into the live registry, so the
        // per-level live update adds exactly the level's delta.
        let mut live_dedup_reported = 0usize;
        let mut peak_frontier = 0usize;
        let mut parallel_levels = 0usize;
        let mut levels: Vec<LevelStats> = Vec::new();
        let mut total_expand = Duration::ZERO;
        let mut total_merge = Duration::ZERO;
        let mut seq_memo_hits = 0u64;
        let mut seq_memo_misses = 0u64;
        // Transition memo, one store per execution path: the fused
        // single-threaded path owns a plain map (entry API, no locks, no
        // `Arc` traffic); parallel levels share the sharded, lock-guarded
        // one. Both memoize the same pure function, so a run that switches
        // paths between levels at worst recomputes a step per store.
        let memo = TransitionMemo::new();
        let mut seq_memo: lbsa_support::hash::FxHashMap<(u32, u32, u32), Pairs> =
            lbsa_support::hash::FxHashMap::with_capacity_and_hasher(256, Default::default());
        // Canonicalization memo, same one-store-per-path split (see
        // `CanonMemo`): raw delta-patched successor key → canonical form.
        let canon_memo: CanonMemo<P::LocalState> = CanonMemo::new();
        let mut seq_canon_memo: CanonShard<P::LocalState> = Default::default();
        let mut seq_canon_hits = 0u64;

        while !frontier.is_empty() {
            peak_frontier = peak_frontier.max(frontier.len());
            // The budget counts *expanded* configurations: truncate the
            // level to whatever budget remains, in one pass.
            let budget = limits.max_configs.saturating_sub(expanded_count);
            let take = frontier.len().min(budget);
            if take < frontier.len() {
                complete = false;
            }
            if take == 0 {
                break;
            }
            let level = levels.len();
            let level_started = Instant::now();
            let mut next_frontier: Vec<(u32, CompactConfig)> = Vec::new();
            let mut level_transitions = 0usize;
            let parallel_level = gate.go_parallel(take);
            tracer.emit_with("pargate", || {
                Json::object()
                    .set("level", level)
                    .set("width", take)
                    .set("parallel", parallel_level)
                    .set(
                        "ema_ns_per_node",
                        gate.ema_ns_per_node.map_or(Json::Null, Json::from),
                    )
                    .set("threads", gate.threads)
                    .set("effective", gate.effective)
                    .set("forced", gate.force)
            });
            // Phase accounting: the fused sequential path interleaves
            // expansion and merge, so its whole level counts as expansion;
            // the parallel path marks the expand/merge boundary explicitly.
            let mut expand_elapsed = Duration::ZERO;
            let mut merge_elapsed = Duration::ZERO;

            if !parallel_level {
                // Fused expand-and-merge: with no worker hand-off there is
                // nothing to gain from materializing successor records —
                // each node expands against the live index and merges on the
                // spot. Probing the live index yields exactly the index
                // assignments the two-phase merge computes, in the same
                // frontier order, so this path and the parallel one build
                // identical graphs.
                for (node_id, parent_key) in &frontier[..take] {
                    let node = *node_id as usize;
                    out_scratch.clear();
                    for i in 0..n_procs {
                        let (obj, pairs) = {
                            let ProcStatus::Running(local) = &configs[node].procs[i] else {
                                continue;
                            };
                            let pid = Pid(i);
                            let (obj, op) = self.protocol.pending_op(pid, local);
                            let memo_key =
                                (parent_key[obj.index()], parent_key[n_obj + i], i as u32);
                            let pairs = match seq_memo.entry(memo_key) {
                                std::collections::hash_map::Entry::Occupied(e) => {
                                    seq_memo_hits += 1;
                                    &*e.into_mut()
                                }
                                std::collections::hash_map::Entry::Vacant(v) => {
                                    seq_memo_misses += 1;
                                    &*v.insert(self.compute_pairs(
                                        &configs[node],
                                        pid,
                                        local,
                                        obj,
                                        &op,
                                        &mut state_interner,
                                        &mut proc_interner,
                                    )?)
                                }
                            };
                            (obj, pairs)
                        };
                        for (outcome, &(succ_state, succ_proc)) in
                            pairs.as_slice().iter().enumerate()
                        {
                            level_transitions += 1;
                            if let Some(symmetry) = sym {
                                // Orbit mode: the dedup key is the compacted
                                // *canonical representative*. The raw
                                // delta-patched key below is not that key,
                                // but it *identifies* the raw successor, so
                                // it memoizes the canonicalization: on a hit
                                // neither the raw successor nor any permuted
                                // copy is materialized.
                                scratch.copy_from_slice(parent_key);
                                scratch[obj.index()] = succ_state;
                                scratch[n_obj + i] = succ_proc;
                                let (key, shared) = match seq_canon_memo
                                    .get(scratch.as_slice())
                                    .cloned()
                                {
                                    Some((ck, arc)) => {
                                        seq_canon_hits += 1;
                                        (ck, arc)
                                    }
                                    None => {
                                        let canon = {
                                            let parent = &configs[node];
                                            let mut raw = parent.clone();
                                            raw.object_states[obj.index()] =
                                                state_interner.resolve_mut(succ_state).clone();
                                            raw.procs[i] =
                                                proc_interner.resolve_mut(succ_proc).clone();
                                            timed_canonicalize(symmetry, &raw, canon_probe)
                                        };
                                        let key =
                                            self.compact(&canon, &state_interner, &proc_interner);
                                        let arc = Arc::new(canon);
                                        seq_canon_memo.insert(
                                            scratch.as_slice().into(),
                                            (key.clone(), Arc::clone(&arc)),
                                        );
                                        (key, arc)
                                    }
                                };
                                let target = if let Some(t) = index.probe(&key) {
                                    dedup_hits += 1;
                                    t
                                } else {
                                    let t = u32::try_from(configs.len())
                                        .expect("graphs are bounded well below u32::MAX nodes");
                                    next_frontier.push((t, key.clone()));
                                    index.insert(key, t);
                                    configs.push(
                                        Arc::try_unwrap(shared).unwrap_or_else(|a| (*a).clone()),
                                    );
                                    edges.push(vec![]);
                                    expanded.push(false);
                                    t
                                };
                                out_scratch.push(Edge {
                                    pid: Pid(i),
                                    outcome,
                                    target: target as usize,
                                });
                                continue;
                            }
                            scratch.copy_from_slice(parent_key);
                            scratch[obj.index()] = succ_state;
                            scratch[n_obj + i] = succ_proc;
                            let target = if let Some(t) = index.probe(&scratch) {
                                dedup_hits += 1;
                                t
                            } else {
                                let t = u32::try_from(configs.len())
                                    .expect("graphs are bounded well below u32::MAX nodes");
                                let key: CompactConfig = scratch.as_slice().into();
                                // Build the successor from parts rather than
                                // clone-then-overwrite: the two patched slots
                                // come from the interner, the rest from the
                                // parent.
                                let mut new_state =
                                    Some(state_interner.resolve_mut(succ_state).clone());
                                let mut new_proc =
                                    Some(proc_interner.resolve_mut(succ_proc).clone());
                                let next = {
                                    let parent = &configs[node];
                                    Configuration {
                                        object_states: parent
                                            .object_states
                                            .iter()
                                            .enumerate()
                                            .map(|(j, s)| {
                                                if j == obj.index() {
                                                    new_state.take().expect("one patched slot")
                                                } else {
                                                    s.clone()
                                                }
                                            })
                                            .collect(),
                                        procs: parent
                                            .procs
                                            .iter()
                                            .enumerate()
                                            .map(|(j, p)| {
                                                if j == i {
                                                    new_proc.take().expect("one patched slot")
                                                } else {
                                                    p.clone()
                                                }
                                            })
                                            .collect(),
                                    }
                                };
                                next_frontier.push((t, key.clone()));
                                index.insert(key, t);
                                configs.push(next);
                                edges.push(vec![]);
                                expanded.push(false);
                                t
                            };
                            out_scratch.push(Edge {
                                pid: Pid(i),
                                outcome,
                                target: target as usize,
                            });
                        }
                    }
                    // Exact-size allocation; the scratch keeps its capacity
                    // for the next node.
                    edges[node] = out_scratch.clone();
                    expanded[node] = true;
                }
            } else {
                // Expansion borrows the graph's configurations immutably;
                // the borrow ends before the merge mutates them.
                let results: Vec<NodeResult<P::LocalState>> = {
                    let work: Vec<WorkItem<'_, P::LocalState>> = frontier[..take]
                        .iter()
                        .map(|(i, key)| (*i, &configs[*i as usize], key))
                        .collect();
                    self.expand_level_parallel(
                        &work,
                        threads,
                        &state_interner,
                        &proc_interner,
                        &memo,
                        &index,
                        sym.map(|s| (s, &canon_memo)),
                        canon_probe,
                    )
                };
                expand_elapsed = level_started.elapsed();

                // Two-phase deterministic merge. Phase A classifies every
                // not-pre-probed successor against the frozen index and its
                // level-local siblings, per shard on worker threads — all the
                // hashing of the merge happens here, in parallel, because
                // equal keys always land in the same shard. Phase B is a
                // sequential stitch in frontier order that only *assigns*:
                // node indices are handed out in first-encounter order,
                // exactly the order a sequential FIFO BFS assigns them, so
                // the graph is identical to the sequential path's.
                let classes = classify_level(&results, &index, threads);
                let mut cursors = [0usize; SHARDS];
                let mut targets: Vec<u32> = Vec::new();
                for ((node, _), result) in frontier[..take].iter().zip(results) {
                    let records = result?;
                    let mut out = Vec::with_capacity(records.len());
                    for rec in records {
                        level_transitions += 1;
                        let target = if let Some(t) = rec.known {
                            dedup_hits += 1;
                            t
                        } else {
                            let key = rec.key.expect("unknown successors carry their key");
                            let shard = ShardedIndex::shard_of(&key);
                            let (ord, class) = classes[shard][cursors[shard]];
                            cursors[shard] += 1;
                            debug_assert_eq!(ord, targets.len(), "phase ordinals in lock-step");
                            let t = match class {
                                MergeClass::Known(t) => {
                                    dedup_hits += 1;
                                    t
                                }
                                MergeClass::Dup(first) => {
                                    dedup_hits += 1;
                                    targets[first]
                                }
                                MergeClass::New => {
                                    let t = u32::try_from(configs.len())
                                        .expect("graphs are bounded well below u32::MAX nodes");
                                    next_frontier.push((t, key.clone()));
                                    index.insert(key, t);
                                    configs.push(
                                        rec.config
                                            .expect("new successors carry their configuration")
                                            .into_config(),
                                    );
                                    edges.push(vec![]);
                                    expanded.push(false);
                                    t
                                }
                            };
                            targets.push(t);
                            t
                        };
                        out.push(Edge {
                            pid: rec.pid,
                            outcome: rec.outcome,
                            target: target as usize,
                        });
                    }
                    edges[*node as usize] = out;
                    expanded[*node as usize] = true;
                }
            }
            expanded_count += take;
            transitions += level_transitions;
            // Live mirror: one batch of relaxed bumps per level (never per
            // successor), plus O(1) gauge refreshes for the watcher.
            if let Some(live) = live {
                live.configs.add(take as u64);
                live.transitions.add(level_transitions as u64);
                live.dedup_hits
                    .add((dedup_hits - live_dedup_reported) as u64);
                live_dedup_reported = dedup_hits;
                live.frontier_depth.set_usize(next_frontier.len());
                live.mem_interner
                    .set_usize(state_interner.approx_bytes() + proc_interner.approx_bytes());
                live.mem_index.set_usize(index.approx_bytes());
                live.mem_canon.set_usize(canon_memo.approx_bytes());
            }
            let level_elapsed = level_started.elapsed();
            gate.observe(take, level_elapsed);
            if parallel_level {
                parallel_levels += 1;
                merge_elapsed = level_elapsed.saturating_sub(expand_elapsed);
            } else {
                expand_elapsed = level_elapsed;
            }
            total_expand += expand_elapsed;
            total_merge += merge_elapsed;
            hists.level_expand.record(expand_elapsed);
            if parallel_level {
                hists.level_merge.record(merge_elapsed);
            }
            levels.push(LevelStats {
                level,
                width: take,
                transitions: level_transitions,
                elapsed: level_elapsed,
                expand: expand_elapsed,
                merge: merge_elapsed,
                parallel: parallel_level,
            });
            tracer.emit_with("level", || {
                Json::object()
                    .set("level", level)
                    .set("width", take)
                    .set("transitions", level_transitions)
                    .set("dedup", level_transitions - next_frontier.len())
                    .set("parallel", parallel_level)
                    .set("expand_us", duration_us(expand_elapsed))
                    .set("merge_us", duration_us(merge_elapsed))
                    .set("elapsed_us", duration_us(level_elapsed))
            });
            if let Some(cb) = on_progress.as_mut() {
                cb(levels.last().expect("level just pushed"));
            }
            if take < frontier.len() {
                // Truncated: the rest of this frontier (and everything newly
                // discovered) stays unexpanded.
                break;
            }
            frontier = next_frontier;
        }

        let stats = ExploreStats {
            configs: configs.len(),
            expanded: expanded_count,
            transitions,
            dedup_hits,
            distinct_object_states: state_interner.len(),
            distinct_proc_statuses: proc_interner.len(),
            peak_frontier,
            threads,
            parallel_levels,
            reduced: sym.is_some(),
            elapsed: started.elapsed(),
            phases: PhaseTimes {
                expand: total_expand,
                merge: total_merge,
                canonicalize: canon_store.timer.total(),
            },
            memo_hits: memo.hits.get() + seq_memo_hits,
            memo_misses: memo.misses.get() + seq_memo_misses,
            intern_hits: state_interner.hits() + proc_interner.hits(),
            intern_misses: state_interner.misses() + proc_interner.misses(),
            canon_calls: sym.map_or(0, ConfigSymmetry::canon_calls) - canon_calls_before,
            canon_patches: (sym.map_or(0, ConfigSymmetry::canon_fast_hits) - canon_fast_before)
                + canon_memo.hits.get()
                + seq_canon_hits,
            canon_full: sym.map_or(0, ConfigSymmetry::canon_full_calls) - canon_full_before,
            work_stealing: false,
            steals: 0,
            steal_fails: 0,
            local_hits: 0,
            park_count: 0,
            deque_grows: 0,
            index_batch_hits: 0,
            interner_bytes: state_interner.approx_bytes() + proc_interner.approx_bytes(),
            index_bytes: index.approx_bytes(),
            levels,
            workers: Vec::new(),
            hist: {
                hists.canonicalize.merge(&canon_store.hist);
                hists
            },
        };
        tracer.emit_with("explore.end", || stats.to_json());
        Ok(ExplorationGraph {
            configs,
            edges,
            expanded,
            complete,
            transitions,
            stats,
        })
    }

    /// The work-stealing engine behind [`Frontier::WorkStealing`]: no BFS
    /// levels, no barriers. Each worker owns a LIFO deque of pending nodes;
    /// an idle worker steals the older half of a victim's deque (FIFO end —
    /// thieves take the work closest to the root, whose subtrees are
    /// largest). Deduplication goes through a [`ConcurrentIndex`] that
    /// assigns node indices in discovery order, so the graph's indexing is
    /// scheduling-dependent while its *content* — configuration set, edge
    /// multiset, stats aggregates — matches the deterministic engine's on
    /// complete runs (see [`Exploration::frontier`]).
    ///
    /// Termination uses a single pending-task counter: it is incremented
    /// before a node becomes stealable and decremented only after its
    /// expansion (including enqueuing all children), so `pending == 0` with
    /// all deques empty proves quiescence.
    ///
    /// The frontier itself is lock-free: each worker owns the bottom end of
    /// a Chase–Lev deque ([`lfdeque`], DESIGN.md §12) and thieves race on
    /// the top end with a single CAS, so no deque mutex exists anywhere on
    /// the hot path. An idle worker sweeps the other deques in ring order
    /// from a per-sweep xorshift-randomized start (so simultaneous thieves
    /// fan out instead of convoying on one victim), batch-stealing up to
    /// half the victim (capped at [`WS_STEAL_MAX`]); on a completely empty
    /// sweep it backs off spin → yield → timed park (see
    /// [`WS_SPIN_ROUNDS`]), which keeps an idle worker's CPU burn bounded
    /// while `pending` polling still detects quiescence. Successor dedup
    /// is batched: each task pre-probes read-only, then resolves all
    /// missing keys with one [`ConcurrentIndex::get_or_insert_batch`] call
    /// — one lock round per shard per task instead of one per successor.
    fn run_engine_ws(
        &self,
        initial: Configuration<P::LocalState>,
        options: ExploreOptions,
        sym: Option<&ConfigSymmetry<'_, P::LocalState>>,
        tracer: &Tracer,
        live: Option<&LiveMetrics>,
    ) -> Result<ExplorationGraph<P::LocalState>, RuntimeError> {
        let started = Instant::now();
        let workers = options.resolved_threads().max(1);
        let limits = options.limits;
        if let Some(live) = live {
            live.workers.set_usize(workers);
        }
        tracer.emit_with("explore.begin", || {
            Json::object()
                .set("threads", workers)
                .set("max_configs", limits.max_configs)
                .set("force_parallel", options.force_parallel)
                .set("reduced", sym.is_some())
                .set("frontier", "work-stealing")
        });
        let canon_store = CanonProbe::default();
        let canon_probe = tracer.enabled().then_some(&canon_store);
        let canon_calls_before = sym.map_or(0, ConfigSymmetry::canon_calls);
        let canon_fast_before = sym.map_or(0, ConfigSymmetry::canon_fast_hits);
        let canon_full_before = sym.map_or(0, ConfigSymmetry::canon_full_calls);
        // Steal and per-task expand latencies need extra clock reads on the
        // worker hot path, so they are recorded only when traced; the
        // histograms themselves are relaxed atomics shared across workers.
        let hists = LatencyHistograms::default();
        let traced = tracer.enabled();

        let initial = match sym {
            Some(s) => s.canonicalize(&initial),
            None => initial,
        };
        let state_interner: Interner<AnyState> = Interner::new();
        let proc_interner: Interner<ProcStatus<P::LocalState>> = Interner::new();
        let memo = TransitionMemo::new();
        let canon_memo: CanonMemo<P::LocalState> = CanonMemo::new();
        let index = ConcurrentIndex::new();
        let n_obj = initial.object_states.len();
        let n_procs = initial.procs.len();
        let initial_key = self.compact(&initial, &state_interner, &proc_interner);
        let (root, _) = index.get_or_insert(&initial_key);
        debug_assert_eq!(root, 0, "the root is the first interned node");
        // Raw mode moves the root into its task; shared mode keeps a handle
        // so assembly can place the root even though `discovered` (which
        // records at discovery, not expansion) never sees it.
        let mut initial_shared: Option<Arc<Configuration<P::LocalState>>> = None;
        let root_config = if sym.is_some() {
            let arc = Arc::new(initial);
            initial_shared = Some(Arc::clone(&arc));
            WsConfig::Shared(arc)
        } else {
            WsConfig::Owned(initial)
        };

        let mut owners: Vec<lfdeque::Owner<WsTask<P::LocalState>>> = Vec::with_capacity(workers);
        let mut stealers: Vec<lfdeque::Stealer<WsTask<P::LocalState>>> =
            Vec::with_capacity(workers);
        for _ in 0..workers {
            let (owner, stealer) = lfdeque::deque();
            owners.push(owner);
            stealers.push(stealer);
        }
        owners[0].push(WsTask {
            id: root,
            key: initial_key,
            config: root_config,
        });
        // Queued-or-in-flight nodes; bumped before a task becomes stealable,
        // dropped only after its children are enqueued.
        let pending = AtomicUsize::new(1);
        let peak_pending = AtomicUsize::new(1);
        // Expansion budget claims, one per task; a claim at or past the
        // limit marks the run truncated and leaves the node unexpanded.
        let claimed = AtomicUsize::new(0);
        let truncated = AtomicBool::new(false);
        let abort = AtomicBool::new(false);
        let first_error: Mutex<Option<RuntimeError>> = Mutex::new(None);

        // The whole worker loop, shared between the two launch modes below:
        // a lone worker runs it inline on the calling thread (no spawn/join
        // round-trip on the gated 1-core path), while real fleets spawn it
        // per worker under a scope. Captures the run state by reference.
        let run_worker = |me: usize, own: lfdeque::Owner<WsTask<P::LocalState>>| {
            let mut out = WsWorkerOut::default();
            let mut scratch = vec![0u32; n_obj + n_procs];
            // Per-task scratch reused for the whole run: the
            // phase-A successor records, the batched-probe key
            // set and results, and the children to enqueue.
            // Cleared between tasks, never reallocated once
            // warm — the expand path settles into zero heap
            // traffic beyond genuinely new configurations.
            let mut fixups: Vec<WsFixup<P::LocalState>> = Vec::new();
            let mut batch_keys: Vec<CompactConfig> = Vec::new();
            let mut batch_results: Vec<(u32, bool)> = Vec::new();
            let mut spawned: Vec<WsTask<P::LocalState>> = Vec::new();
            // Private L1 in front of the shared transition memo:
            // repeat (state, proc) pairs — the common case on
            // dense graphs — resolve with a plain map lookup
            // instead of a shard lock. The shared memo stays the
            // source of truth, so workers still reuse each
            // other's first computations; the L1 costs one
            // `Arc<Pairs>` clone per distinct pair per worker.
            let mut memo_l1: lbsa_support::hash::FxHashMap<(u32, u32, u32), Arc<Pairs>> =
                lbsa_support::hash::FxHashMap::default();
            // Depth-first continuation: the newest child of the
            // task just expanded rides here instead of taking a
            // deque round-trip — on chain-shaped frontiers that
            // skips the pop's mandatory fence and both `pending`
            // RMWs for almost every task. Held work is invisible
            // to thieves for exactly one expansion, the same
            // window a popped task always was.
            let mut in_hand: Option<WsTask<P::LocalState>> = None;
            // Consecutive failed sweeps drive the
            // spin→yield→park backoff; any found task resets it.
            let mut backoff: u32 = 0;
            // Cumulative counts already mirrored into the live
            // registry; each task adds only its delta.
            let mut live_tx_reported = 0usize;
            let mut live_dd_reported = 0usize;
            // Per-worker xorshift32 stream (odd seed from a
            // golden-ratio multiply) rotating each sweep's
            // starting victim so simultaneous thieves fan out
            // across victims instead of convoying on one.
            let mut rng: u32 = (me as u32).wrapping_mul(0x9E37_79B9) | 1;
            'work: loop {
                if abort.load(Ordering::Acquire) {
                    break;
                }
                // In-hand continuation first (same task the LIFO
                // pop would return, without the fence), then the
                // own deque (depth-first locally, cache-warm
                // parents), then sweep the victims.
                let task = if let Some(task) = in_hand.take() {
                    out.local_hits += 1;
                    backoff = 0;
                    task
                } else {
                    match own.pop() {
                        Some(task) => {
                            out.local_hits += 1;
                            backoff = 0;
                            task
                        }
                        None => {
                            // The no-local-work path — sweep, spin,
                            // yield — counts as idle time; the clock
                            // only runs while this worker is not
                            // expanding, so it is measured even on
                            // untraced runs. Parked waits are timed
                            // separately in `parked_ns` so reported
                            // idle stays proportional to burned CPU.
                            let sweep_t0 = Instant::now();
                            let mut stolen = None;
                            if workers > 1 {
                                rng ^= rng << 13;
                                rng ^= rng >> 17;
                                rng ^= rng << 5;
                                let rot = rng as usize % (workers - 1);
                                for k in 0..workers - 1 {
                                    let victim = (me + 1 + (rot + k) % (workers - 1)) % workers;
                                    match stealers[victim].steal_batch_and_pop(&own, WS_STEAL_MAX) {
                                        lfdeque::Steal::Taken((task, extra)) => {
                                            stolen = Some((task, victim, extra));
                                            break;
                                        }
                                        // A lost CAS race means the
                                        // victim is being drained by
                                        // someone; move on rather
                                        // than contend on one deque.
                                        lfdeque::Steal::Empty | lfdeque::Steal::Retry => {}
                                    }
                                }
                            }
                            match stolen {
                                Some((task, victim_hit, extra)) => {
                                    out.steals += 1;
                                    if let Some(live) = live {
                                        live.steals.bump();
                                    }
                                    backoff = 0;
                                    // The batched extras landed in
                                    // our own deque; the task in
                                    // hand counts toward depth too.
                                    out.max_deque_depth = out.max_deque_depth.max(own.len() + 1);
                                    let sweep = sweep_t0.elapsed();
                                    out.idle_ns = out.idle_ns.saturating_add(duration_ns(sweep));
                                    if traced {
                                        hists.steal.record(sweep);
                                        hists.steal_batch.record_ns(extra as u64 + 1);
                                        tracer.emit_with("ws.steal", || {
                                            Json::object()
                                                .set("worker", me)
                                                .set("victim", victim_hit)
                                                .set("outcome", "hit")
                                                .set("batch", extra + 1)
                                                .set("latency_us", duration_us(sweep))
                                        });
                                    }
                                    task
                                }
                                None => {
                                    out.steal_fails += 1;
                                    out.idle_ns =
                                        out.idle_ns.saturating_add(duration_ns(sweep_t0.elapsed()));
                                    // Per-attempt miss events would
                                    // be unbounded in a spin storm;
                                    // power-of-two sampling keeps the
                                    // trace logarithmic while the
                                    // `spins`/`parks` fields preserve
                                    // the storm's true intensity.
                                    if traced && out.steal_fails.is_power_of_two() {
                                        tracer.emit_with("ws.steal", || {
                                            Json::object()
                                                .set("worker", me)
                                                .set("outcome", "miss")
                                                .set("spins", out.idle_spins)
                                                .set("parks", out.park_count)
                                                .set("pending", pending.load(Ordering::Relaxed))
                                        });
                                    }
                                    if pending.load(Ordering::Acquire) == 0 {
                                        break;
                                    }
                                    // Exponential backoff: brief
                                    // spins first (work usually
                                    // reappears in microseconds),
                                    // then scheduler yields, then
                                    // timed parks — so a starved
                                    // worker's CPU burn is bounded
                                    // per idle episode while the
                                    // `pending` poll above still
                                    // detects quiescence promptly.
                                    backoff = backoff.saturating_add(1);
                                    if backoff <= WS_SPIN_ROUNDS {
                                        out.idle_spins += 1;
                                        for _ in 0..(1u32 << backoff) {
                                            std::hint::spin_loop();
                                        }
                                    } else if backoff <= WS_SPIN_ROUNDS + WS_YIELD_ROUNDS {
                                        out.idle_spins += 1;
                                        std::thread::yield_now();
                                    } else {
                                        out.park_count += 1;
                                        if let Some(live) = live {
                                            live.parked_workers.add(1);
                                        }
                                        let park_t0 = Instant::now();
                                        std::thread::park_timeout(WS_PARK);
                                        if let Some(live) = live {
                                            live.parked_workers.sub(1);
                                        }
                                        out.parked_ns = out
                                            .parked_ns
                                            .saturating_add(duration_ns(park_t0.elapsed()));
                                    }
                                    continue;
                                }
                            }
                        }
                    }
                };
                if claimed.fetch_add(1, Ordering::Relaxed) >= limits.max_configs {
                    truncated.store(true, Ordering::Relaxed);
                    // An over-budget task dies unexpanded, but
                    // raw mode must still deliver its (owned)
                    // configuration to assembly; shared mode
                    // recorded it at discovery.
                    if let WsConfig::Owned(cfg) = task.config {
                        out.discovered_owned.push((task.id, cfg));
                    }
                    pending.fetch_sub(1, Ordering::AcqRel);
                    continue;
                }
                // Per-task expansion timing is a clock read per
                // task: traced runs only.
                let task_t0 = traced.then(Instant::now);
                let config = task.config.get();
                let parent_key = &task.key;
                fixups.clear();
                batch_keys.clear();
                let edge_start = out.edge_pool.len();
                // Phase A: enumerate successors and pre-probe the
                // shared index read-only. Hits emit their edge on
                // the spot; only misses queue a key for the one
                // batched insert round and a fixup that phase B
                // patches into the already-emitted placeholder
                // edge — so the per-successor record/replay cost
                // is paid by fresh configurations only.
                for (i, status) in config.procs.iter().enumerate() {
                    let ProcStatus::Running(local) = status else {
                        continue;
                    };
                    let pid = Pid(i);
                    let (obj, op) = self.protocol.pending_op(pid, local);
                    let memo_key = (parent_key[obj.index()], parent_key[n_obj + i], i as u32);
                    // Entry API: a hit borrows the cached
                    // `Arc<Pairs>` in place — one hash, no
                    // refcount traffic — mirroring the fused
                    // sequential path's zero-clone memo.
                    let pairs = match memo_l1.entry(memo_key) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            out.memo_l1_hits += 1;
                            e.into_mut()
                        }
                        std::collections::hash_map::Entry::Vacant(slot) => {
                            match self.step_pairs(
                                config,
                                pid,
                                local,
                                obj,
                                &op,
                                memo_key,
                                &state_interner,
                                &proc_interner,
                                &memo,
                            ) {
                                Ok(pairs) => slot.insert(pairs),
                                Err(err) => {
                                    let mut slot = first_error.lock().expect("error slot poisoned");
                                    slot.get_or_insert(err);
                                    abort.store(true, Ordering::Release);
                                    pending.fetch_sub(1, Ordering::AcqRel);
                                    break 'work;
                                }
                            }
                        }
                    };
                    for (outcome, &(succ_state, succ_proc)) in pairs.as_slice().iter().enumerate() {
                        scratch.copy_from_slice(parent_key);
                        scratch[obj.index()] = succ_state;
                        scratch[n_obj + i] = succ_proc;
                        out.transitions += 1;
                        if let Some(symmetry) = sym {
                            let (key, arc) = match canon_memo.get(&scratch) {
                                Some(entry) => entry,
                                None => {
                                    let mut raw = config.clone();
                                    raw.object_states[obj.index()] =
                                        state_interner.resolve_with(succ_state, Clone::clone);
                                    raw.procs[i] =
                                        proc_interner.resolve_with(succ_proc, Clone::clone);
                                    let canon = timed_canonicalize(symmetry, &raw, canon_probe);
                                    let key = self.compact(&canon, &state_interner, &proc_interner);
                                    let arc = Arc::new(canon);
                                    canon_memo.insert(
                                        scratch.as_slice().into(),
                                        (key.clone(), Arc::clone(&arc)),
                                    );
                                    (key, arc)
                                }
                            };
                            match index.probe(&key) {
                                Some(t) => {
                                    out.dedup_hits += 1;
                                    out.edge_pool.push(Edge {
                                        pid,
                                        outcome,
                                        target: t as usize,
                                    });
                                }
                                None => {
                                    let edge = u32::try_from(out.edge_pool.len())
                                        .expect("edge pool overflow");
                                    out.edge_pool.push(Edge {
                                        pid,
                                        outcome,
                                        target: usize::MAX,
                                    });
                                    batch_keys.push(key);
                                    fixups.push(WsFixup::Canon { edge, arc });
                                }
                            }
                        } else {
                            match index.probe(&scratch) {
                                Some(t) => {
                                    out.dedup_hits += 1;
                                    out.edge_pool.push(Edge {
                                        pid,
                                        outcome,
                                        target: t as usize,
                                    });
                                }
                                None => {
                                    let edge = u32::try_from(out.edge_pool.len())
                                        .expect("edge pool overflow");
                                    out.edge_pool.push(Edge {
                                        pid,
                                        outcome,
                                        target: usize::MAX,
                                    });
                                    batch_keys.push(scratch.as_slice().into());
                                    fixups.push(WsFixup::Raw {
                                        edge,
                                        obj: obj.index() as u32,
                                        succ_state,
                                        succ_proc,
                                    });
                                }
                            }
                        }
                    }
                }
                // Phase B: one batched index round for the keys
                // the pre-probe missed (keys another worker
                // interned since the probe come back as hits),
                // then patch each placeholder edge and
                // materialize only the insert winners.
                if batch_keys.is_empty() {
                    batch_results.clear();
                } else {
                    out.index_batch_hits +=
                        index.get_or_insert_batch(&batch_keys, &mut batch_results);
                }
                for (b, fix) in fixups.drain(..).enumerate() {
                    let (t, inserted) = batch_results[b];
                    match fix {
                        WsFixup::Canon { edge, arc } => {
                            out.edge_pool[edge as usize].target = t as usize;
                            if inserted {
                                out.discovered.push((t, Arc::clone(&arc)));
                                spawned.push(WsTask {
                                    id: t,
                                    key: Arc::clone(&batch_keys[b]),
                                    config: WsConfig::Shared(arc),
                                });
                            } else {
                                out.dedup_hits += 1;
                            }
                        }
                        WsFixup::Raw {
                            edge,
                            obj,
                            succ_state,
                            succ_proc,
                        } => {
                            let pid = {
                                let slot = &mut out.edge_pool[edge as usize];
                                slot.target = t as usize;
                                slot.pid
                            };
                            if inserted {
                                let mut next = config.clone();
                                next.object_states[obj as usize] =
                                    state_interner.resolve_with(succ_state, Clone::clone);
                                next.procs[pid.0] =
                                    proc_interner.resolve_with(succ_proc, Clone::clone);
                                spawned.push(WsTask {
                                    id: t,
                                    key: Arc::clone(&batch_keys[b]),
                                    config: WsConfig::Owned(next),
                                });
                            } else {
                                out.dedup_hits += 1;
                            }
                        }
                    }
                }
                let edge_len = out.edge_pool.len() - edge_start;
                out.tasks.push((
                    task.id,
                    u32::try_from(edge_start).expect("edge pool overflow"),
                    u32::try_from(edge_len).expect("edge fan-out overflow"),
                ));
                // Expansion done: a raw-mode task surrenders its
                // configuration to the assembly set here.
                if let WsConfig::Owned(cfg) = task.config {
                    out.discovered_owned.push((task.id, cfg));
                }
                // Retire this task and enqueue its children in
                // one `pending` update. The newest child (the
                // task the LIFO pop would return next) stays in
                // hand and inherits this task's `pending` slot —
                // so a chain of single-child tasks runs with zero
                // `pending` RMWs and zero deque traffic.
                if spawned.is_empty() {
                    pending.fetch_sub(1, Ordering::AcqRel);
                } else {
                    in_hand = spawned.pop();
                    let extra = spawned.len();
                    if extra > 0 {
                        let now = pending.fetch_add(extra, Ordering::AcqRel) + extra + 1;
                        peak_pending.fetch_max(now, Ordering::Relaxed);
                        for child in spawned.drain(..) {
                            own.push(child);
                        }
                        out.max_deque_depth = out.max_deque_depth.max(own.len() + 1);
                    }
                }
                // Live mirror: a few relaxed bumps per task (never per
                // successor), and O(1)-readable mem gauges refreshed at a
                // coarse beat so the watcher never perturbs the hot path.
                if let Some(live) = live {
                    live.configs.bump();
                    live.transitions
                        .add((out.transitions - live_tx_reported) as u64);
                    live_tx_reported = out.transitions;
                    live.dedup_hits
                        .add((out.dedup_hits - live_dd_reported) as u64);
                    live_dd_reported = out.dedup_hits;
                    live.frontier_depth
                        .set_usize(pending.load(Ordering::Relaxed));
                    if out.tasks.len().is_multiple_of(64) {
                        live.mem_interner.set_usize(
                            state_interner.approx_bytes() + proc_interner.approx_bytes(),
                        );
                        live.mem_index.set_usize(index.approx_bytes());
                        live.mem_canon.set_usize(canon_memo.approx_bytes());
                    }
                }
                if let Some(t0) = task_t0 {
                    let d = t0.elapsed();
                    out.busy_ns = out.busy_ns.saturating_add(duration_ns(d));
                    hists.task_expand.record(d);
                    // A progress beat on the first task and every
                    // 32nd after: the beat timestamps are what
                    // obs_analyze turns into the per-worker
                    // utilization timeline.
                    let done = out.tasks.len();
                    if done == 1 || done.is_multiple_of(32) {
                        let depth = own.len();
                        tracer.emit_with("ws.expand", || {
                            Json::object()
                                .set("worker", me)
                                .set("expanded", done)
                                .set("transitions", out.transitions)
                                .set("deque", depth)
                                .set("steals", out.steals)
                                .set("parks", out.park_count)
                                .set("busy_us", out.busy_ns / 1_000)
                                .set("idle_us", out.idle_ns / 1_000)
                        });
                    }
                }
            }
            out.deque_grows = own.grows();
            out.deque_bytes = own.approx_bytes();
            if traced {
                tracer.emit_with("ws.done", || {
                    Json::object()
                        .set("worker", me)
                        .set("expanded", out.tasks.len())
                        .set("transitions", out.transitions)
                        .set("steals", out.steals)
                        .set("steal_fails", out.steal_fails)
                        .set("local_hits", out.local_hits)
                        .set("max_deque_depth", out.max_deque_depth)
                        .set("idle_spins", out.idle_spins)
                        .set("park_count", out.park_count)
                        .set("parked_us", out.parked_ns / 1_000)
                        .set("deque_grows", out.deque_grows)
                        .set("index_batch_hits", out.index_batch_hits)
                        .set("idle_us", out.idle_ns / 1_000)
                        .set("busy_us", out.busy_ns / 1_000)
                });
            }
            out
        };
        let outs: Vec<WsWorkerOut<P::LocalState>> = if workers == 1 {
            let own = owners.pop().expect("exactly one owner at workers == 1");
            vec![run_worker(0, own)]
        } else {
            std::thread::scope(|s| {
                let run_worker = &run_worker;
                let handles: Vec<_> = owners
                    .into_iter()
                    .enumerate()
                    .map(|(me, own)| s.spawn(move || run_worker(me, own)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("work-stealing worker panicked"))
                    .collect()
            })
        };
        if let Some(err) = first_error.into_inner().expect("error slot poisoned") {
            return Err(err);
        }
        let canon_hits = canon_memo.hits.get();
        // Release the memo's and the deques' shares so assembly can unwrap
        // the Arcs (the stealers are the last handles keeping any
        // unexpanded tasks — aborted runs — alive).
        drop(canon_memo);
        drop(stealers);

        let count = index.len();
        let mut configs: Vec<Option<Configuration<P::LocalState>>> =
            (0..count).map(|_| None).collect();
        if let Some(arc) = initial_shared {
            configs[0] = Some(Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone()));
        }
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); count];
        let mut expanded = vec![false; count];
        let mut expanded_count = 0usize;
        let mut transitions = 0usize;
        let mut dedup_hits = 0usize;
        let mut steals = 0u64;
        let mut steal_fails = 0u64;
        let mut local_hits = 0u64;
        let mut park_count = 0u64;
        let mut deque_grows = 0u64;
        let mut deque_bytes = 0usize;
        let mut index_batch_hits = 0u64;
        let mut memo_l1_hits = 0u64;
        let mut worker_stats: Vec<WorkerStats> = Vec::with_capacity(outs.len());
        for (w, out) in outs.into_iter().enumerate() {
            tracer.emit_with("ws.worker", || {
                Json::object()
                    .set("worker", w)
                    .set("expanded", out.tasks.len())
                    .set("transitions", out.transitions)
                    .set("steals", out.steals)
                    .set("steal_fails", out.steal_fails)
                    .set("local_hits", out.local_hits)
                    .set("max_deque_depth", out.max_deque_depth)
                    .set("idle_spins", out.idle_spins)
                    .set("park_count", out.park_count)
                    .set("parked_us", out.parked_ns / 1_000)
                    .set("deque_grows", out.deque_grows)
                    .set("index_batch_hits", out.index_batch_hits)
                    .set("idle_us", out.idle_ns / 1_000)
                    .set("busy_us", out.busy_ns / 1_000)
            });
            transitions += out.transitions;
            dedup_hits += out.dedup_hits;
            steals += out.steals;
            steal_fails += out.steal_fails;
            local_hits += out.local_hits;
            park_count += out.park_count;
            deque_grows += out.deque_grows;
            deque_bytes += out.deque_bytes;
            index_batch_hits += out.index_batch_hits;
            memo_l1_hits += out.memo_l1_hits;
            worker_stats.push(WorkerStats {
                worker: w,
                expanded: out.tasks.len(),
                transitions: out.transitions,
                steals: out.steals,
                steal_fails: out.steal_fails,
                local_hits: out.local_hits,
                max_deque_depth: out.max_deque_depth,
                idle_spins: out.idle_spins,
                park_count: out.park_count,
                deque_grows: out.deque_grows,
                idle: Duration::from_nanos(out.idle_ns),
                parked: Duration::from_nanos(out.parked_ns),
                busy: Duration::from_nanos(out.busy_ns),
            });
            for (id, arc) in out.discovered {
                configs[id as usize] = Some(Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone()));
            }
            for (id, cfg) in out.discovered_owned {
                configs[id as usize] = Some(cfg);
            }
            for (id, start, len) in out.tasks {
                let start = start as usize;
                edges[id as usize] = out.edge_pool[start..start + len as usize].to_vec();
                expanded[id as usize] = true;
                expanded_count += 1;
            }
        }
        let configs: Vec<Configuration<P::LocalState>> = configs
            .into_iter()
            .map(|c| c.expect("every interned node carries a configuration"))
            .collect();
        let complete = !truncated.load(Ordering::Relaxed);
        // One clock read for both the total and the expand phase: without a
        // barrier the whole run is one expansion phase, and reading the
        // clock twice would make `phases.measured()` exceed `elapsed`.
        let elapsed = started.elapsed();

        let stats = ExploreStats {
            configs: configs.len(),
            expanded: expanded_count,
            transitions,
            dedup_hits,
            distinct_object_states: state_interner.len(),
            distinct_proc_statuses: proc_interner.len(),
            peak_frontier: peak_pending.load(Ordering::Relaxed),
            threads: workers,
            parallel_levels: 0,
            reduced: sym.is_some(),
            elapsed,
            phases: PhaseTimes {
                expand: elapsed,
                merge: Duration::ZERO,
                canonicalize: canon_store.timer.total(),
            },
            memo_hits: memo.hits.get() + memo_l1_hits,
            memo_misses: memo.misses.get(),
            intern_hits: state_interner.hits() + proc_interner.hits(),
            intern_misses: state_interner.misses() + proc_interner.misses(),
            canon_calls: sym.map_or(0, ConfigSymmetry::canon_calls) - canon_calls_before,
            canon_patches: (sym.map_or(0, ConfigSymmetry::canon_fast_hits) - canon_fast_before)
                + canon_hits,
            canon_full: sym.map_or(0, ConfigSymmetry::canon_full_calls) - canon_full_before,
            work_stealing: true,
            steals,
            steal_fails,
            local_hits,
            park_count,
            deque_grows,
            index_batch_hits,
            interner_bytes: state_interner.approx_bytes() + proc_interner.approx_bytes(),
            index_bytes: index.approx_bytes(),
            levels: Vec::new(),
            workers: worker_stats,
            hist: {
                hists.canonicalize.merge(&canon_store.hist);
                hists
            },
        };
        // Final gauge sync: the frontier is drained, and the deque
        // footprint is only known after the owners returned.
        if let Some(live) = live {
            live.frontier_depth.set(0);
            live.mem_interner.set_usize(stats.interner_bytes);
            live.mem_index.set_usize(stats.index_bytes);
            live.mem_deques.set_usize(deque_bytes);
        }
        tracer.emit_with("explore.end", || stats.to_json());
        Ok(ExplorationGraph {
            configs,
            edges,
            expanded,
            complete,
            transitions,
            stats,
        })
    }

    /// Interns every component of `config` into a compact id vector:
    /// object-state ids followed by process-status ids.
    fn compact(
        &self,
        config: &Configuration<P::LocalState>,
        state_interner: &Interner<AnyState>,
        proc_interner: &Interner<ProcStatus<P::LocalState>>,
    ) -> CompactConfig {
        config
            .object_states
            .iter()
            .map(|s| state_interner.intern(s))
            .chain(config.procs.iter().map(|p| proc_interner.intern(p)))
            .collect()
    }

    /// Computes all successors of one configuration by **delta-interning**:
    /// a successor differs from its parent in exactly one object state and
    /// one process status, so its dedup key is the parent's key with two
    /// slots patched — only the two changed components are ever hashed.
    /// Successors whose key pre-probes to an already-indexed node are
    /// reported by index alone; their configuration is never materialized.
    ///
    /// The step itself goes through the [`TransitionMemo`]: on a hit, the
    /// successor id pairs come straight out of the memo and neither the
    /// object specification nor the protocol runs at all.
    #[allow(clippy::too_many_arguments)]
    fn expand_node(
        &self,
        config: &Configuration<P::LocalState>,
        parent_key: &[u32],
        state_interner: &Interner<AnyState>,
        proc_interner: &Interner<ProcStatus<P::LocalState>>,
        memo: &TransitionMemo,
        index: &ShardedIndex,
        sym: Option<SymCtx<'_, '_, P::LocalState>>,
        canon_probe: Option<&CanonProbe>,
    ) -> NodeResult<P::LocalState> {
        let n_obj = config.object_states.len();
        let mut out = Vec::new();
        let mut scratch: Vec<u32> = parent_key.to_vec();
        for (i, status) in config.procs.iter().enumerate() {
            let ProcStatus::Running(local) = status else {
                continue;
            };
            let pid = Pid(i);
            let (obj, op) = self.protocol.pending_op(pid, local);
            // `(pid, running local state)` determines `(obj, op)`, so the
            // triple below pins down the whole step.
            let memo_key = (parent_key[obj.index()], parent_key[n_obj + i], i as u32);
            let pairs = self.step_pairs(
                config,
                pid,
                local,
                obj,
                &op,
                memo_key,
                state_interner,
                proc_interner,
                memo,
            )?;
            for (outcome, &(succ_state, succ_proc)) in pairs.as_slice().iter().enumerate() {
                if let Some((symmetry, canon_memo)) = sym {
                    // Orbit mode: the dedup key is the compacted canonical
                    // representative, reached through the canon memo keyed
                    // by the raw delta-patched key (see `CanonMemo`).
                    scratch.copy_from_slice(parent_key);
                    scratch[obj.index()] = succ_state;
                    scratch[n_obj + pid.index()] = succ_proc;
                    let (key, shared) = match canon_memo.get(&scratch) {
                        Some(entry) => entry,
                        None => {
                            let mut raw = config.clone();
                            raw.object_states[obj.index()] =
                                state_interner.resolve_with(succ_state, Clone::clone);
                            raw.procs[pid.index()] =
                                proc_interner.resolve_with(succ_proc, Clone::clone);
                            let canon = timed_canonicalize(symmetry, &raw, canon_probe);
                            let key = self.compact(&canon, state_interner, proc_interner);
                            let arc = Arc::new(canon);
                            canon_memo
                                .insert(scratch.as_slice().into(), (key.clone(), Arc::clone(&arc)));
                            (key, arc)
                        }
                    };
                    if let Some(t) = index.probe(&key) {
                        out.push(SuccRecord {
                            pid,
                            outcome,
                            key: None,
                            known: Some(t),
                            config: None,
                        });
                    } else {
                        out.push(SuccRecord {
                            pid,
                            outcome,
                            key: Some(key),
                            known: None,
                            config: Some(SuccConfig::Shared(shared)),
                        });
                    }
                    continue;
                }
                // Build the successor key in the scratch buffer; only
                // successors that miss the index allocate a persistent key.
                scratch.copy_from_slice(parent_key);
                scratch[obj.index()] = succ_state;
                scratch[n_obj + pid.index()] = succ_proc;
                if let Some(t) = index.probe(&scratch) {
                    out.push(SuccRecord {
                        pid,
                        outcome,
                        key: None,
                        known: Some(t),
                        config: None,
                    });
                } else {
                    // `resolve_with` clones the value under the shard's read
                    // lock, skipping the Arc refcount round-trip `resolve`
                    // would pay on this hot path.
                    let mut next = config.clone();
                    next.object_states[obj.index()] =
                        state_interner.resolve_with(succ_state, Clone::clone);
                    next.procs[pid.index()] = proc_interner.resolve_with(succ_proc, Clone::clone);
                    out.push(SuccRecord {
                        pid,
                        outcome,
                        key: Some(scratch.as_slice().into()),
                        known: None,
                        config: Some(SuccConfig::Owned(next)),
                    });
                }
            }
        }
        Ok(out)
    }

    /// The interned outcome pairs of one step, through the memo: on a hit,
    /// neither the object specification nor the protocol runs.
    #[allow(clippy::too_many_arguments)]
    fn step_pairs(
        &self,
        config: &Configuration<P::LocalState>,
        pid: Pid,
        local: &P::LocalState,
        obj: ObjId,
        op: &Op,
        memo_key: (u32, u32, u32),
        state_interner: &Interner<AnyState>,
        proc_interner: &Interner<ProcStatus<P::LocalState>>,
        memo: &TransitionMemo,
    ) -> Result<Arc<Pairs>, RuntimeError> {
        if let Some(hit) = memo.get(memo_key) {
            return Ok(hit);
        }
        let computed =
            self.compute_pairs(config, pid, local, obj, op, state_interner, proc_interner)?;
        Ok(memo.insert(memo_key, computed))
    }

    /// The raw (un-memoized) step: run the specification and the protocol,
    /// intern the results. Generic over the intern handle so the fused
    /// single-threaded path gets the lock-free `&mut` interners while
    /// parallel workers share the locking `&` ones.
    #[allow(clippy::too_many_arguments)]
    fn compute_pairs<SI, PI>(
        &self,
        config: &Configuration<P::LocalState>,
        pid: Pid,
        local: &P::LocalState,
        obj: ObjId,
        op: &Op,
        mut state_interner: SI,
        mut proc_interner: PI,
    ) -> Result<Pairs, RuntimeError>
    where
        SI: InternSink<AnyState>,
        PI: InternSink<ProcStatus<P::LocalState>>,
    {
        let spec = self
            .objects
            .get(obj.index())
            .ok_or(RuntimeError::ObjIdOutOfRange {
                obj,
                len: self.objects.len(),
            })?;
        let mut outs = spec
            .outcomes(&config.object_states[obj.index()], op)?
            .into_vec();
        let mut pair = |response, obj_state: &AnyState| {
            let status = match self.protocol.on_response(pid, local, response) {
                Step::Continue(s) => ProcStatus::Running(s),
                Step::Decide(v) => ProcStatus::Decided(v),
                Step::Abort => ProcStatus::Aborted,
                Step::Halt => ProcStatus::Halted,
            };
            (state_interner.put(obj_state), proc_interner.put(&status))
        };
        if outs.len() == 1 {
            let (response, obj_state) = outs.pop().expect("length checked");
            return Ok(Pairs::One(pair(response, &obj_state)));
        }
        Ok(Pairs::Many(
            outs.into_iter()
                .map(|(response, obj_state)| pair(response, &obj_state))
                .collect(),
        ))
    }

    /// Expands one level on `threads` scoped workers pulling node positions
    /// from a shared atomic counter. Results land in per-position slots, so
    /// scheduling order is invisible to the merge.
    #[allow(clippy::too_many_arguments)]
    fn expand_level_parallel(
        &self,
        work: &[WorkItem<'_, P::LocalState>],
        threads: usize,
        state_interner: &Interner<AnyState>,
        proc_interner: &Interner<ProcStatus<P::LocalState>>,
        memo: &TransitionMemo,
        index: &ShardedIndex,
        sym: Option<SymCtx<'_, '_, P::LocalState>>,
        canon_probe: Option<&CanonProbe>,
    ) -> Vec<NodeResult<P::LocalState>> {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<NodeResult<P::LocalState>>>> =
            work.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let pos = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(_, config, key)) = work.get(pos) else {
                        break;
                    };
                    let result = self.expand_node(
                        config,
                        key,
                        state_interner,
                        proc_interner,
                        memo,
                        index,
                        sym,
                        canon_probe,
                    );
                    *slots[pos].lock().expect("expansion slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("expansion slot poisoned")
                    .expect("every position was claimed by a worker")
            })
            .collect()
    }
}

/// The result of replaying one chosen step via [`Explorer::step`]: the
/// successor configuration plus the object-level event that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepRecord<L> {
    /// The successor configuration.
    pub config: Configuration<L>,
    /// The object the operation was applied to.
    pub obj: ObjId,
    /// The operation taken.
    pub op: Op,
    /// The response the chosen outcome returned.
    pub response: Value,
}

/// A fluent, configured exploration run: the single front door to the
/// engine.
///
/// Build one with [`Explorer::exploration`] (or [`Exploration::builder`]),
/// chain the knobs you need, then [`Exploration::run`]:
///
/// ```ignore
/// let graph = explorer
///     .exploration()
///     .from(config)                 // default: the initial configuration
///     .limits(Limits::new(50_000))  // default: Limits::default()
///     .threads(1)                   // default: auto
///     .on_progress(|l| eprintln!("{} configs", l.width))
///     .run()?;
/// ```
#[must_use = "an Exploration does nothing until .run() is called"]
pub struct Exploration<'e, 'a, P: Protocol> {
    explorer: &'e Explorer<'a, P>,
    from: Option<Configuration<P::LocalState>>,
    options: ExploreOptions,
    on_progress: Option<ProgressCallback<'e>>,
    symmetry: Option<ConfigSymmetry<'a, P::LocalState>>,
    tracer: Option<Tracer>,
    strategy: Strategy,
    registry: Option<Registry>,
    progress_every: Option<Duration>,
}

/// What a `check_*` terminal (see [`crate::verdict`]) needs from a
/// consumed builder: the graph is only built for the exhaustive strategy,
/// and the symmetry handle survives the run so reduced-graph violations
/// can be de-canonicalized.
pub(crate) struct CheckParts<'e, 'a, P: Protocol> {
    pub explorer: &'e Explorer<'a, P>,
    pub tracer: Tracer,
    pub strategy: Strategy,
    pub symmetry: Option<ConfigSymmetry<'a, P::LocalState>>,
    pub graph: Option<Result<ExplorationGraph<P::LocalState>, RuntimeError>>,
    /// Live-metrics handles, present when the builder opted into a
    /// registry or progress streaming. Exhaustive strategies consume them
    /// inside [`Exploration::run_for_check`]; sampling hands them to the
    /// verdict layer, whose sweep does the actual work.
    pub live: Option<LiveMetrics>,
    /// The builder's progress cadence, for strategies (sampling) whose
    /// work runs after `run_for_check` returns.
    pub progress_every: Option<Duration>,
}

impl<'e, 'a, P: Protocol> Exploration<'e, 'a, P> {
    /// Starts a builder over `explorer` with default options: the initial
    /// configuration, [`Limits::default`], automatic thread count, no
    /// progress callback.
    pub fn builder(explorer: &'e Explorer<'a, P>) -> Self {
        Exploration {
            explorer,
            from: None,
            options: ExploreOptions::default(),
            on_progress: None,
            symmetry: None,
            tracer: None,
            strategy: Strategy::default(),
            registry: explorer.registry.clone(),
            progress_every: None,
        }
    }

    /// Selects how the `check_*` terminals quantify over executions (see
    /// [`Strategy`]). [`Exploration::run`] always explores exhaustively —
    /// a graph of sampled runs would be a contradiction in terms — so this
    /// only affects the checking terminals.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Shorthand for `.strategy(Strategy::Sample(config))`: the `check_*`
    /// terminals run a seeded sampling sweep instead of exploring.
    ///
    /// ```ignore
    /// let verdict = explorer
    ///     .exploration()
    ///     .sample(SampleConfig { runs: 10_000, ..SampleConfig::default() })
    ///     .check_consensus(&inputs);
    /// match verdict.outcome {
    ///     Outcome::HoldsSampled { confidence, .. } => println!("p(viol) < {}", 1.0 - confidence),
    ///     Outcome::Violated(_) => println!("{}", verdict.describe()), // witness replays the seed
    ///     _ => unreachable!(),
    /// }
    /// ```
    pub fn sample(self, config: SampleConfig) -> Self {
        self.strategy(Strategy::Sample(config))
    }

    /// Sets the resource limits (see [`Limits`]).
    pub fn limits(mut self, limits: Limits) -> Self {
        self.options.limits = limits;
        self
    }

    /// Caps the number of configurations to expand — shorthand for
    /// `.limits(Limits::new(max_configs))`.
    pub fn max_configs(mut self, max_configs: usize) -> Self {
        self.options.limits = Limits::new(max_configs);
        self
    }

    /// Sets the worker thread count (`0` = auto; see
    /// [`ExploreOptions::threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Replaces both limits and thread count with a prebuilt
    /// [`ExploreOptions`].
    pub fn options(mut self, options: ExploreOptions) -> Self {
        self.options = options;
        self
    }

    /// Starts the search from `initial` instead of the protocol's initial
    /// configuration.
    pub fn from(mut self, initial: Configuration<P::LocalState>) -> Self {
        self.from = Some(initial);
        self
    }

    /// Bypasses the adaptive parallel gate (see
    /// [`ExploreOptions::force_parallel`]): every level of a multi-threaded
    /// run takes the parallel path. For tests and benchmarks of the
    /// parallel machinery.
    pub fn force_parallel(mut self) -> Self {
        self.options.force_parallel = true;
        self
    }

    /// Enables symmetry reduction: the graph's nodes become canonical orbit
    /// representatives under the protocol's declared pid symmetry
    /// ([`lbsa_runtime::process::Symmetry`]), shrinking the explored state
    /// space by up to the symmetry group's order. No-op when the declared
    /// group is trivial (all pid classes distinct).
    ///
    /// The resulting graph's node set is a system of orbit representatives,
    /// not the raw reachable set: checker predicates are orbit-invariant
    /// (see [`crate::symmetry`]), and witnesses extracted from a reduced
    /// graph must be de-canonicalized through
    /// [`crate::symmetry::Concretizer`] before replay on the raw system —
    /// the `*_reduced` entry points in [`crate::verdict`] do exactly that.
    pub fn symmetric(mut self) -> Self
    where
        P: Symmetry,
        P::LocalState: Ord,
    {
        let sym = ConfigSymmetry::of(self.explorer.protocol);
        self.symmetry = if sym.is_trivial() { None } else { Some(sym) };
        self
    }

    /// Selects the frontier discipline (see [`Frontier`]).
    ///
    /// **Mode contract.** Both modes explore the same reachable set and
    /// yield equal [`ExploreStats`] aggregates (`configs`, `expanded`,
    /// `transitions`, `dedup_hits`, distinct-value counts) on complete
    /// runs, so every checker verdict agrees between them.
    /// [`Frontier::Deterministic`] additionally guarantees byte-identical
    /// graphs — same node indices, same edge targets — across thread
    /// counts; [`Frontier::WorkStealing`] assigns node indices in
    /// discovery order, which depends on scheduling, and ignores
    /// `on_progress` (there are no levels to report). Truncated
    /// work-stealing runs cut the space at a scheduling-dependent
    /// boundary, so only complete runs are comparable across modes.
    pub fn frontier(mut self, frontier: Frontier) -> Self {
        self.options.frontier = frontier;
        self
    }

    /// Registers a callback invoked after each BFS level is merged, with
    /// that level's [`LevelStats`] (which carries the level's BFS index in
    /// [`LevelStats::level`]) — for progress reporting on long runs.
    pub fn on_progress(mut self, callback: impl FnMut(&LevelStats) + 'e) -> Self {
        self.on_progress = Some(Box::new(callback));
        self
    }

    /// Attaches a [`Tracer`] for this run only, overriding whatever the
    /// explorer carries ([`Explorer::with_trace`]): the engine emits
    /// `explore.begin`/`pargate`/`level`/`explore.end` phase events through
    /// it, and per-call canonicalization timing is switched on. Build one
    /// over any [`lbsa_support::obs::TraceSink`]:
    ///
    /// ```ignore
    /// let graph = explorer
    ///     .exploration()
    ///     .trace(Tracer::new(StderrSink))
    ///     .run()?;
    /// ```
    pub fn trace(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attaches a live-metrics [`Registry`]: the run registers its
    /// counters and gauges (`explore.configs`, `explore.frontier_depth`,
    /// `mem.interner_bytes`, …) under dotted names and keeps them current
    /// *while the engine runs*, instead of only materializing
    /// [`ExploreStats`] at the end. Snapshot it from another thread with
    /// [`Registry::snapshot`] or render it with
    /// [`Registry::render_prometheus`] at any point during or after the
    /// run. Without this (or [`Exploration::progress_every`]) the engines
    /// skip every live update — the disabled path is one branch per level
    /// or per task.
    pub fn registry(mut self, registry: Registry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Streams in-flight progress: a background watcher thread samples
    /// the live metrics every `period` and emits a `progress` trace event
    /// — instantaneous and EMA configs/sec, frontier depth, worker
    /// utilization, an ETA estimate, and memory gauges — through the
    /// run's tracer, for all three strategies. A final event (with
    /// `"final": true`) is emitted at completion, so even runs shorter
    /// than one period produce at least one. Requires an enabled tracer
    /// ([`Exploration::trace`] or [`Explorer::with_trace`]); without one
    /// there is nowhere to stream and no watcher is spawned.
    pub fn progress_every(mut self, period: Duration) -> Self {
        self.progress_every = Some(period);
        self
    }

    /// The live handles this run should update, if any: an explicit
    /// registry, or a private one when only progress streaming was
    /// requested.
    fn live_metrics(&self) -> Option<LiveMetrics> {
        match (&self.registry, self.progress_every) {
            (Some(registry), _) => Some(LiveMetrics::register(registry)),
            (None, Some(_)) => Some(LiveMetrics::register(&Registry::new())),
            (None, None) => None,
        }
    }

    /// Runs the exploration and returns the execution graph.
    ///
    /// # Errors
    ///
    /// Propagates step errors (these indicate protocol bugs, not explored
    /// behaviours). When several nodes of one level fail, the error of the
    /// earliest node in frontier order is returned — the same error a
    /// sequential exploration reports.
    pub fn run(self) -> Result<ExplorationGraph<P::LocalState>, RuntimeError> {
        let live = self.live_metrics();
        let initial = self.from.unwrap_or_else(|| self.explorer.initial_config());
        let tracer = self.tracer.as_ref().unwrap_or(&self.explorer.tracer);
        let model = match self.options.frontier {
            Frontier::Deterministic => EtaModel::LevelSync,
            Frontier::WorkStealing => EtaModel::WorkStealing,
        };
        let watcher = match (self.progress_every, &live) {
            (Some(period), Some(live)) if tracer.enabled() => Some(ProgressWatcher::spawn(
                live.clone(),
                tracer.clone(),
                period,
                model,
            )),
            _ => None,
        };
        let result = match self.options.frontier {
            Frontier::Deterministic => self.explorer.run_engine(
                initial,
                self.options,
                self.on_progress,
                self.symmetry.as_ref(),
                tracer,
                live.as_ref(),
            ),
            Frontier::WorkStealing => self.explorer.run_engine_ws(
                initial,
                self.options,
                self.symmetry.as_ref(),
                tracer,
                live.as_ref(),
            ),
        };
        if let (Some(live), Ok(graph)) = (&live, &result) {
            live.mem_graph.set_usize(graph.approx_bytes());
        }
        if let Some(watcher) = watcher {
            watcher.finish();
        }
        result
    }

    /// Consumes the builder for a `check_*` terminal: runs the engine when
    /// the strategy is exhaustive (sampling builds no graph) and hands the
    /// verdict layer the pieces [`run`](Exploration::run) would otherwise
    /// drop — the effective tracer and the symmetry handle.
    pub(crate) fn run_for_check(mut self) -> CheckParts<'e, 'a, P> {
        let explorer = self.explorer;
        let tracer = self
            .tracer
            .take()
            .unwrap_or_else(|| explorer.tracer.clone());
        let symmetry = self.symmetry.take();
        let live = self.live_metrics();
        let progress_every = self.progress_every;
        let graph = match self.strategy {
            // Sampling runs inside the verdict layer — the live handles
            // and cadence ride along in the returned parts.
            Strategy::Sample(_) => None,
            Strategy::Exhaustive => {
                let initial = self
                    .from
                    .take()
                    .unwrap_or_else(|| explorer.initial_config());
                let model = match self.options.frontier {
                    Frontier::Deterministic => EtaModel::LevelSync,
                    Frontier::WorkStealing => EtaModel::WorkStealing,
                };
                let watcher =
                    match (progress_every, &live) {
                        (Some(period), Some(live)) if tracer.enabled() => Some(
                            ProgressWatcher::spawn(live.clone(), tracer.clone(), period, model),
                        ),
                        _ => None,
                    };
                let result = match self.options.frontier {
                    Frontier::Deterministic => explorer.run_engine(
                        initial,
                        self.options,
                        self.on_progress.take(),
                        symmetry.as_ref(),
                        &tracer,
                        live.as_ref(),
                    ),
                    Frontier::WorkStealing => explorer.run_engine_ws(
                        initial,
                        self.options,
                        symmetry.as_ref(),
                        &tracer,
                        live.as_ref(),
                    ),
                };
                if let (Some(live), Ok(graph)) = (&live, &result) {
                    live.mem_graph.set_usize(graph.approx_bytes());
                }
                if let Some(watcher) = watcher {
                    watcher.finish();
                }
                Some(result)
            }
        };
        CheckParts {
            explorer,
            tracer,
            strategy: self.strategy,
            symmetry,
            graph,
            live,
            progress_every,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::{ObjId, Op, Value};

    /// Two processes propose their pid to a consensus object and decide.
    #[derive(Debug)]
    struct RaceConsensus {
        n: usize,
    }

    impl Protocol for RaceConsensus {
        type LocalState = ();

        fn num_processes(&self) -> usize {
            self.n
        }

        fn init(&self, _pid: Pid) {}

        fn pending_op(&self, pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Propose(Value::Int(pid.index() as i64)))
        }

        fn on_response(&self, _pid: Pid, _s: &(), resp: Value) -> Step<()> {
            Step::Decide(resp)
        }
    }

    /// One process proposes to a 2-SA object repeatedly, never deciding —
    /// an intentionally cyclic protocol.
    #[derive(Debug)]
    struct ForeverProposer;

    impl Protocol for ForeverProposer {
        type LocalState = ();

        fn num_processes(&self) -> usize {
            1
        }

        fn init(&self, _pid: Pid) {}

        fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Propose(Value::Int(1)))
        }

        fn on_response(&self, _pid: Pid, _s: &(), _resp: Value) -> Step<()> {
            Step::Continue(())
        }
    }

    #[test]
    fn race_consensus_graph_shape() {
        let p = RaceConsensus { n: 2 };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let g = Explorer::new(&p, &objects).exploration().run().unwrap();
        assert!(g.complete);
        // Both orders of the two proposals, converging to terminal configs
        // where both decided the first proposer's value.
        for t in g.terminal_indices() {
            let c = &g.configs[t];
            assert!(c.all_decided());
            assert_eq!(c.distinct_decisions().len(), 1);
        }
        // Exactly two distinct terminal outcomes: decided-0 and decided-1.
        let outcomes: std::collections::BTreeSet<Vec<Value>> = g
            .terminal_indices()
            .map(|t| g.configs[t].distinct_decisions())
            .collect();
        assert_eq!(outcomes.len(), 2);
        assert!(!g.has_cycle());
    }

    #[test]
    fn every_interleaving_is_covered() {
        // With n processes taking exactly one step each on a deterministic
        // object, there are n! interleavings but far fewer distinct
        // configurations; the graph must count transitions, not paths.
        let p = RaceConsensus { n: 3 };
        let objects = vec![AnyObject::consensus(3).unwrap()];
        let g = Explorer::new(&p, &objects).exploration().run().unwrap();
        assert!(g.complete);
        assert!(g.transitions >= 6);
        // All terminals agree on one value.
        for t in g.terminal_indices() {
            assert_eq!(g.configs[t].distinct_decisions().len(), 1);
        }
    }

    #[test]
    fn cyclic_protocol_is_detected() {
        let p = ForeverProposer;
        let objects = vec![AnyObject::strong_sa()];
        let g = Explorer::new(&p, &objects).exploration().run().unwrap();
        assert!(
            g.complete,
            "state space is finite despite the infinite execution"
        );
        assert!(g.has_cycle());
        let on_cycle = g.find_cycle().unwrap();
        assert!(g.path_to(on_cycle).is_some());
    }

    #[test]
    fn truncation_is_reported() {
        let p = RaceConsensus { n: 3 };
        let objects = vec![AnyObject::consensus(3).unwrap()];
        let g = Explorer::new(&p, &objects)
            .exploration()
            .max_configs(2)
            .run()
            .unwrap();
        assert!(!g.complete);
        assert!(g.expanded.iter().filter(|&&e| e).count() <= 2);
    }

    #[test]
    fn budget_counts_expanded_configs_exactly() {
        let p = RaceConsensus { n: 3 };
        let objects = vec![AnyObject::consensus(3).unwrap()];
        let full = Explorer::new(&p, &objects).exploration().run().unwrap();
        assert!(full.complete);
        let total = full.len();
        for budget in 1..total + 2 {
            let g = Explorer::new(&p, &objects)
                .exploration()
                .max_configs(budget)
                .run()
                .unwrap();
            let expanded = g.expanded.iter().filter(|&&e| e).count();
            assert_eq!(
                expanded,
                budget.min(total),
                "budget {budget} must expand exactly min(budget, reachable)"
            );
            assert_eq!(g.stats.expanded, expanded);
            assert_eq!(g.complete, budget >= total);
            // Truncated graphs expand a prefix of the BFS order: every
            // expanded node index is below every unexpanded one that has
            // no edges recorded.
            if let Some(first_unexpanded) = g.expanded.iter().position(|&e| !e) {
                assert!(g.expanded[..first_unexpanded].iter().all(|&e| e));
                assert!(g.expanded[first_unexpanded..].iter().all(|&e| !e));
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_the_graph() {
        let p = RaceConsensus { n: 4 };
        let objects = vec![AnyObject::consensus(4).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let sequential = ex.exploration().threads(1).run().unwrap();
        for threads in [2, 4, 8] {
            // Force the parallel path so the two-phase merge is actually
            // exercised regardless of the adaptive gate's verdict on this
            // machine.
            let parallel = ex
                .exploration()
                .threads(threads)
                .force_parallel()
                .run()
                .unwrap();
            assert!(
                sequential.same_structure(&parallel),
                "graph differs at {threads} threads"
            );
            assert_eq!(sequential.structural_digest(), parallel.structural_digest());
            assert_eq!(parallel.stats.threads, threads);
            assert_eq!(parallel.stats.parallel_levels, parallel.stats.levels.len());
            // The adaptive gate may legitimately keep everything sequential
            // (e.g. on a single-core machine); the graph must still match.
            let gated = ex.exploration().threads(threads).run().unwrap();
            assert!(sequential.same_structure(&gated));
        }
    }

    #[test]
    fn thread_count_does_not_change_truncated_graphs() {
        let p = RaceConsensus { n: 4 };
        let objects = vec![AnyObject::consensus(4).unwrap()];
        let ex = Explorer::new(&p, &objects);
        for budget in [1, 3, 7, 20] {
            let seq = ex
                .exploration()
                .max_configs(budget)
                .threads(1)
                .run()
                .unwrap();
            let par = ex
                .exploration()
                .max_configs(budget)
                .threads(4)
                .force_parallel()
                .run()
                .unwrap();
            assert!(
                seq.same_structure(&par),
                "truncated graph differs at budget {budget}"
            );
        }
    }

    #[test]
    fn cyclic_graphs_are_thread_count_independent() {
        let p = ForeverProposer;
        let objects = vec![AnyObject::strong_sa()];
        let ex = Explorer::new(&p, &objects);
        let seq = ex.exploration().threads(1).run().unwrap();
        let par = ex.exploration().threads(4).force_parallel().run().unwrap();
        assert!(seq.same_structure(&par));
        assert!(par.has_cycle());
    }

    #[test]
    fn multithreaded_runs_report_underparallelization() {
        // A workload this tiny never crosses the parallel threshold: a
        // threads(8) run must say so instead of implying it parallelized.
        let p = RaceConsensus { n: 2 };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let mut saw_parallel_level = false;
        let g = Explorer::new(&p, &objects)
            .exploration()
            .threads(8)
            .on_progress(|level| saw_parallel_level |= level.parallel)
            .run()
            .unwrap();
        assert_eq!(g.stats.parallel_levels, 0);
        assert!(!saw_parallel_level);
        assert!(g.stats.underparallelized());
        assert!(g.stats.summary().contains("below parallel threshold"));
    }

    #[test]
    fn stats_are_consistent_with_the_graph() {
        let p = RaceConsensus { n: 3 };
        let objects = vec![AnyObject::consensus(3).unwrap()];
        let g = Explorer::new(&p, &objects).exploration().run().unwrap();
        assert_eq!(g.stats.configs, g.len());
        assert_eq!(g.stats.transitions, g.transitions);
        assert_eq!(g.stats.expanded, g.expanded.iter().filter(|&&e| e).count());
        // Every transition either discovered a new node or deduplicated.
        assert_eq!(g.stats.dedup_hits, g.transitions - (g.len() - 1));
        assert_eq!(
            g.stats.levels.iter().map(|l| l.width).sum::<usize>(),
            g.stats.expanded
        );
        assert_eq!(
            g.stats.levels.iter().map(|l| l.transitions).sum::<usize>(),
            g.transitions
        );
        assert!(g.stats.peak_frontier >= 1);
        assert!(g.stats.dedup_rate() >= 0.0 && g.stats.dedup_rate() <= 1.0);
        assert!(!g.is_empty());
    }

    #[test]
    fn auto_thread_count_resolves_positive() {
        let options = ExploreOptions::default();
        assert!(options.resolved_threads() >= 1);
        assert_eq!(
            ExploreOptions::default().with_threads(3).resolved_threads(),
            3
        );
    }

    #[test]
    fn successors_branch_on_object_nondeterminism() {
        // A 2-SA object with two captured values gives two successor
        // configurations for one propose step.
        #[derive(Debug)]
        struct ProposeOnce;
        impl Protocol for ProposeOnce {
            type LocalState = u8;
            fn num_processes(&self) -> usize {
                3
            }
            fn init(&self, _pid: Pid) -> u8 {
                0
            }
            fn pending_op(&self, pid: Pid, _s: &u8) -> (ObjId, Op) {
                (ObjId(0), Op::Propose(Value::Int(pid.index() as i64)))
            }
            fn on_response(&self, _pid: Pid, _s: &u8, resp: Value) -> Step<u8> {
                Step::Decide(resp)
            }
        }
        let p = ProposeOnce;
        let objects = vec![AnyObject::strong_sa()];
        let ex = Explorer::new(&p, &objects);
        let c0 = ex.initial_config();
        let c1 = &ex.successors_of(&c0, Pid(0)).unwrap()[0];
        let c2s = ex.successors_of(c1, Pid(1)).unwrap();
        // STATE = {0}; proposing 1 captures it, then either member may be
        // returned: two branches.
        assert_eq!(c2s.len(), 2);
        let decisions: Vec<_> = c2s.iter().map(|c| c.procs[1].decision().unwrap()).collect();
        assert_eq!(decisions, vec![Value::Int(0), Value::Int(1)]);
    }

    #[test]
    fn stepping_disabled_process_errors() {
        let p = RaceConsensus { n: 2 };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let c0 = ex.initial_config();
        let c1 = &ex.successors_of(&c0, Pid(0)).unwrap()[0];
        assert!(matches!(
            ex.successors_of(c1, Pid(0)),
            Err(RuntimeError::ProcessNotRunning(Pid(0)))
        ));
        assert!(matches!(
            ex.successors_of(&c0, Pid(7)),
            Err(RuntimeError::PidOutOfRange { .. })
        ));
    }

    #[test]
    fn path_reconstruction_reaches_target() {
        let p = RaceConsensus { n: 2 };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let g = ex.exploration().run().unwrap();
        for t in g.terminal_indices() {
            let path = g.path_to(t).expect("terminal reachable from root");
            // Replay the path through successors_of and confirm we land on t.
            let mut cur = g.configs[0].clone();
            for e in &path {
                cur = ex
                    .successors_of(&cur, e.pid)
                    .unwrap()
                    .into_iter()
                    .nth(e.outcome)
                    .unwrap();
            }
            assert_eq!(cur, g.configs[t]);
        }
    }

    #[test]
    fn depths_are_bfs_distances() {
        let p = RaceConsensus { n: 2 };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let g = Explorer::new(&p, &objects).exploration().run().unwrap();
        let depths = g.depths();
        assert_eq!(depths[0], Some(0));
        // Every edge target is at most one deeper than its source.
        for (i, edges) in g.edges.iter().enumerate() {
            for e in edges {
                let (di, dt) = (depths[i].unwrap(), depths[e.target].unwrap());
                assert!(dt <= di + 1);
            }
        }
        // Terminal configurations of this two-step protocol sit at depth 2.
        for t in g.terminal_indices() {
            assert_eq!(depths[t], Some(2));
        }
    }

    #[test]
    fn builder_from_matches_explicit_initial() {
        let p = RaceConsensus { n: 2 };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let c0 = ex.initial_config();
        let c1 = ex.successors_of(&c0, Pid(0)).unwrap().remove(0);
        let g = ex.exploration().from(c1.clone()).run().unwrap();
        assert_eq!(g.configs[0], c1);
        assert!(g.complete);
    }

    #[test]
    fn on_progress_sees_every_level() {
        let p = RaceConsensus { n: 3 };
        let objects = vec![AnyObject::consensus(3).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let mut widths = Vec::new();
        let g = ex
            .exploration()
            .threads(1)
            .on_progress(|level| widths.push(level.width))
            .run()
            .unwrap();
        assert_eq!(
            widths,
            g.stats.levels.iter().map(|l| l.width).collect::<Vec<_>>()
        );
        assert_eq!(widths.iter().sum::<usize>(), g.stats.expanded);
    }

    #[test]
    fn builder_forms_produce_the_same_graph() {
        let p = RaceConsensus { n: 2 };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let reference = ex.exploration().run().unwrap();
        assert!(
            reference.same_structure(&ex.exploration().limits(Limits::default()).run().unwrap())
        );
        assert!(reference.same_structure(
            &ex.exploration()
                .options(ExploreOptions::default())
                .run()
                .unwrap()
        ));
        assert!(reference.same_structure(
            &ex.exploration()
                .from(ex.initial_config())
                .limits(Limits::default())
                .run()
                .unwrap()
        ));
        assert!(reference.same_structure(
            &ex.exploration()
                .from(ex.initial_config())
                .options(ExploreOptions::default())
                .run()
                .unwrap()
        ));
    }

    #[test]
    fn step_replays_the_chosen_successor() {
        let p = RaceConsensus { n: 2 };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let c0 = ex.initial_config();
        let succs = ex.successors_of(&c0, Pid(1)).unwrap();
        for (i, succ) in succs.iter().enumerate() {
            let rec = ex.step(&c0, Pid(1), i).unwrap();
            assert_eq!(&rec.config, succ);
            assert_eq!(rec.obj, ObjId(0));
            assert_eq!(rec.op, Op::Propose(Value::Int(1)));
        }
        assert!(matches!(
            ex.step(&c0, Pid(1), succs.len()),
            Err(RuntimeError::OutcomeOutOfRange { .. })
        ));
        assert!(matches!(
            ex.step(&c0, Pid(9), 0),
            Err(RuntimeError::PidOutOfRange { .. })
        ));
    }

    /// A fully symmetric race: every process proposes the *same* value to a
    /// consensus object and decides the response. All pids are
    /// interchangeable, so the symmetry group is the full S_n.
    #[derive(Debug)]
    struct SymmetricRace {
        n: usize,
    }

    impl Protocol for SymmetricRace {
        type LocalState = ();

        fn num_processes(&self) -> usize {
            self.n
        }
        fn init(&self, _pid: Pid) {}
        fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Propose(Value::Int(7)))
        }
        fn on_response(&self, _pid: Pid, _s: &(), resp: Value) -> Step<()> {
            Step::Decide(resp)
        }
    }

    impl Symmetry for SymmetricRace {
        fn pid_classes(&self) -> Vec<u32> {
            vec![0; self.n]
        }
    }

    #[test]
    fn symmetric_exploration_shrinks_the_graph() {
        let p = SymmetricRace { n: 4 };
        let objects = vec![AnyObject::consensus(4).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let raw = ex.exploration().run().unwrap();
        let reduced = ex.exploration().symmetric().run().unwrap();
        assert!(raw.complete && reduced.complete);
        assert!(!raw.stats.reduced);
        assert!(reduced.stats.reduced);
        assert!(
            reduced.len() < raw.len(),
            "reduction must shrink the graph: raw {} vs reduced {}",
            raw.len(),
            reduced.len()
        );
        // Identical verdict-relevant structure: the same set of terminal
        // decision multisets is reachable in both graphs.
        let outcomes = |g: &ExplorationGraph<()>| -> std::collections::BTreeSet<Vec<Value>> {
            g.terminal_indices()
                .map(|t| {
                    let mut ds: Vec<Value> = g.configs[t]
                        .decisions()
                        .into_iter()
                        .map(|d| d.expect("all decided"))
                        .collect();
                    ds.sort();
                    ds
                })
                .collect()
        };
        assert_eq!(outcomes(&raw), outcomes(&reduced));
    }

    #[test]
    fn reduced_graphs_are_thread_count_independent() {
        let p = SymmetricRace { n: 4 };
        let objects = vec![AnyObject::consensus(4).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let seq = ex.exploration().symmetric().threads(1).run().unwrap();
        for threads in [2, 4] {
            let par = ex
                .exploration()
                .symmetric()
                .threads(threads)
                .force_parallel()
                .run()
                .unwrap();
            assert!(
                seq.same_structure(&par),
                "reduced graph differs at {threads} threads"
            );
        }
    }

    #[test]
    fn trivial_symmetry_changes_nothing() {
        // RaceConsensus proposes pid-dependent values, so declaring all
        // pids distinct yields the trivial group — .symmetric() must be a
        // no-op, bit for bit.
        #[derive(Debug)]
        struct AsymmetricRace(RaceConsensus);
        impl Protocol for AsymmetricRace {
            type LocalState = ();
            fn num_processes(&self) -> usize {
                self.0.num_processes()
            }
            fn init(&self, pid: Pid) {
                self.0.init(pid);
            }
            fn pending_op(&self, pid: Pid, s: &()) -> (ObjId, Op) {
                self.0.pending_op(pid, s)
            }
            fn on_response(&self, pid: Pid, s: &(), resp: Value) -> Step<()> {
                self.0.on_response(pid, s, resp)
            }
        }
        impl Symmetry for AsymmetricRace {
            fn pid_classes(&self) -> Vec<u32> {
                (0..self.num_processes() as u32).collect()
            }
        }
        let p = AsymmetricRace(RaceConsensus { n: 3 });
        let objects = vec![AnyObject::consensus(3).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let raw = ex.exploration().run().unwrap();
        let reduced = ex.exploration().symmetric().run().unwrap();
        assert!(raw.same_structure(&reduced));
        assert!(
            !reduced.stats.reduced,
            "trivial group must disable reduction"
        );
    }

    #[test]
    fn level_stats_carry_their_bfs_index() {
        let p = RaceConsensus { n: 3 };
        let objects = vec![AnyObject::consensus(3).unwrap()];
        let mut seen = Vec::new();
        let g = Explorer::new(&p, &objects)
            .exploration()
            .on_progress(|l| seen.push(l.level))
            .run()
            .unwrap();
        assert_eq!(seen, (0..g.stats.levels.len()).collect::<Vec<_>>());
        for (i, l) in g.stats.levels.iter().enumerate() {
            assert_eq!(l.level, i);
        }
    }

    #[test]
    fn phase_breakdown_is_bounded_by_elapsed() {
        let p = RaceConsensus { n: 4 };
        let objects = vec![AnyObject::consensus(4).unwrap()];
        let g = Explorer::new(&p, &objects)
            .exploration()
            .threads(2)
            .force_parallel()
            .run()
            .unwrap();
        assert!(g.stats.phases.measured() <= g.stats.elapsed);
        let expand: Duration = g.stats.levels.iter().map(|l| l.expand).sum();
        let merge: Duration = g.stats.levels.iter().map(|l| l.merge).sum();
        assert_eq!(g.stats.phases.expand, expand);
        assert_eq!(g.stats.phases.merge, merge);
        for l in &g.stats.levels {
            assert!(l.expand + l.merge <= l.elapsed);
        }
        // Untraced runs never pay for per-call canonicalization clocks.
        assert_eq!(g.stats.phases.canonicalize, Duration::ZERO);
    }

    #[test]
    fn engine_counters_are_consistent() {
        let p = RaceConsensus { n: 3 };
        let objects = vec![AnyObject::consensus(3).unwrap()];
        let g = Explorer::new(&p, &objects).exploration().run().unwrap();
        // Every interner miss created one distinct value.
        assert_eq!(
            g.stats.intern_misses,
            (g.stats.distinct_object_states + g.stats.distinct_proc_statuses) as u64
        );
        assert!(g.stats.memo_hits + g.stats.memo_misses > 0);
        assert!(g.stats.memo_hit_rate() >= 0.0 && g.stats.memo_hit_rate() <= 1.0);
        // Raw exploration never canonicalizes.
        assert_eq!(g.stats.canon_calls, 0);

        let p = SymmetricRace { n: 3 };
        let objects = vec![AnyObject::consensus(3).unwrap()];
        let reduced = Explorer::new(&p, &objects)
            .exploration()
            .symmetric()
            .run()
            .unwrap();
        assert!(reduced.stats.canon_calls > 0);
    }

    #[test]
    fn traced_runs_emit_phase_events() {
        use lbsa_support::obs::MemorySink;
        let p = RaceConsensus { n: 3 };
        let objects = vec![AnyObject::consensus(3).unwrap()];
        let sink = MemorySink::new();
        let g = Explorer::new(&p, &objects)
            .exploration()
            .trace(Tracer::new(sink.clone()))
            .run()
            .unwrap();
        let names = sink.names();
        assert_eq!(names.first(), Some(&"explore.begin"));
        assert_eq!(names.last(), Some(&"explore.end"));
        assert_eq!(
            names.iter().filter(|n| **n == "level").count(),
            g.stats.levels.len()
        );
        assert_eq!(
            names.iter().filter(|n| **n == "pargate").count(),
            g.stats.levels.len()
        );
        // The end event embeds the stats document.
        let end = sink.events().pop().unwrap();
        assert_eq!(
            end.fields.get("configs").and_then(Json::as_i64),
            Some(g.stats.configs as i64)
        );
        assert_eq!(
            end.fields.get("transitions").and_then(Json::as_i64),
            Some(g.stats.transitions as i64)
        );
    }

    #[test]
    fn explorer_tracer_is_inherited_and_overridable() {
        use lbsa_support::obs::MemorySink;
        let p = RaceConsensus { n: 2 };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let sink = MemorySink::new();
        let ex = Explorer::new(&p, &objects).with_trace(Tracer::new(sink.clone()));
        assert!(ex.tracer().enabled());
        ex.exploration().run().unwrap();
        let inherited = sink.events().len();
        assert!(inherited > 0, "builder must inherit the explorer's tracer");
        // A per-run override redirects events away from the explorer's sink.
        let override_sink = MemorySink::new();
        ex.exploration()
            .trace(Tracer::new(override_sink.clone()))
            .run()
            .unwrap();
        assert_eq!(sink.events().len(), inherited);
        assert!(!override_sink.events().is_empty());
    }

    #[test]
    fn traced_reduced_runs_clock_canonicalization() {
        use lbsa_support::obs::MemorySink;
        let p = SymmetricRace { n: 3 };
        let objects = vec![AnyObject::consensus(3).unwrap()];
        let sink = MemorySink::new();
        let g = Explorer::new(&p, &objects)
            .exploration()
            .symmetric()
            .trace(Tracer::new(sink.clone()))
            .run()
            .unwrap();
        assert!(g.stats.canon_calls > 0);
        assert!(g.stats.phases.canonicalize > Duration::ZERO);
        // Canonicalization happens inside expansion, so its clock is a
        // subset of the expansion phase.
        assert!(g.stats.phases.canonicalize <= g.stats.phases.expand);
    }

    #[test]
    fn dot_export_mentions_every_node_and_edge() {
        let p = RaceConsensus { n: 2 };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let g = Explorer::new(&p, &objects).exploration().run().unwrap();
        let dot = g.to_dot(|i, c| format!("c{i}:{:?}", c.distinct_decisions()));
        assert!(dot.starts_with("digraph"));
        for i in 0..g.configs.len() {
            assert!(dot.contains(&format!("n{i} [label=")), "missing node n{i}");
        }
        assert_eq!(dot.matches(" -> ").count(), g.transitions);
        assert!(dot.contains("shape=box"), "initial node styled");
        assert!(dot.contains("shape=doublecircle"), "terminal nodes styled");
    }

    /// The full *content* of a graph, independent of node indexing: the
    /// sorted configuration list and the sorted edge list with endpoints
    /// replaced by their configurations. Two graphs with equal digests are
    /// the same labelled transition system — the exact guarantee the
    /// work-stealing mode makes relative to the deterministic one.
    type ContentDigest<L> = (
        Vec<Configuration<L>>,
        Vec<(Configuration<L>, usize, usize, Configuration<L>)>,
    );

    fn content_digest<L: Clone + Ord>(g: &ExplorationGraph<L>) -> ContentDigest<L> {
        let mut nodes = g.configs.clone();
        nodes.sort();
        let mut edges: Vec<_> = g
            .edges
            .iter()
            .enumerate()
            .flat_map(|(src, es)| {
                es.iter().map(move |e| {
                    (
                        g.configs[src].clone(),
                        e.pid.index(),
                        e.outcome,
                        g.configs[e.target].clone(),
                    )
                })
            })
            .collect();
        edges.sort();
        (nodes, edges)
    }

    #[test]
    fn work_stealing_explores_the_same_state_space() {
        let p = RaceConsensus { n: 4 };
        let objects = vec![AnyObject::consensus(4).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let det = ex.exploration().threads(1).run().unwrap();
        for threads in [1, 2, 4, 8] {
            let ws = ex
                .exploration()
                .threads(threads)
                .frontier(Frontier::WorkStealing)
                .run()
                .unwrap();
            assert!(ws.complete);
            assert_eq!(
                content_digest(&det),
                content_digest(&ws),
                "content differs at {threads} threads"
            );
            assert_eq!(ws.stats.configs, det.stats.configs);
            assert_eq!(ws.stats.expanded, det.stats.expanded);
            assert_eq!(ws.stats.transitions, det.stats.transitions);
            assert_eq!(ws.stats.dedup_hits, det.stats.dedup_hits);
            assert!(ws.stats.work_stealing);
            assert!(ws.stats.levels.is_empty());
            assert_eq!(ws.stats.threads, threads);
            // Every task is processed off a deque, either locally or stolen.
            assert_eq!(
                ws.stats.local_hits + ws.stats.steals,
                ws.stats.configs as u64
            );
        }
    }

    #[test]
    fn work_stealing_reduced_matches_deterministic_reduced() {
        let p = SymmetricRace { n: 4 };
        let objects = vec![AnyObject::consensus(4).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let det = ex.exploration().symmetric().threads(1).run().unwrap();
        for threads in [1, 4] {
            let ws = ex
                .exploration()
                .symmetric()
                .threads(threads)
                .frontier(Frontier::WorkStealing)
                .run()
                .unwrap();
            assert!(ws.complete);
            assert!(ws.stats.reduced);
            assert_eq!(content_digest(&det), content_digest(&ws));
            // Same orbit representatives, so the canonicalization effort is
            // accounted the same way: every transition either patched a
            // cached canonical form or recomputed one from scratch.
            assert_eq!(
                ws.stats.canon_patches + ws.stats.canon_full,
                ws.stats.transitions as u64
            );
        }
    }

    #[test]
    fn work_stealing_respects_the_expansion_budget() {
        let p = RaceConsensus { n: 4 };
        let objects = vec![AnyObject::consensus(4).unwrap()];
        let ex = Explorer::new(&p, &objects);
        for budget in [1, 3, 7] {
            let ws = ex
                .exploration()
                .max_configs(budget)
                .threads(4)
                .frontier(Frontier::WorkStealing)
                .run()
                .unwrap();
            assert!(!ws.complete, "budget {budget} cannot finish this space");
            assert!(
                ws.expanded.iter().filter(|&&e| e).count() <= budget,
                "budget {budget} overspent"
            );
            // Discovered-but-unexpanded nodes stay in the graph edgeless.
            for (i, es) in ws.edges.iter().enumerate() {
                if !ws.expanded[i] {
                    assert!(es.is_empty());
                }
            }
        }
    }

    #[test]
    fn work_stealing_handles_cyclic_state_spaces() {
        let p = ForeverProposer;
        let objects = vec![AnyObject::strong_sa()];
        let ws = Explorer::new(&p, &objects)
            .exploration()
            .threads(4)
            .frontier(Frontier::WorkStealing)
            .run()
            .unwrap();
        assert!(ws.complete);
        assert!(ws.has_cycle());
        let det = Explorer::new(&p, &objects).exploration().run().unwrap();
        assert_eq!(content_digest(&det), content_digest(&ws));
    }

    #[test]
    fn work_stealing_stats_are_consistent_with_the_graph() {
        let p = RaceConsensus { n: 3 };
        let objects = vec![AnyObject::consensus(3).unwrap()];
        let ws = Explorer::new(&p, &objects)
            .exploration()
            .threads(2)
            .frontier(Frontier::WorkStealing)
            .run()
            .unwrap();
        assert!(ws.complete);
        assert_eq!(ws.stats.configs, ws.len());
        assert_eq!(ws.stats.transitions, ws.transitions);
        assert_eq!(
            ws.stats.expanded,
            ws.expanded.iter().filter(|&&e| e).count()
        );
        assert_eq!(ws.stats.dedup_hits, ws.transitions - (ws.len() - 1));
        assert!(ws.stats.peak_frontier >= 1);
        assert_eq!(ws.stats.parallel_levels, 0);
        assert!(ws.stats.summary().contains("work-stealing"));
        assert!(!ws.stats.underparallelized());
    }

    #[test]
    fn work_stealing_worker_stats_reconcile_with_aggregates() {
        let p = RaceConsensus { n: 4 };
        let objects = vec![AnyObject::consensus(4).unwrap()];
        let ws = Explorer::new(&p, &objects)
            .exploration()
            .threads(4)
            .frontier(Frontier::WorkStealing)
            .run()
            .unwrap();
        let stats = &ws.stats;
        assert_eq!(stats.workers.len(), 4, "one row per worker");
        for (i, w) in stats.workers.iter().enumerate() {
            assert_eq!(w.worker, i, "rows indexed by worker id");
            assert!(
                w.busy.is_zero(),
                "per-task timing needs a tracer; untraced busy must stay zero"
            );
        }
        let sum = |f: fn(&WorkerStats) -> u64| stats.workers.iter().map(f).sum::<u64>();
        assert_eq!(
            stats.workers.iter().map(|w| w.expanded).sum::<usize>(),
            stats.expanded
        );
        assert_eq!(
            stats.workers.iter().map(|w| w.transitions).sum::<usize>(),
            stats.transitions
        );
        assert_eq!(sum(|w| w.steals), stats.steals);
        assert_eq!(sum(|w| w.steal_fails), stats.steal_fails);
        assert_eq!(sum(|w| w.local_hits), stats.local_hits);
        assert!(stats.worker_imbalance() >= 1.0);
        // Untraced runs record no per-task or steal latency distributions.
        assert!(stats.hist.task_expand.is_empty());
        assert!(stats.hist.steal.is_empty());
    }

    #[test]
    fn traced_work_stealing_emits_worker_scoped_events() {
        use lbsa_support::obs::MemorySink;
        let p = RaceConsensus { n: 4 };
        let objects = vec![AnyObject::consensus(4).unwrap()];
        let sink = MemorySink::new();
        let ws = Explorer::new(&p, &objects)
            .exploration()
            .threads(4)
            .frontier(Frontier::WorkStealing)
            .trace(Tracer::new(sink.clone()))
            .run()
            .unwrap();
        let names = sink.names();
        assert_eq!(
            names.iter().filter(|n| **n == "ws.done").count(),
            4,
            "every worker signs off with ws.done"
        );
        assert!(
            names.contains(&"ws.expand"),
            "at least one progress beat from an active worker"
        );
        let events = sink.events();
        for e in events.iter().filter(|e| e.name.starts_with("ws.")) {
            assert!(
                e.fields.get("worker").and_then(Json::as_i64).is_some(),
                "{}: worker-scoped events carry their worker id",
                e.name
            );
        }
        for e in events.iter().filter(|e| e.name == "ws.steal") {
            let outcome = e.fields.get("outcome").and_then(Json::as_str);
            match outcome {
                Some("hit") => assert!(
                    e.fields.get("victim").and_then(Json::as_i64).is_some(),
                    "steal hits name their victim"
                ),
                Some("miss") => assert!(
                    e.fields.get("spins").and_then(Json::as_i64).is_some(),
                    "steal misses carry the spin count"
                ),
                other => panic!("unexpected steal outcome {other:?}"),
            }
        }
        // Traced runs populate the per-task latency distribution: one
        // sample per expanded task.
        let stats = &ws.stats;
        assert_eq!(stats.hist.task_expand.count(), stats.expanded as u64);
        assert_eq!(
            stats.hist.steal.count(),
            stats.steals,
            "every successful steal records its latency"
        );
        assert!(
            stats
                .workers
                .iter()
                .map(|w| duration_ns(w.busy))
                .sum::<u64>()
                > 0,
            "traced workers measure their expansion time"
        );
        let doc = stats.to_json();
        assert!(doc.get("workers").is_some());
        assert!(
            doc.get("hist").and_then(|h| h.get("task_expand")).is_some(),
            "histograms reach the serialized metrics"
        );
    }

    #[test]
    fn level_sync_records_one_histogram_sample_per_level() {
        let p = RaceConsensus { n: 3 };
        let objects = vec![AnyObject::consensus(3).unwrap()];
        let g = Explorer::new(&p, &objects).exploration().run().unwrap();
        assert_eq!(
            g.stats.hist.level_expand.count(),
            g.stats.levels.len() as u64,
            "per-level expand histogram is always on"
        );
        assert!(
            g.stats.workers.is_empty(),
            "level-sync runs have no per-worker breakdown"
        );
    }
}
