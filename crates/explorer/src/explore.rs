//! Exhaustive exploration: the execution graph of a protocol.
//!
//! [`Explorer`] steps configurations *purely* (no mutable system), branching
//! on both sources of nondeterminism — which process moves, and which
//! admissible outcome a nondeterministic object picks. [`Explorer::explore`]
//! builds the full [`ExplorationGraph`] by breadth-first search with
//! configuration deduplication, up to a configurable limit. A complete graph
//! (`complete == true`) covers **every** execution of the protocol, which is
//! what turns the paper's universally-quantified properties into finite
//! checks.

use crate::config::Configuration;
use lbsa_core::spec::ObjectSpec;
use lbsa_core::{AnyObject, Pid};
use lbsa_runtime::error::RuntimeError;
use lbsa_runtime::process::{ProcStatus, Protocol, Step};
use std::collections::{HashMap, VecDeque};

/// Resource limits for exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of distinct configurations to expand. When exceeded,
    /// the graph is returned with `complete == false`.
    pub max_configs: usize,
}

impl Limits {
    /// Creates a limit on the number of expanded configurations.
    #[must_use]
    pub fn new(max_configs: usize) -> Self {
        Limits { max_configs }
    }
}

impl Default for Limits {
    /// Defaults to one million configurations — ample for the experiment
    /// instances, small enough to fail fast on runaway state spaces.
    fn default() -> Self {
        Limits { max_configs: 1_000_000 }
    }
}

/// One labelled edge of the execution graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// The process that takes the step.
    pub pid: Pid,
    /// The index of the object outcome chosen (0 for deterministic objects).
    pub outcome: usize,
    /// Index of the target configuration.
    pub target: usize,
}

/// The (possibly truncated) execution graph of a protocol.
#[derive(Clone, Debug)]
pub struct ExplorationGraph<L> {
    /// All discovered configurations; index 0 is the initial configuration.
    pub configs: Vec<Configuration<L>>,
    /// Outgoing edges per configuration. Empty for unexpanded (frontier)
    /// configurations of a truncated graph and for terminal configurations.
    pub edges: Vec<Vec<Edge>>,
    /// `expanded[i]` is `true` if configuration `i`'s successors were
    /// computed (always true when `complete`).
    pub expanded: Vec<bool>,
    /// `true` if the whole reachable space was covered.
    pub complete: bool,
    /// Total number of transitions discovered.
    pub transitions: usize,
}

impl<L> ExplorationGraph<L> {
    /// Number of discovered configurations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Graphs always contain at least the initial configuration.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over the indices of terminal configurations (no process can
    /// step).
    pub fn terminal_indices(&self) -> impl Iterator<Item = usize> + '_
    where
        L: Clone + Eq + std::hash::Hash + std::fmt::Debug,
    {
        self.configs.iter().enumerate().filter(|(_, c)| c.is_terminal()).map(|(i, _)| i)
    }

    /// Returns `true` if the graph contains a cycle reachable from the
    /// initial configuration (iterative three-color DFS).
    #[must_use]
    pub fn has_cycle(&self) -> bool {
        self.find_cycle().is_some()
    }

    /// Finds a cycle if one exists: returns the index of a configuration
    /// that lies on a cycle.
    #[must_use]
    pub fn find_cycle(&self) -> Option<usize> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color = vec![Color::White; self.configs.len()];
        // Iterative DFS: stack of (node, next-edge-index).
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        color[0] = Color::Grey;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < self.edges[node].len() {
                let target = self.edges[node][*next].target;
                *next += 1;
                match color[target] {
                    Color::Grey => return Some(target),
                    Color::White => {
                        color[target] = Color::Grey;
                        stack.push((target, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                stack.pop();
            }
        }
        None
    }


    /// BFS depth of each configuration from the initial one (`None` for
    /// configurations unreachable through recorded edges — only possible in
    /// truncated graphs).
    #[must_use]
    pub fn depths(&self) -> Vec<Option<usize>> {
        let mut depth = vec![None; self.configs.len()];
        depth[0] = Some(0);
        let mut queue = VecDeque::from([0usize]);
        while let Some(node) = queue.pop_front() {
            let d = depth[node].expect("queued nodes have depths");
            for e in &self.edges[node] {
                if depth[e.target].is_none() {
                    depth[e.target] = Some(d + 1);
                    queue.push_back(e.target);
                }
            }
        }
        depth
    }

    /// Renders the graph in Graphviz DOT format. `label` produces each
    /// node's label; terminal configurations are drawn as double circles,
    /// the initial configuration as a box.
    pub fn to_dot<F>(&self, mut label: F) -> String
    where
        L: Clone + Eq + std::hash::Hash + std::fmt::Debug,
        F: FnMut(usize, &Configuration<L>) -> String,
    {
        use std::fmt::Write as _;
        let mut out = String::from("digraph execution {\n  rankdir=LR;\n");
        for (i, config) in self.configs.iter().enumerate() {
            let text = label(i, config).replace('"', "'");
            let shape = if i == 0 {
                "box"
            } else if config.is_terminal() {
                "doublecircle"
            } else {
                "ellipse"
            };
            let _ = writeln!(out, "  n{i} [label=\"{text}\", shape={shape}];");
        }
        for (i, edges) in self.edges.iter().enumerate() {
            for e in edges {
                let _ = writeln!(out, "  n{i} -> n{} [label=\"{}/{}\"];", e.target, e.pid, e.outcome);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Reconstructs a path (as a list of edges) from the initial
    /// configuration to `target` by BFS.
    #[must_use]
    pub fn path_to(&self, target: usize) -> Option<Vec<Edge>> {
        if target == 0 {
            return Some(vec![]);
        }
        let mut pred: Vec<Option<(usize, Edge)>> = vec![None; self.configs.len()];
        let mut queue = VecDeque::from([0usize]);
        let mut seen = vec![false; self.configs.len()];
        seen[0] = true;
        while let Some(node) = queue.pop_front() {
            for &e in &self.edges[node] {
                if !seen[e.target] {
                    seen[e.target] = true;
                    pred[e.target] = Some((node, e));
                    if e.target == target {
                        let mut path = vec![];
                        let mut cur = target;
                        while cur != 0 {
                            let (p, edge) = pred[cur].expect("predecessor recorded");
                            path.push(edge);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(e.target);
                }
            }
        }
        None
    }
}

/// A pure, replayable stepper over a protocol's configurations.
#[derive(Debug)]
pub struct Explorer<'a, P: Protocol> {
    protocol: &'a P,
    objects: &'a [AnyObject],
}

impl<'a, P: Protocol> Explorer<'a, P> {
    /// Creates an explorer for `protocol` over `objects`.
    #[must_use]
    pub fn new(protocol: &'a P, objects: &'a [AnyObject]) -> Self {
        Explorer { protocol, objects }
    }

    /// The protocol being explored.
    #[must_use]
    pub fn protocol(&self) -> &P {
        self.protocol
    }

    /// The object table.
    #[must_use]
    pub fn objects(&self) -> &[AnyObject] {
        self.objects
    }

    /// The initial configuration.
    #[must_use]
    pub fn initial_config(&self) -> Configuration<P::LocalState> {
        Configuration {
            object_states: self.objects.iter().map(ObjectSpec::initial_state).collect(),
            procs: (0..self.protocol.num_processes())
                .map(|i| ProcStatus::Running(self.protocol.init(Pid(i))))
                .collect(),
        }
    }

    /// All configurations reachable from `config` by one step of `pid`, one
    /// per admissible object outcome (in outcome order).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ProcessNotRunning`] if `pid` cannot step, and
    /// propagates specification errors.
    pub fn successors_of(
        &self,
        config: &Configuration<P::LocalState>,
        pid: Pid,
    ) -> Result<Vec<Configuration<P::LocalState>>, RuntimeError> {
        let local = match config.procs.get(pid.index()) {
            None => {
                return Err(RuntimeError::PidOutOfRange { pid, len: config.procs.len() })
            }
            Some(ProcStatus::Running(s)) => s.clone(),
            Some(_) => return Err(RuntimeError::ProcessNotRunning(pid)),
        };
        let (obj, op) = self.protocol.pending_op(pid, &local);
        let spec = self.objects.get(obj.index()).ok_or(RuntimeError::ObjIdOutOfRange {
            obj,
            len: self.objects.len(),
        })?;
        let outs = spec.outcomes(&config.object_states[obj.index()], &op)?;
        Ok(outs
            .into_vec()
            .into_iter()
            .map(|(response, obj_state)| {
                let mut next = config.clone();
                next.object_states[obj.index()] = obj_state;
                next.procs[pid.index()] = match self.protocol.on_response(pid, &local, response) {
                    Step::Continue(s) => ProcStatus::Running(s),
                    Step::Decide(v) => ProcStatus::Decided(v),
                    Step::Abort => ProcStatus::Aborted,
                    Step::Halt => ProcStatus::Halted,
                };
                next
            })
            .collect())
    }

    /// Builds the execution graph reachable from the initial configuration.
    ///
    /// # Errors
    ///
    /// Propagates step errors (these indicate protocol bugs, not explored
    /// behaviours).
    pub fn explore(&self, limits: Limits) -> Result<ExplorationGraph<P::LocalState>, RuntimeError> {
        self.explore_from(self.initial_config(), limits)
    }

    /// Builds the execution graph reachable from an arbitrary configuration.
    ///
    /// # Errors
    ///
    /// Propagates step errors.
    pub fn explore_from(
        &self,
        initial: Configuration<P::LocalState>,
        limits: Limits,
    ) -> Result<ExplorationGraph<P::LocalState>, RuntimeError> {
        let mut configs = vec![initial.clone()];
        let mut index: HashMap<Configuration<P::LocalState>, usize> =
            HashMap::from([(initial, 0usize)]);
        let mut edges: Vec<Vec<Edge>> = vec![vec![]];
        let mut expanded = vec![false];
        let mut transitions = 0usize;
        let mut queue = VecDeque::from([0usize]);
        let mut complete = true;

        while let Some(node) = queue.pop_front() {
            if node >= limits.max_configs {
                // Frontier beyond the budget stays unexpanded.
                complete = false;
                continue;
            }
            expanded[node] = true;
            let config = configs[node].clone();
            let mut out = vec![];
            for pid in config.enabled_pids() {
                let succs = self.successors_of(&config, pid)?;
                for (outcome, succ) in succs.into_iter().enumerate() {
                    transitions += 1;
                    let target = match index.get(&succ) {
                        Some(&t) => t,
                        None => {
                            let t = configs.len();
                            index.insert(succ.clone(), t);
                            configs.push(succ);
                            edges.push(vec![]);
                            expanded.push(false);
                            queue.push_back(t);
                            t
                        }
                    };
                    out.push(Edge { pid, outcome, target });
                }
            }
            edges[node] = out;
        }

        Ok(ExplorationGraph { configs, edges, expanded, complete, transitions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::{ObjId, Op, Value};

    /// Two processes propose their pid to a consensus object and decide.
    #[derive(Debug)]
    struct RaceConsensus {
        n: usize,
    }

    impl Protocol for RaceConsensus {
        type LocalState = ();

        fn num_processes(&self) -> usize {
            self.n
        }

        fn init(&self, _pid: Pid) {}

        fn pending_op(&self, pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Propose(Value::Int(pid.index() as i64)))
        }

        fn on_response(&self, _pid: Pid, _s: &(), resp: Value) -> Step<()> {
            Step::Decide(resp)
        }
    }

    /// One process proposes to a 2-SA object repeatedly, never deciding —
    /// an intentionally cyclic protocol.
    #[derive(Debug)]
    struct ForeverProposer;

    impl Protocol for ForeverProposer {
        type LocalState = ();

        fn num_processes(&self) -> usize {
            1
        }

        fn init(&self, _pid: Pid) {}

        fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Propose(Value::Int(1)))
        }

        fn on_response(&self, _pid: Pid, _s: &(), _resp: Value) -> Step<()> {
            Step::Continue(())
        }
    }

    #[test]
    fn race_consensus_graph_shape() {
        let p = RaceConsensus { n: 2 };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let g = Explorer::new(&p, &objects).explore(Limits::default()).unwrap();
        assert!(g.complete);
        // Both orders of the two proposals, converging to terminal configs
        // where both decided the first proposer's value.
        for t in g.terminal_indices() {
            let c = &g.configs[t];
            assert!(c.all_decided());
            assert_eq!(c.distinct_decisions().len(), 1);
        }
        // Exactly two distinct terminal outcomes: decided-0 and decided-1.
        let outcomes: std::collections::BTreeSet<Vec<Value>> =
            g.terminal_indices().map(|t| g.configs[t].distinct_decisions()).collect();
        assert_eq!(outcomes.len(), 2);
        assert!(!g.has_cycle());
    }

    #[test]
    fn every_interleaving_is_covered() {
        // With n processes taking exactly one step each on a deterministic
        // object, there are n! interleavings but far fewer distinct
        // configurations; the graph must count transitions, not paths.
        let p = RaceConsensus { n: 3 };
        let objects = vec![AnyObject::consensus(3).unwrap()];
        let g = Explorer::new(&p, &objects).explore(Limits::default()).unwrap();
        assert!(g.complete);
        assert!(g.transitions >= 6);
        // All terminals agree on one value.
        for t in g.terminal_indices() {
            assert_eq!(g.configs[t].distinct_decisions().len(), 1);
        }
    }

    #[test]
    fn cyclic_protocol_is_detected() {
        let p = ForeverProposer;
        let objects = vec![AnyObject::strong_sa()];
        let g = Explorer::new(&p, &objects).explore(Limits::default()).unwrap();
        assert!(g.complete, "state space is finite despite the infinite execution");
        assert!(g.has_cycle());
        let on_cycle = g.find_cycle().unwrap();
        assert!(g.path_to(on_cycle).is_some());
    }

    #[test]
    fn truncation_is_reported() {
        let p = RaceConsensus { n: 3 };
        let objects = vec![AnyObject::consensus(3).unwrap()];
        let g = Explorer::new(&p, &objects).explore(Limits::new(2)).unwrap();
        assert!(!g.complete);
        assert!(g.expanded.iter().filter(|&&e| e).count() <= 2);
    }

    #[test]
    fn successors_branch_on_object_nondeterminism() {
        // A 2-SA object with two captured values gives two successor
        // configurations for one propose step.
        #[derive(Debug)]
        struct ProposeOnce;
        impl Protocol for ProposeOnce {
            type LocalState = u8;
            fn num_processes(&self) -> usize {
                3
            }
            fn init(&self, _pid: Pid) -> u8 {
                0
            }
            fn pending_op(&self, pid: Pid, _s: &u8) -> (ObjId, Op) {
                (ObjId(0), Op::Propose(Value::Int(pid.index() as i64)))
            }
            fn on_response(&self, _pid: Pid, _s: &u8, resp: Value) -> Step<u8> {
                Step::Decide(resp)
            }
        }
        let p = ProposeOnce;
        let objects = vec![AnyObject::strong_sa()];
        let ex = Explorer::new(&p, &objects);
        let c0 = ex.initial_config();
        let c1 = &ex.successors_of(&c0, Pid(0)).unwrap()[0];
        let c2s = ex.successors_of(c1, Pid(1)).unwrap();
        // STATE = {0}; proposing 1 captures it, then either member may be
        // returned: two branches.
        assert_eq!(c2s.len(), 2);
        let decisions: Vec<_> =
            c2s.iter().map(|c| c.procs[1].decision().unwrap()).collect();
        assert_eq!(decisions, vec![Value::Int(0), Value::Int(1)]);
    }

    #[test]
    fn stepping_disabled_process_errors() {
        let p = RaceConsensus { n: 2 };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let c0 = ex.initial_config();
        let c1 = &ex.successors_of(&c0, Pid(0)).unwrap()[0];
        assert!(matches!(
            ex.successors_of(c1, Pid(0)),
            Err(RuntimeError::ProcessNotRunning(Pid(0)))
        ));
        assert!(matches!(
            ex.successors_of(&c0, Pid(7)),
            Err(RuntimeError::PidOutOfRange { .. })
        ));
    }

    #[test]
    fn path_reconstruction_reaches_target() {
        let p = RaceConsensus { n: 2 };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let g = ex.explore(Limits::default()).unwrap();
        for t in g.terminal_indices() {
            let path = g.path_to(t).expect("terminal reachable from root");
            // Replay the path through successors_of and confirm we land on t.
            let mut cur = g.configs[0].clone();
            for e in &path {
                cur = ex.successors_of(&cur, e.pid).unwrap().into_iter().nth(e.outcome).unwrap();
            }
            assert_eq!(cur, g.configs[t]);
        }
    }

    #[test]
    fn depths_are_bfs_distances() {
        let p = RaceConsensus { n: 2 };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let g = Explorer::new(&p, &objects).explore(Limits::default()).unwrap();
        let depths = g.depths();
        assert_eq!(depths[0], Some(0));
        // Every edge target is at most one deeper than its source.
        for (i, edges) in g.edges.iter().enumerate() {
            for e in edges {
                let (di, dt) = (depths[i].unwrap(), depths[e.target].unwrap());
                assert!(dt <= di + 1);
            }
        }
        // Terminal configurations of this two-step protocol sit at depth 2.
        for t in g.terminal_indices() {
            assert_eq!(depths[t], Some(2));
        }
    }

    #[test]
    fn dot_export_mentions_every_node_and_edge() {
        let p = RaceConsensus { n: 2 };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let g = Explorer::new(&p, &objects).explore(Limits::default()).unwrap();
        let dot = g.to_dot(|i, c| format!("c{i}:{:?}", c.distinct_decisions()));
        assert!(dot.starts_with("digraph"));
        for i in 0..g.configs.len() {
            assert!(dot.contains(&format!("n{i} [label=")), "missing node n{i}");
        }
        assert_eq!(dot.matches(" -> ").count(), g.transitions);
        assert!(dot.contains("shape=box"), "initial node styled");
        assert!(dot.contains("shape=doublecircle"), "terminal nodes styled");
    }
}

