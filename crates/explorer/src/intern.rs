//! Hash-consing of object states and process statuses.
//!
//! Exploration revisits the same object states and per-process statuses over
//! and over: a million-configuration graph of a 4-process protocol typically
//! contains only a few thousand *distinct* object states and local states.
//! An [`Interner`] maps each distinct value to a stable `u32` id, so a whole
//! configuration compresses to a short id vector ([`CompactConfig`]) —
//! hashing and comparing configurations during deduplication then touches a
//! handful of words instead of walking deep state trees.
//!
//! The interner is safe to call from several expansion workers
//! concurrently; reads (the overwhelmingly common case — states repeat)
//! take a read lock only. Ids are *not* required to be deterministic across
//! runs: deduplication keys live and die inside one exploration, and graph
//! node indices are assigned by the deterministic merge, never by interning
//! order.

use lbsa_support::hash::FxHashMap;
use std::hash::Hash;
use std::sync::{Arc, RwLock};

/// Number of index shards (must be a power of two).
const SHARDS: usize = 16;

/// A configuration compressed to interned ids: object-state ids followed by
/// process-status ids. Reference-counted so the dedup index, the frontier,
/// and in-flight successor records can share one allocation.
pub type CompactConfig = Arc<[u32]>;

/// A concurrent hash-consing table: `intern` maps equal values to equal
/// `u32` ids, `resolve` maps ids back to shared values.
///
/// A single store behind one `RwLock`, not a sharded one: interning deep
/// values is dominated by hashing them, and a sharded table must hash every
/// value twice (once to pick the shard, once inside the shard's map). Reads
/// — the overwhelmingly common case, since states repeat — share the lock,
/// and write contention is negligible because distinct values are a tiny
/// fraction of intern calls.
#[derive(Debug)]
pub struct Interner<T> {
    inner: RwLock<Store<T>>,
}

#[derive(Debug)]
struct Store<T> {
    map: FxHashMap<Arc<T>, u32>,
    items: Vec<Arc<T>>,
}

impl<T: Eq + Hash + Clone> Interner<T> {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Interner {
            inner: RwLock::new(Store {
                map: FxHashMap::default(),
                items: Vec::new(),
            }),
        }
    }

    /// Returns the id of `value`, inserting it on first sight.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct values are interned, or if
    /// the lock is poisoned by a panicking worker.
    pub fn intern(&self, value: &T) -> u32 {
        if let Some(&id) = self
            .inner
            .read()
            .expect("interner lock poisoned")
            .map
            .get(value)
        {
            return id;
        }
        let mut guard = self.inner.write().expect("interner lock poisoned");
        if let Some(&id) = guard.map.get(value) {
            return id; // raced with another writer
        }
        Self::insert(&mut guard, value)
    }

    /// [`Interner::intern`] for exclusive access: `&mut self` proves no
    /// other thread holds the lock, so `RwLock::get_mut` skips it entirely.
    /// This is the fast path of single-threaded exploration.
    ///
    /// # Panics
    ///
    /// Panics as [`Interner::intern`] does.
    pub fn intern_mut(&mut self, value: &T) -> u32 {
        let store = self.inner.get_mut().expect("interner lock poisoned");
        if let Some(&id) = store.map.get(value) {
            return id;
        }
        Self::insert(store, value)
    }

    fn insert(store: &mut Store<T>, value: &T) -> u32 {
        let id = u32::try_from(store.items.len()).expect("interner overflow");
        let arc = Arc::new(value.clone());
        store.items.push(Arc::clone(&arc));
        store.map.insert(arc, id);
        id
    }

    /// [`Interner::resolve`] for exclusive access: returns a plain reference
    /// without touching the lock or the reference count.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    #[must_use]
    pub fn resolve_mut(&mut self, id: u32) -> &T {
        self.inner
            .get_mut()
            .expect("interner lock poisoned")
            .items
            .get(id as usize)
            .expect("unknown interned id")
    }

    /// Resolves an id back to its value.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    #[must_use]
    pub fn resolve(&self, id: u32) -> Arc<T> {
        Arc::clone(
            self.inner
                .read()
                .expect("interner lock poisoned")
                .items
                .get(id as usize)
                .expect("unknown interned id"),
        )
    }

    /// Number of distinct values interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("interner lock poisoned")
            .items
            .len()
    }

    /// Returns `true` if nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Eq + Hash + Clone> Default for Interner<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// The deduplication index: `CompactConfig` → graph node index, sharded by
/// configuration hash.
///
/// Concurrency discipline: during a level's expansion, workers hold `&self`
/// and [`probe`](ShardedIndex::probe) concurrently; between levels the merge
/// holds `&mut self` and inserts. The borrow checker enforces the phases, so
/// no locking is needed.
#[derive(Debug)]
pub struct ShardedIndex {
    shards: Vec<FxHashMap<CompactConfig, u32>>,
}

impl ShardedIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        ShardedIndex {
            shards: (0..SHARDS).map(|_| FxHashMap::default()).collect(),
        }
    }

    /// Shard selection must be a pure function of the key's content, but it
    /// need not be a strong hash — a cheap mix of the first and last ids
    /// (an object state and a process status) spreads configurations well
    /// without hashing the whole key twice per probe.
    fn shard_of(key: &[u32]) -> usize {
        let mix = key.first().copied().unwrap_or(0).wrapping_mul(0x9E37_79B9)
            ^ key.last().copied().unwrap_or(0).wrapping_mul(0x85EB_CA6B);
        (mix >> 24) as usize & (SHARDS - 1)
    }

    /// Looks up the node index of `key`, if already assigned.
    #[must_use]
    pub fn probe(&self, key: &[u32]) -> Option<u32> {
        self.shards[Self::shard_of(key)].get(key).copied()
    }

    /// Assigns `index` to `key` (merge phase only).
    pub fn insert(&mut self, key: CompactConfig, index: u32) {
        let shard = Self::shard_of(&key);
        self.shards[shard].insert(key, index);
    }

    /// Number of configurations indexed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(FxHashMap::len).sum()
    }

    /// Returns `true` if no configuration is indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(FxHashMap::is_empty)
    }
}

impl Default for ShardedIndex {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_a_bijection() {
        let interner: Interner<String> = Interner::new();
        let a = interner.intern(&"alpha".to_string());
        let b = interner.intern(&"beta".to_string());
        let a2 = interner.intern(&"alpha".to_string());
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(*interner.resolve(a), "alpha");
        assert_eq!(*interner.resolve(b), "beta");
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let interner: Interner<u64> = Interner::new();
        let ids: Vec<Vec<u32>> = std::thread::scope(|s| {
            (0..4)
                .map(|_| s.spawn(|| (0..500u64).map(|v| interner.intern(&v)).collect()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(interner.len(), 500);
        for other in &ids[1..] {
            assert_eq!(
                &ids[0], other,
                "same value must get the same id in every thread"
            );
        }
        for (v, &id) in ids[0].iter().enumerate() {
            assert_eq!(*interner.resolve(id), v as u64);
        }
    }

    #[test]
    fn sharded_index_round_trips() {
        let mut index = ShardedIndex::new();
        assert!(index.is_empty());
        for i in 0..100u32 {
            let key: CompactConfig = vec![i, i + 1, i + 2].into();
            assert_eq!(index.probe(&key), None);
            index.insert(key, i);
        }
        assert_eq!(index.len(), 100);
        for i in 0..100u32 {
            assert_eq!(index.probe(&[i, i + 1, i + 2]), Some(i));
        }
    }
}
