//! Hash-consing of object states and process statuses.
//!
//! Exploration revisits the same object states and per-process statuses over
//! and over: a million-configuration graph of a 4-process protocol typically
//! contains only a few thousand *distinct* object states and local states.
//! An [`Interner`] maps each distinct value to a stable `u32` id, so a whole
//! configuration compresses to a short id vector ([`CompactConfig`]) —
//! hashing and comparing configurations during deduplication then touches a
//! handful of words instead of walking deep state trees.
//!
//! The interner is safe to call from several expansion workers
//! concurrently; reads (the overwhelmingly common case — states repeat)
//! take a read lock only. Ids are *not* required to be deterministic across
//! runs: deduplication keys live and die inside one exploration, and graph
//! node indices are assigned by the deterministic merge, never by interning
//! order.

use lbsa_support::hash::{FxHashMap, FxHasher};
use lbsa_support::obs::Counter;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Number of interner / index shards (must be a power of two).
pub(crate) const SHARDS: usize = 16;

/// Assumed per-entry bookkeeping of one hash-map slot beyond the stored
/// key/value payload (control bytes, load-factor headroom, bucket
/// rounding). The memory gauges are *estimates*: the `mem-profile`
/// allocator is the ground truth they are checked against.
const MAP_ENTRY_OVERHEAD: usize = 24;

/// Heap bytes behind one `Arc` header (strong + weak counts).
const ARC_HEADER: usize = 16;

/// Approximate heap bytes of one dedup-index entry: the shared
/// `Arc<[u32]>` key payload plus the map slot holding the `(Arc, u32)`
/// pair.
fn index_entry_bytes(key_len: usize) -> usize {
    ARC_HEADER
        + key_len * std::mem::size_of::<u32>()
        + std::mem::size_of::<(CompactConfig, u32)>()
        + MAP_ENTRY_OVERHEAD
}

/// Bits of an interned id reserved for the shard number.
const SHARD_BITS: u32 = SHARDS.trailing_zeros();

/// A configuration compressed to interned ids: object-state ids followed by
/// process-status ids. Reference-counted so the dedup index, the frontier,
/// and in-flight successor records can share one allocation.
pub type CompactConfig = Arc<[u32]>;

/// A concurrent hash-consing table: `intern` maps equal values to equal
/// `u32` ids, `resolve` maps ids back to shared values.
///
/// The table is split into [`SHARDS`] independently locked stores, with the
/// shard chosen by the value's hash and folded into the id's low bits
/// (`id = local_index << SHARD_BITS | shard`). Two consequences:
///
/// * **contention** — concurrent expansion workers interning unrelated
///   values take unrelated locks, and even same-shard readers stop bouncing
///   one lock's cache line across every core;
/// * **stability** — within one run, equal values still map to equal ids
///   regardless of which thread interns first (the shard is a pure function
///   of the value, and insertion inside a shard is serialized by its write
///   lock). Ids are *not* deterministic across runs, and nothing may depend
///   on that: deduplication keys live and die inside one exploration, and
///   graph node indices are assigned by the deterministic merge, never by
///   interning order.
///
/// Shard selection costs one extra Fx pass over the value per `intern`; the
/// shard's own map then hashes it again. For the deep object states this
/// table holds, that second pass is far cheaper than the read-lock
/// serialization it replaces once more than one worker is interning.
#[derive(Debug)]
pub struct Interner<T> {
    shards: [RwLock<Store<T>>; SHARDS],
    metrics: [ShardMetrics; SHARDS],
}

#[derive(Debug)]
struct Store<T> {
    map: FxHashMap<Arc<T>, u32>,
    items: Vec<Arc<T>>,
}

/// Per-shard hit/miss counters. Kept one pair per shard so concurrent
/// workers interning into unrelated shards bump unrelated cache lines,
/// matching the lock sharding they already benefit from.
#[derive(Debug, Default)]
struct ShardMetrics {
    hits: Counter,
    misses: Counter,
}

impl<T: Eq + Hash + Clone> Interner<T> {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Interner {
            shards: std::array::from_fn(|_| {
                RwLock::new(Store {
                    map: FxHashMap::default(),
                    items: Vec::new(),
                })
            }),
            metrics: std::array::from_fn(|_| ShardMetrics::default()),
        }
    }

    /// The shard a value lives in: a pure function of its content.
    fn shard_of(value: &T) -> usize {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        (h.finish() as usize) & (SHARDS - 1)
    }

    /// Returns the id of `value`, inserting it on first sight.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX >> SHARD_BITS` distinct values land in
    /// one shard, or if a lock is poisoned by a panicking worker.
    pub fn intern(&self, value: &T) -> u32 {
        let shard = Self::shard_of(value);
        if let Some(&id) = self.shards[shard]
            .read()
            .expect("interner lock poisoned")
            .map
            .get(value)
        {
            self.metrics[shard].hits.bump();
            return id;
        }
        let mut guard = self.shards[shard].write().expect("interner lock poisoned");
        if let Some(&id) = guard.map.get(value) {
            self.metrics[shard].hits.bump();
            return id; // raced with another writer
        }
        self.metrics[shard].misses.bump();
        Self::insert(&mut guard, shard, value)
    }

    /// [`Interner::intern`] for exclusive access: `&mut self` proves no
    /// other thread holds any lock, so `RwLock::get_mut` skips them
    /// entirely. This is the fast path of single-threaded exploration.
    ///
    /// # Panics
    ///
    /// Panics as [`Interner::intern`] does.
    pub fn intern_mut(&mut self, value: &T) -> u32 {
        let shard = Self::shard_of(value);
        let store = self.shards[shard]
            .get_mut()
            .expect("interner lock poisoned");
        if let Some(&id) = store.map.get(value) {
            self.metrics[shard].hits.bump();
            return id;
        }
        self.metrics[shard].misses.bump();
        Self::insert(store, shard, value)
    }

    fn insert(store: &mut Store<T>, shard: usize, value: &T) -> u32 {
        let local = u32::try_from(store.items.len()).expect("interner overflow");
        assert!(
            local <= u32::MAX >> SHARD_BITS,
            "interner shard overflow: more than 2^{} values in one shard",
            32 - SHARD_BITS
        );
        let arc = Arc::new(value.clone());
        store.items.push(Arc::clone(&arc));
        let id = (local << SHARD_BITS) | shard as u32;
        store.map.insert(arc, id);
        id
    }

    /// [`Interner::resolve`] for exclusive access: returns a plain reference
    /// without touching a lock or the reference count.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    #[must_use]
    pub fn resolve_mut(&mut self, id: u32) -> &T {
        self.shards[(id as usize) & (SHARDS - 1)]
            .get_mut()
            .expect("interner lock poisoned")
            .items
            .get((id >> SHARD_BITS) as usize)
            .expect("unknown interned id")
    }

    /// Resolves an id back to its value.
    ///
    /// For read-mostly hot paths prefer [`Interner::resolve_with`], which
    /// borrows the value under the shard's read lock instead of bumping and
    /// dropping the `Arc` reference count.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    #[must_use]
    pub fn resolve(&self, id: u32) -> Arc<T> {
        Arc::clone(
            self.shards[(id as usize) & (SHARDS - 1)]
                .read()
                .expect("interner lock poisoned")
                .items
                .get((id >> SHARD_BITS) as usize)
                .expect("unknown interned id"),
        )
    }

    /// Applies `f` to the value behind `id` without cloning the `Arc`: the
    /// borrow lives under the shard's read lock only as long as `f` runs.
    /// This is the shared-access analogue of [`Interner::resolve_mut`] —
    /// it skips the atomic reference-count round-trip that makes
    /// [`Interner::resolve`] show up in expansion profiles.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve_with<R>(&self, id: u32, f: impl FnOnce(&T) -> R) -> R {
        f(self.shards[(id as usize) & (SHARDS - 1)]
            .read()
            .expect("interner lock poisoned")
            .items
            .get((id >> SHARD_BITS) as usize)
            .expect("unknown interned id"))
    }

    /// Number of distinct values interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("interner lock poisoned").items.len())
            .sum()
    }

    /// Returns `true` if nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found the value already interned, summed across
    /// shards.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.metrics.iter().map(|m| m.hits.get()).sum()
    }

    /// Lookups that inserted a new distinct value, summed across shards.
    /// Equals [`Interner::len`] at rest.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.metrics.iter().map(|m| m.misses.get()).sum()
    }

    /// Approximate heap bytes held by the interner: per distinct value,
    /// one `Arc<T>` allocation, one map entry, and one `items` slot. The
    /// estimate is *structural* — it counts `size_of::<T>()`, not heap
    /// reachable *through* `T` — and it feeds the `mem.*` registry gauges,
    /// where an octave of error is acceptable and a deep traversal is not.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let per_entry = ARC_HEADER
            + std::mem::size_of::<T>()
            + std::mem::size_of::<(Arc<T>, u32)>()
            + MAP_ENTRY_OVERHEAD
            + std::mem::size_of::<Arc<T>>();
        self.len() * per_entry
    }
}

impl<T: Eq + Hash + Clone> Default for Interner<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// The deduplication index: `CompactConfig` → graph node index, sharded by
/// configuration hash.
///
/// Concurrency discipline: during a level's expansion, workers hold `&self`
/// and [`probe`](ShardedIndex::probe) concurrently; between levels the merge
/// holds `&mut self` and inserts. The borrow checker enforces the phases, so
/// no locking is needed.
#[derive(Debug)]
pub struct ShardedIndex {
    shards: Vec<FxHashMap<CompactConfig, u32>>,
    bytes: usize,
}

impl ShardedIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        ShardedIndex {
            shards: (0..SHARDS).map(|_| FxHashMap::default()).collect(),
            bytes: 0,
        }
    }

    /// Shard selection must be a pure function of the key's content, but it
    /// need not be a strong hash — a cheap mix of the first and last ids
    /// (an object state and a process status) spreads configurations well
    /// without hashing the whole key twice per probe.
    pub(crate) fn shard_of(key: &[u32]) -> usize {
        let mix = key.first().copied().unwrap_or(0).wrapping_mul(0x9E37_79B9)
            ^ key.last().copied().unwrap_or(0).wrapping_mul(0x85EB_CA6B);
        (mix >> 24) as usize & (SHARDS - 1)
    }

    /// Looks up the node index of `key`, if already assigned.
    #[must_use]
    pub fn probe(&self, key: &[u32]) -> Option<u32> {
        self.shards[Self::shard_of(key)].get(key).copied()
    }

    /// Assigns `index` to `key` (merge phase only).
    pub fn insert(&mut self, key: CompactConfig, index: u32) {
        let shard = Self::shard_of(&key);
        self.bytes += index_entry_bytes(key.len());
        self.shards[shard].insert(key, index);
    }

    /// Number of configurations indexed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(FxHashMap::len).sum()
    }

    /// Returns `true` if no configuration is indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(FxHashMap::is_empty)
    }

    /// Approximate heap bytes held by the index, tracked incrementally at
    /// insert time (O(1) to read). Structural estimate — see
    /// [`Interner::approx_bytes`].
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }
}

impl Default for ShardedIndex {
    fn default() -> Self {
        Self::new()
    }
}

/// The work-stealing frontier's deduplication index: `CompactConfig` → node
/// index, sharded like [`ShardedIndex`] but safe for concurrent *insertion*.
///
/// Where [`ShardedIndex`] relies on the engine's level barrier to separate
/// probe and insert phases, the work-stealing frontier has no barrier:
/// workers discover and claim configurations continuously. Each shard is an
/// independently locked map, and node indices come from one shared atomic
/// counter bumped under the winning shard's write lock — so ids are dense
/// (`0..len`), unique, and each key is inserted by exactly one winner. Ids
/// depend on discovery order and are therefore **not** deterministic across
/// runs; the work-stealing mode's contract is verdict equality, not graph
/// byte-equality (see `crate::explore`).
#[derive(Debug)]
pub struct ConcurrentIndex {
    shards: [RwLock<FxHashMap<CompactConfig, u32>>; SHARDS],
    next: std::sync::atomic::AtomicU32,
    bytes: AtomicUsize,
}

impl ConcurrentIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        ConcurrentIndex {
            shards: std::array::from_fn(|_| RwLock::new(FxHashMap::default())),
            next: std::sync::atomic::AtomicU32::new(0),
            bytes: AtomicUsize::new(0),
        }
    }

    /// Looks up the node index of `key`, if some worker already claimed it.
    /// A hit is final (the index is insert-only), but a miss is only a
    /// snapshot — claiming requires [`ConcurrentIndex::get_or_insert`].
    #[must_use]
    pub fn probe(&self, key: &[u32]) -> Option<u32> {
        self.shards[ShardedIndex::shard_of(key)]
            .read()
            .expect("index lock poisoned")
            .get(key)
            .copied()
    }

    /// Returns `key`'s node index, assigning the next free one if this call
    /// is the first to claim it. The boolean is `true` for the (unique)
    /// winning insert — the caller that sees `true` owns the node: it must
    /// record the configuration and schedule its expansion.
    pub fn get_or_insert(&self, key: &CompactConfig) -> (u32, bool) {
        let shard = ShardedIndex::shard_of(key);
        if let Some(&id) = self.shards[shard]
            .read()
            .expect("index lock poisoned")
            .get(key.as_ref())
        {
            return (id, false);
        }
        let mut guard = self.shards[shard].write().expect("index lock poisoned");
        if let Some(&id) = guard.get(key.as_ref()) {
            return (id, false); // raced with another winner
        }
        // Bumped under the shard's write lock: every fetch_add result is
        // inserted exactly once, so ids are dense even across shards.
        let id = self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        assert!(id < u32::MAX, "concurrent index overflow");
        self.bytes
            .fetch_add(index_entry_bytes(key.len()), Ordering::Relaxed);
        guard.insert(Arc::clone(key), id);
        (id, true)
    }

    /// Batched [`ConcurrentIndex::get_or_insert`]: resolves every key of
    /// one task's successor set with at most one read-lock and one
    /// write-lock acquisition *per shard touched*, instead of up to two
    /// lock round-trips per key. `results[i]` receives `(id, inserted)`
    /// for `keys[i]`, with the same winner semantics as the scalar call
    /// (duplicate keys inside one batch: the first occurrence wins, the
    /// rest report hits). Returns the number of keys resolved without
    /// inserting — the batch's hit count.
    ///
    /// Ids are still handed out by the shared counter under the winning
    /// shard's write lock, so they stay dense and unique; within a batch
    /// they follow key order per shard (shard visit order is the probe
    /// order of first misses), which is as discovery-ordered as the
    /// barrier-free engine gets.
    pub fn get_or_insert_batch(
        &self,
        keys: &[CompactConfig],
        results: &mut Vec<(u32, bool)>,
    ) -> u64 {
        results.clear();
        results.resize(keys.len(), (u32::MAX, false));
        let mut hits = 0u64;
        // Tiny batches take the scalar path: once dedup saturates, most
        // tasks miss on zero, one, or two keys, and the shard-grouping
        // pass below would cost more than the lock round-trips it saves.
        // Duplicate keys inside a tiny batch still resolve correctly —
        // the later occurrence re-checks under the lock and reports a hit.
        if keys.len() <= 2 {
            for (i, key) in keys.iter().enumerate() {
                let (id, inserted) = self.get_or_insert(key);
                results[i] = (id, inserted);
                if !inserted {
                    hits += 1;
                }
            }
            return hits;
        }
        // Phase 1: group by shard and probe each touched shard under one
        // read lock. SHARDS is small, so a fixed per-shard index list
        // beats any allocation-heavy grouping.
        let mut by_shard: [Vec<usize>; SHARDS] = std::array::from_fn(|_| Vec::new());
        for (i, key) in keys.iter().enumerate() {
            by_shard[ShardedIndex::shard_of(key)].push(i);
        }
        for (shard, members) in by_shard.iter_mut().enumerate() {
            if members.is_empty() {
                continue;
            }
            {
                let guard = self.shards[shard].read().expect("index lock poisoned");
                members.retain(|&i| match guard.get(keys[i].as_ref()) {
                    Some(&id) => {
                        results[i] = (id, false);
                        hits += 1;
                        false
                    }
                    None => true,
                });
            }
            if members.is_empty() {
                continue;
            }
            // Phase 2: one write lock per shard with misses; re-check
            // under the lock (another worker, or an earlier duplicate in
            // this very batch, may have won meanwhile).
            let mut guard = self.shards[shard].write().expect("index lock poisoned");
            for &i in members.iter() {
                if let Some(&id) = guard.get(keys[i].as_ref()) {
                    results[i] = (id, false);
                    hits += 1;
                    continue;
                }
                let id = self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                assert!(id < u32::MAX, "concurrent index overflow");
                self.bytes
                    .fetch_add(index_entry_bytes(keys[i].len()), Ordering::Relaxed);
                guard.insert(Arc::clone(&keys[i]), id);
                results[i] = (id, true);
            }
        }
        hits
    }

    /// Number of configurations claimed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.next.load(std::sync::atomic::Ordering::Acquire) as usize
    }

    /// Returns `true` if no configuration has been claimed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap bytes held by the index, tracked incrementally by
    /// winning inserts (one relaxed add each; O(1) to read — this is the
    /// estimate a live watcher polls mid-run). Structural estimate — see
    /// [`Interner::approx_bytes`].
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl Default for ConcurrentIndex {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_a_bijection() {
        let interner: Interner<String> = Interner::new();
        let a = interner.intern(&"alpha".to_string());
        let b = interner.intern(&"beta".to_string());
        let a2 = interner.intern(&"alpha".to_string());
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(*interner.resolve(a), "alpha");
        assert_eq!(*interner.resolve(b), "beta");
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.hits(), 1);
        assert_eq!(interner.misses(), 2);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let interner: Interner<u64> = Interner::new();
        let ids: Vec<Vec<u32>> = std::thread::scope(|s| {
            (0..4)
                .map(|_| s.spawn(|| (0..500u64).map(|v| interner.intern(&v)).collect()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(interner.len(), 500);
        for other in &ids[1..] {
            assert_eq!(
                &ids[0], other,
                "same value must get the same id in every thread"
            );
        }
        for (v, &id) in ids[0].iter().enumerate() {
            assert_eq!(*interner.resolve(id), v as u64);
        }
        // Exactly one interning per distinct value wins the insert; every
        // other lookup (including write-race losers) counts as a hit.
        assert_eq!(interner.misses(), 500);
        assert_eq!(interner.hits() + interner.misses(), 4 * 500);
    }

    #[test]
    fn resolve_with_matches_resolve() {
        let mut interner: Interner<String> = Interner::new();
        let ids: Vec<u32> = (0..64)
            .map(|i| interner.intern(&format!("value-{i}")))
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            let expected = format!("value-{i}");
            assert_eq!(*interner.resolve(id), expected);
            assert_eq!(interner.resolve_with(id, |v| v.len()), expected.len());
            assert_eq!(interner.resolve_mut(id), &expected);
            // The shard lives in the id's low bits and matches the value's
            // shard function, so every accessor agrees on the store.
            assert_eq!(
                (id as usize) & (SHARDS - 1),
                Interner::<String>::shard_of(&expected)
            );
        }
        assert_eq!(interner.len(), 64);
    }

    #[test]
    fn concurrent_index_assigns_dense_unique_ids() {
        let index = ConcurrentIndex::new();
        assert!(index.is_empty());
        // Four threads race to claim an overlapping key range; every key
        // must get exactly one winner and ids must be dense.
        let results: Vec<Vec<(u32, bool)>> = std::thread::scope(|s| {
            (0..4u32)
                .map(|t| {
                    let index = &index;
                    s.spawn(move || {
                        (t * 50..t * 50 + 200)
                            .map(|i| {
                                let key: CompactConfig = vec![i, i.wrapping_mul(7), i ^ 3].into();
                                index.get_or_insert(&key)
                            })
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let distinct_keys = 350; // 0..350 across the overlapping ranges
        assert_eq!(index.len(), distinct_keys);
        let mut winners = vec![0usize; distinct_keys];
        let mut id_of_key: FxHashMap<u32, u32> = FxHashMap::default();
        for thread_results in &results {
            for &(id, won) in thread_results {
                assert!((id as usize) < distinct_keys, "ids must be dense");
                if won {
                    winners[id as usize] += 1;
                }
            }
        }
        assert!(winners.iter().all(|&w| w == 1), "exactly one winner per id");
        // Same key ⇒ same id, in every thread.
        for (t, thread_results) in results.iter().enumerate() {
            for (j, &(id, _)) in thread_results.iter().enumerate() {
                let key = t as u32 * 50 + j as u32;
                match id_of_key.entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => assert_eq!(*e.get(), id),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(id);
                    }
                }
            }
        }
        // probe agrees with get_or_insert after the fact.
        for i in 0..distinct_keys as u32 {
            let key: Vec<u32> = vec![i, i.wrapping_mul(7), i ^ 3];
            assert_eq!(index.probe(&key), Some(id_of_key[&i]));
        }
    }

    #[test]
    fn batch_get_or_insert_matches_scalar_semantics() {
        let index = ConcurrentIndex::new();
        let keys: Vec<CompactConfig> = (0..100u32)
            .map(|i| vec![i % 40, (i % 40).wrapping_mul(13), i % 40].into())
            .collect();
        let mut results = Vec::new();
        let hits = index.get_or_insert_batch(&keys, &mut results);
        assert_eq!(results.len(), keys.len());
        // 0..40 distinct keys; within the batch the first occurrence of
        // each wins, later duplicates are hits.
        let inserted = results.iter().filter(|&&(_, won)| won).count();
        assert_eq!(inserted, 40);
        assert_eq!(hits, 60);
        assert_eq!(index.len(), 40);
        // Ids are dense and agree with the scalar path.
        for (i, &(id, _)) in results.iter().enumerate() {
            assert!((id as usize) < 40, "ids must be dense");
            assert_eq!(index.get_or_insert(&keys[i]), (id, false));
            assert_eq!(index.probe(&keys[i]), Some(id));
        }
        // A second batch over the same keys is all hits.
        let hits2 = index.get_or_insert_batch(&keys, &mut results);
        assert_eq!(hits2, 100);
        assert!(results.iter().all(|&(_, won)| !won));
    }

    #[test]
    fn concurrent_batches_assign_one_winner_per_key() {
        let index = ConcurrentIndex::new();
        let results: Vec<Vec<(u32, bool)>> = std::thread::scope(|s| {
            (0..4u32)
                .map(|t| {
                    let index = &index;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        let mut all = Vec::new();
                        // Overlapping windows, batched 16 at a time.
                        for chunk_start in (t * 50..t * 50 + 200).step_by(16) {
                            let keys: Vec<CompactConfig> = (chunk_start
                                ..(chunk_start + 16).min(t * 50 + 200))
                                .map(|i| vec![i, i.wrapping_mul(7), i ^ 3].into())
                                .collect();
                            index.get_or_insert_batch(&keys, &mut out);
                            all.extend(out.iter().copied());
                        }
                        all
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let distinct = 350;
        assert_eq!(index.len(), distinct);
        let mut winners = vec![0usize; distinct];
        for thread_results in &results {
            for &(id, won) in thread_results {
                assert!((id as usize) < distinct, "ids must be dense");
                if won {
                    winners[id as usize] += 1;
                }
            }
        }
        assert!(winners.iter().all(|&w| w == 1), "exactly one winner per id");
        // Batched and scalar probes agree.
        for i in 0..distinct as u32 {
            let key: Vec<u32> = vec![i, i.wrapping_mul(7), i ^ 3];
            assert!(index.probe(&key).is_some());
        }
    }

    #[test]
    fn sharded_index_round_trips() {
        let mut index = ShardedIndex::new();
        assert!(index.is_empty());
        for i in 0..100u32 {
            let key: CompactConfig = vec![i, i + 1, i + 2].into();
            assert_eq!(index.probe(&key), None);
            index.insert(key, i);
        }
        assert_eq!(index.len(), 100);
        for i in 0..100u32 {
            assert_eq!(index.probe(&[i, i + 1, i + 2]), Some(i));
        }
    }

    #[test]
    fn approx_bytes_scales_with_entries() {
        let interner: Interner<String> = Interner::new();
        assert_eq!(interner.approx_bytes(), 0);
        for i in 0..10 {
            interner.intern(&format!("v{i}"));
        }
        let ten = interner.approx_bytes();
        assert!(ten > 0);
        for i in 10..20 {
            interner.intern(&format!("v{i}"));
        }
        assert_eq!(
            interner.approx_bytes(),
            2 * ten,
            "linear in distinct values"
        );

        let mut index = ShardedIndex::new();
        assert_eq!(index.approx_bytes(), 0);
        index.insert(vec![1, 2, 3].into(), 0);
        let one = index.approx_bytes();
        assert!(one >= 3 * 4, "at least the key payload");
        index.insert(vec![4, 5, 6].into(), 1);
        assert_eq!(index.approx_bytes(), 2 * one);

        let conc = ConcurrentIndex::new();
        assert_eq!(conc.approx_bytes(), 0);
        let key: CompactConfig = vec![7, 8, 9].into();
        conc.get_or_insert(&key);
        let first = conc.approx_bytes();
        assert!(first > 0);
        conc.get_or_insert(&key);
        assert_eq!(conc.approx_bytes(), first, "hits do not grow the estimate");
    }
}
