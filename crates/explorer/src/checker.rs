//! Whole-execution-space property checking for the paper's problems:
//! consensus, k-set agreement, and the n-DAC problem.
//!
//! Every check here runs over a **complete** exploration graph, so a
//! `Ok(_)` verdict means the property holds in *every* execution of the
//! protocol — the same quantifier as the paper's theorem statements. The
//! n-DAC checker implements the exact four properties of Section 4,
//! including the solo-run Termination clauses (a) and (b), which are checked
//! by re-exploring `q`-solo extensions from **every** reachable
//! configuration.
//!
//! The checkers also run unchanged over a **symmetry-reduced** graph (built
//! with [`crate::explore::Exploration::symmetric`]): every predicate here is
//! orbit-invariant. Agreement, validity and undecided-terminal inspect only
//! the multiset of decisions and statuses, which pid permutations preserve;
//! the pid-specific n-DAC predicates (solo runs of `q`, Nontriviality of the
//! distinguished process) are invariant because the
//! [`lbsa_runtime::process::Symmetry`] contract makes distinguished roles
//! singleton classes — fixed by every group element — and solo extensions of
//! a canonical representative cover those of the whole orbit by
//! equivariance. Violations found on the quotient are translated back to
//! real executions by the verdict layer (see [`crate::verdict`]).

use crate::adversary::{find_nontermination, NonTerminationWitness};
use crate::config::Configuration;
use crate::explore::{ExplorationGraph, Explorer, Limits};
use lbsa_core::{Pid, Value};
use lbsa_runtime::error::RuntimeError;
use lbsa_runtime::process::{ProcStatus, Protocol};
use std::collections::HashSet;
use std::fmt;

/// Statistics of a successful check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckStats {
    /// Configurations examined.
    pub configs: usize,
    /// Transitions examined.
    pub transitions: usize,
}

/// A property violation found by a checker (or an inability to conclude).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// The exploration graph was truncated; the verdict is inconclusive.
    Truncated,
    /// More distinct values decided than the problem allows.
    Agreement {
        /// Configuration where the violation is visible.
        config: usize,
        /// The decided values.
        values: Vec<Value>,
    },
    /// A decided value that no admissible process proposed.
    Validity {
        /// Configuration where the violation is visible.
        config: usize,
        /// The offending value.
        value: Value,
    },
    /// An infinite execution in which some process steps forever without
    /// deciding.
    NonTermination(NonTerminationWitness),
    /// A terminal configuration in which some process neither decided nor
    /// (where permitted) aborted.
    UndecidedTerminal {
        /// The terminal configuration.
        config: usize,
    },
    /// A solo run of `pid` from `config` failed to terminate within the
    /// bound (n-DAC Termination (a)/(b)).
    SoloNonTermination {
        /// Starting configuration of the failing solo run.
        config: usize,
        /// The process run solo.
        pid: Pid,
    },
    /// n-DAC Nontriviality: the distinguished process aborted although no
    /// other process had taken a step.
    Nontriviality {
        /// Configuration where the abort is visible.
        config: usize,
    },
    /// A recorded front-end history admits no legal linearization.
    NotLinearizable {
        /// The object whose history cannot be linearized.
        obj: lbsa_core::ObjId,
    },
    /// The protocol itself misbehaved (spec error, bad object id).
    Runtime(RuntimeError),
    /// A violation found by a sampling sweep rather than an exhaustive
    /// graph check (see [`crate::sampling`]): tagged with the reproducing
    /// seed instead of a configuration index.
    Sampled(crate::sampling::SampleViolation),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Truncated => write!(f, "exploration truncated; verdict inconclusive"),
            Violation::Agreement { config, values } => {
                write!(f, "agreement violated in configuration {config}: decided {values:?}")
            }
            Violation::Validity { config, value } => {
                write!(f, "validity violated in configuration {config}: decided {value}")
            }
            Violation::NonTermination(w) => write!(
                f,
                "non-termination: cycle of length {} (victims: {:?})",
                w.cycle.len(),
                w.victims
            ),
            Violation::UndecidedTerminal { config } => {
                write!(f, "terminal configuration {config} leaves a process undecided")
            }
            Violation::SoloNonTermination { config, pid } => {
                write!(f, "{pid} run solo from configuration {config} does not terminate")
            }
            Violation::Nontriviality { config } => write!(
                f,
                "nontriviality violated in configuration {config}: p aborted before any other process stepped"
            ),
            Violation::NotLinearizable { obj } => {
                write!(f, "history of {obj} is not linearizable")
            }
            Violation::Runtime(e) => write!(f, "runtime error during checking: {e}"),
            Violation::Sampled(v) => write!(f, "{v}"),
        }
    }
}

impl From<RuntimeError> for Violation {
    fn from(e: RuntimeError) -> Self {
        Violation::Runtime(e)
    }
}

fn stats<L>(graph: &ExplorationGraph<L>) -> CheckStats {
    CheckStats {
        configs: graph.configs.len(),
        transitions: graph.transitions,
    }
}

/// Checks the k-set agreement properties over a complete graph:
///
/// * **k-Agreement** — at most `k` distinct values are decided in any
///   configuration,
/// * **Validity** — every decided value is in `valid_inputs`,
/// * **Wait-free termination** — no infinite execution, and every terminal
///   configuration has all processes decided.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check_k_set_agreement_graph<L: Clone + Eq + std::hash::Hash + std::fmt::Debug>(
    graph: &ExplorationGraph<L>,
    k: usize,
    valid_inputs: &[Value],
) -> Result<CheckStats, Violation> {
    if !graph.complete {
        return Err(Violation::Truncated);
    }
    for (idx, config) in graph.configs.iter().enumerate() {
        let decided = config.distinct_decisions();
        if decided.len() > k {
            return Err(Violation::Agreement {
                config: idx,
                values: decided,
            });
        }
        for v in &decided {
            if !valid_inputs.contains(v) {
                return Err(Violation::Validity {
                    config: idx,
                    value: *v,
                });
            }
        }
    }
    if let Some(w) = find_nontermination(graph) {
        return Err(Violation::NonTermination(w));
    }
    for idx in graph.terminal_indices() {
        if !graph.configs[idx].all_decided() {
            return Err(Violation::UndecidedTerminal { config: idx });
        }
    }
    Ok(stats(graph))
}

/// Checks the consensus properties (k-set agreement with `k = 1`) over a
/// complete graph.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check_consensus_graph<L: Clone + Eq + std::hash::Hash + std::fmt::Debug>(
    graph: &ExplorationGraph<L>,
    valid_inputs: &[Value],
) -> Result<CheckStats, Violation> {
    check_k_set_agreement_graph(graph, 1, valid_inputs)
}

/// Explores `protocol` and checks consensus in one call.
///
/// # Errors
///
/// Returns the first [`Violation`] found (including [`Violation::Truncated`]
/// when `limits` are too small).
pub fn check_consensus<P: Protocol>(
    explorer: &Explorer<'_, P>,
    valid_inputs: &[Value],
    limits: Limits,
) -> Result<CheckStats, Violation> {
    let graph = explorer.exploration().limits(limits).run()?;
    check_consensus_graph(&graph, valid_inputs)
}

/// Explores `protocol` and checks k-set agreement in one call.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check_k_set_agreement<P: Protocol>(
    explorer: &Explorer<'_, P>,
    k: usize,
    valid_inputs: &[Value],
    limits: Limits,
) -> Result<CheckStats, Violation> {
    let graph = explorer.exploration().limits(limits).run()?;
    check_k_set_agreement_graph(&graph, k, valid_inputs)
}

/// The n-DAC problem instance being checked (Section 4 of the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DacInstance {
    /// The distinguished process `p` (the only one allowed to abort).
    pub distinguished: Pid,
    /// Each process's binary input, indexed by pid.
    pub inputs: Vec<Value>,
}

/// Runs `pid` solo from `config`, following every object-outcome branch.
///
/// Returns `Ok(true)` if on **every** branch `pid` stops running (decides,
/// aborts, or halts) within `bound` of its own steps and without revisiting
/// a configuration (a revisit is a solo loop — non-termination).
///
/// # Errors
///
/// Propagates runtime errors.
pub fn solo_terminates<P: Protocol>(
    explorer: &Explorer<'_, P>,
    config: &Configuration<P::LocalState>,
    pid: Pid,
    bound: usize,
) -> Result<bool, RuntimeError> {
    let mut visited: HashSet<Configuration<P::LocalState>> = HashSet::new();
    let mut stack: Vec<(Configuration<P::LocalState>, usize)> = vec![(config.clone(), 0)];
    while let Some((cfg, depth)) = stack.pop() {
        if !matches!(cfg.procs.get(pid.index()), Some(ProcStatus::Running(_))) {
            continue; // this branch terminated
        }
        if depth >= bound {
            return Ok(false);
        }
        if !visited.insert(cfg.clone()) {
            return Ok(false); // solo loop
        }
        for succ in explorer.successors_of(&cfg, pid)? {
            stack.push((succ, depth + 1));
        }
    }
    Ok(true)
}

/// Like [`solo_terminates`], but additionally requires that on every branch
/// the process **decides** (aborting or halting does not count).
///
/// # Errors
///
/// Propagates runtime errors.
pub fn solo_decides<P: Protocol>(
    explorer: &Explorer<'_, P>,
    config: &Configuration<P::LocalState>,
    pid: Pid,
    bound: usize,
) -> Result<bool, RuntimeError> {
    let mut visited: HashSet<Configuration<P::LocalState>> = HashSet::new();
    let mut stack: Vec<(Configuration<P::LocalState>, usize)> = vec![(config.clone(), 0)];
    while let Some((cfg, depth)) = stack.pop() {
        match cfg.procs.get(pid.index()) {
            Some(ProcStatus::Running(_)) => {}
            Some(ProcStatus::Decided(_)) => continue,
            _ => return Ok(false), // aborted/halted/crashed: not a decision
        }
        if depth >= bound {
            return Ok(false);
        }
        if !visited.insert(cfg.clone()) {
            return Ok(false);
        }
        for succ in explorer.successors_of(&cfg, pid)? {
            stack.push((succ, depth + 1));
        }
    }
    Ok(true)
}

/// Checks all four n-DAC properties of Section 4 over every execution:
///
/// * **Agreement** — no configuration contains two distinct decisions;
/// * **Validity** — every decided value is the input of some process that
///   has not aborted;
/// * **Termination (a)** — from every reachable configuration, `p` run solo
///   decides or aborts within `solo_bound` of its own steps;
/// * **Termination (b)** — from every reachable configuration, each `q ≠ p`
///   run solo decides within `solo_bound` of its own steps;
/// * **Nontriviality** — in no execution does `p` abort before some other
///   process has taken a step.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check_dac<P: Protocol>(
    explorer: &Explorer<'_, P>,
    instance: &DacInstance,
    limits: Limits,
    solo_bound: usize,
) -> Result<CheckStats, Violation> {
    let graph = explorer.exploration().limits(limits).run()?;
    check_dac_graph(explorer, &graph, instance, solo_bound)
}

/// Checks the four n-DAC properties over an already-built exploration
/// graph of the same protocol — the core of [`check_dac`], exposed so the
/// verdict layer can explore once and reuse the graph for witness
/// extraction.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check_dac_graph<P: Protocol>(
    explorer: &Explorer<'_, P>,
    graph: &ExplorationGraph<P::LocalState>,
    instance: &DacInstance,
    solo_bound: usize,
) -> Result<CheckStats, Violation> {
    if !graph.complete {
        return Err(Violation::Truncated);
    }
    let p = instance.distinguished;
    let n = explorer.protocol().num_processes();

    // Agreement + Validity, per configuration.
    for (idx, config) in graph.configs.iter().enumerate() {
        let decided = config.distinct_decisions();
        if decided.len() > 1 {
            return Err(Violation::Agreement {
                config: idx,
                values: decided,
            });
        }
        for v in &decided {
            let supported =
                (0..n).any(|q| instance.inputs.get(q) == Some(v) && !config.has_aborted(Pid(q)));
            if !supported {
                return Err(Violation::Validity {
                    config: idx,
                    value: *v,
                });
            }
        }
    }

    // Termination (a) and (b): solo runs from every reachable configuration.
    for (idx, config) in graph.configs.iter().enumerate() {
        if matches!(config.procs.get(p.index()), Some(ProcStatus::Running(_)))
            && !solo_terminates(explorer, config, p, solo_bound)?
        {
            return Err(Violation::SoloNonTermination {
                config: idx,
                pid: p,
            });
        }
        for q in 0..n {
            let q = Pid(q);
            if q == p {
                continue;
            }
            if matches!(config.procs.get(q.index()), Some(ProcStatus::Running(_)))
                && !solo_decides(explorer, config, q, solo_bound)?
            {
                return Err(Violation::SoloNonTermination {
                    config: idx,
                    pid: q,
                });
            }
        }
    }

    // Nontriviality: BFS over (configuration, has-any-other-process-stepped).
    {
        let mut seen: HashSet<(usize, bool)> = HashSet::new();
        let mut queue: Vec<(usize, bool)> = vec![(0, false)];
        seen.insert((0, false));
        while let Some((idx, others_stepped)) = queue.pop() {
            if graph.configs[idx].has_aborted(p) && !others_stepped {
                return Err(Violation::Nontriviality { config: idx });
            }
            for e in &graph.edges[idx] {
                let next_flag = others_stepped || e.pid != p;
                if seen.insert((e.target, next_flag)) {
                    queue.push((e.target, next_flag));
                }
            }
        }
    }

    Ok(stats(graph))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::value::int;
    use lbsa_core::{AnyObject, ObjId, Op};
    use lbsa_runtime::process::Step;

    /// Correct consensus via a consensus object.
    #[derive(Debug)]
    struct GoodConsensus {
        inputs: Vec<Value>,
    }

    impl Protocol for GoodConsensus {
        type LocalState = ();
        fn num_processes(&self) -> usize {
            self.inputs.len()
        }
        fn init(&self, _pid: Pid) {}
        fn pending_op(&self, pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Propose(self.inputs[pid.index()]))
        }
        fn on_response(&self, _pid: Pid, _s: &(), resp: Value) -> Step<()> {
            Step::Decide(resp)
        }
    }

    /// Broken "consensus": each process decides its own input.
    #[derive(Debug)]
    struct DecideOwn {
        inputs: Vec<Value>,
    }

    impl Protocol for DecideOwn {
        type LocalState = ();
        fn num_processes(&self) -> usize {
            self.inputs.len()
        }
        fn init(&self, _pid: Pid) {}
        fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Read)
        }
        fn on_response(&self, pid: Pid, _s: &(), _r: Value) -> Step<()> {
            Step::Decide(self.inputs[pid.index()])
        }
    }

    /// Broken "consensus": decides a constant not among the inputs.
    #[derive(Debug)]
    struct DecideConstant;

    impl Protocol for DecideConstant {
        type LocalState = ();
        fn num_processes(&self) -> usize {
            2
        }
        fn init(&self, _pid: Pid) {}
        fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Read)
        }
        fn on_response(&self, _pid: Pid, _s: &(), _r: Value) -> Step<()> {
            Step::Decide(int(99))
        }
    }

    /// A process that halts without deciding.
    #[derive(Debug)]
    struct HaltsUndecided;

    impl Protocol for HaltsUndecided {
        type LocalState = ();
        fn num_processes(&self) -> usize {
            1
        }
        fn init(&self, _pid: Pid) {}
        fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Read)
        }
        fn on_response(&self, _pid: Pid, _s: &(), _r: Value) -> Step<()> {
            Step::Halt
        }
    }

    fn reg() -> Vec<AnyObject> {
        vec![AnyObject::register()]
    }

    #[test]
    fn good_consensus_passes() {
        let p = GoodConsensus {
            inputs: vec![int(0), int(1)],
        };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let stats = check_consensus(&ex, &[int(0), int(1)], Limits::default()).unwrap();
        assert!(stats.configs >= 4);
    }

    #[test]
    fn agreement_violation_is_found() {
        let p = DecideOwn {
            inputs: vec![int(0), int(1)],
        };
        let objects = reg();
        let ex = Explorer::new(&p, &objects);
        let err = check_consensus(&ex, &[int(0), int(1)], Limits::default()).unwrap_err();
        assert!(matches!(err, Violation::Agreement { .. }), "{err}");
    }

    #[test]
    fn validity_violation_is_found() {
        let p = DecideConstant;
        let objects = reg();
        let ex = Explorer::new(&p, &objects);
        let err = check_consensus(&ex, &[int(0), int(1)], Limits::default()).unwrap_err();
        assert!(
            matches!(
                err,
                Violation::Validity {
                    value: Value::Int(99),
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn undecided_terminal_is_found() {
        let p = HaltsUndecided;
        let objects = reg();
        let ex = Explorer::new(&p, &objects);
        let err = check_consensus(&ex, &[int(0)], Limits::default()).unwrap_err();
        assert!(matches!(err, Violation::UndecidedTerminal { .. }), "{err}");
    }

    #[test]
    fn k_set_agreement_tolerates_k_values() {
        // DecideOwn with 2 distinct inputs violates consensus but satisfies
        // 2-set agreement.
        let p = DecideOwn {
            inputs: vec![int(0), int(1)],
        };
        let objects = reg();
        let ex = Explorer::new(&p, &objects);
        assert!(check_k_set_agreement(&ex, 2, &[int(0), int(1)], Limits::default()).is_ok());
        assert!(check_k_set_agreement(&ex, 1, &[int(0), int(1)], Limits::default()).is_err());
    }

    #[test]
    fn truncated_graph_is_inconclusive() {
        let p = GoodConsensus {
            inputs: vec![int(0), int(1)],
        };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let err = check_consensus(&ex, &[int(0), int(1)], Limits::new(1)).unwrap_err();
        assert!(matches!(err, Violation::Truncated));
    }

    #[test]
    fn solo_termination_helpers() {
        let p = GoodConsensus {
            inputs: vec![int(0), int(1)],
        };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let init = ex.initial_config();
        assert!(solo_terminates(&ex, &init, Pid(0), 5).unwrap());
        assert!(solo_decides(&ex, &init, Pid(0), 5).unwrap());

        let p = HaltsUndecided;
        let objects = reg();
        let ex = Explorer::new(&p, &objects);
        let init = ex.initial_config();
        assert!(solo_terminates(&ex, &init, Pid(0), 5).unwrap());
        assert!(
            !solo_decides(&ex, &init, Pid(0), 5).unwrap(),
            "halting is not deciding"
        );
    }

    #[test]
    fn solo_loop_is_detected() {
        #[derive(Debug)]
        struct Spin;
        impl Protocol for Spin {
            type LocalState = ();
            fn num_processes(&self) -> usize {
                1
            }
            fn init(&self, _pid: Pid) {}
            fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
                (ObjId(0), Op::Read)
            }
            fn on_response(&self, _pid: Pid, _s: &(), _r: Value) -> Step<()> {
                Step::Continue(())
            }
        }
        let p = Spin;
        let objects = reg();
        let ex = Explorer::new(&p, &objects);
        let init = ex.initial_config();
        assert!(!solo_terminates(&ex, &init, Pid(0), 100).unwrap());
    }

    #[test]
    fn violation_display_forms() {
        let cases: Vec<Violation> = vec![
            Violation::Truncated,
            Violation::Agreement {
                config: 1,
                values: vec![int(0), int(1)],
            },
            Violation::Validity {
                config: 2,
                value: int(9),
            },
            Violation::UndecidedTerminal { config: 3 },
            Violation::SoloNonTermination {
                config: 4,
                pid: Pid(1),
            },
            Violation::Nontriviality { config: 5 },
            Violation::Runtime(RuntimeError::NoProcesses),
        ];
        for v in cases {
            assert!(!v.to_string().is_empty());
        }
    }
}
