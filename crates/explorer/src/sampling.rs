//! Randomized (sampled) checking — for instances beyond exhaustive reach.
//!
//! Exhaustive exploration covers *every* execution but is bounded to small
//! instances. This module trades the universal quantifier for scale: it runs
//! many seeded random schedules (with random outcome resolution for the
//! nondeterministic objects) and checks the safety properties on each run.
//! A violation comes back with its seed, so it replays deterministically; a
//! pass is *evidence*, never proof — the experiments use sampling only
//! above the exhaustive frontier, and say so.

use crate::stats::duration_us;
use lbsa_core::{AnyObject, Value};
use lbsa_runtime::error::RuntimeError;
use lbsa_runtime::outcome::RandomOutcome;
use lbsa_runtime::process::Protocol;
use lbsa_runtime::scheduler::RandomScheduler;
use lbsa_runtime::system::{RunEnd, System};
use lbsa_support::json::Json;
use lbsa_support::obs::Tracer;
use std::collections::BTreeSet;
use std::fmt;
use std::time::Instant;

/// Runs per `sample.batch` progress event on traced sweeps: coarse enough
/// that a default 1000-run sweep emits ten batch lines, fine enough that a
/// stalled sweep is visible long before `sample.end`.
const SAMPLE_BATCH: u64 = 100;

/// Parameters of a sampling sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleConfig {
    /// Number of seeded runs.
    pub runs: u64,
    /// First seed (runs use `seed0, seed0 + 1, …`).
    pub seed0: u64,
    /// Per-run step budget.
    pub max_steps: usize,
}

impl Default for SampleConfig {
    /// 1000 runs from seed 0, 100k steps each.
    fn default() -> Self {
        SampleConfig {
            runs: 1000,
            seed0: 0,
            max_steps: 100_000,
        }
    }
}

/// Outcome of a sampling sweep with no violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleReport {
    /// Runs executed.
    pub runs: u64,
    /// Runs that reached quiescence (everyone decided/halted).
    pub quiescent: u64,
    /// Runs stopped by the step budget (possible starvation — expected for
    /// protocols whose termination is conditional, like n-DAC retry loops).
    pub budget_hit: u64,
    /// Distinct full decision vectors observed across runs.
    pub distinct_outcomes: usize,
    /// Total steps across all runs.
    pub total_steps: usize,
}

/// A safety violation found by sampling, tagged with the reproducing seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleViolation {
    /// More distinct decisions than the problem allows.
    Agreement {
        /// The seed whose run violates (replay with `RandomScheduler::seeded`).
        seed: u64,
        /// The decided values.
        values: Vec<Value>,
    },
    /// A decided value outside the valid inputs.
    Validity {
        /// The reproducing seed.
        seed: u64,
        /// The offending value.
        value: Value,
    },
    /// The run itself errored (protocol bug).
    Runtime {
        /// The reproducing seed.
        seed: u64,
        /// The underlying error.
        error: RuntimeError,
    },
}

impl fmt::Display for SampleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleViolation::Agreement { seed, values } => {
                write!(f, "agreement violated on seed {seed}: decided {values:?}")
            }
            SampleViolation::Validity { seed, value } => {
                write!(f, "validity violated on seed {seed}: decided {value}")
            }
            SampleViolation::Runtime { seed, error } => {
                write!(f, "runtime error on seed {seed}: {error}")
            }
        }
    }
}

impl SampleViolation {
    /// The seed whose run reproduces this violation.
    #[must_use]
    pub fn seed(&self) -> u64 {
        match self {
            SampleViolation::Agreement { seed, .. }
            | SampleViolation::Validity { seed, .. }
            | SampleViolation::Runtime { seed, .. } => *seed,
        }
    }
}

impl std::error::Error for SampleViolation {}

/// Runs a sampling sweep checking the k-set-agreement **safety** properties
/// (k-Agreement and Validity) on every run. Termination is *not* checked —
/// the report counts quiescent vs budget-stopped runs instead, because
/// random schedules cannot distinguish starvation from slow progress.
///
/// # Errors
///
/// Returns the first [`SampleViolation`], tagged with its seed.
pub fn sample_k_set_agreement<P: Protocol>(
    protocol: &P,
    objects: &[AnyObject],
    k: usize,
    valid_inputs: &[Value],
    config: SampleConfig,
) -> Result<SampleReport, SampleViolation> {
    sample_k_set_agreement_traced(
        protocol,
        objects,
        k,
        valid_inputs,
        config,
        &Tracer::disabled(),
    )
}

/// [`sample_k_set_agreement`] with a [`Tracer`]: the sweep emits
/// `sample.begin` (parameters), one `sample.batch` progress event per
/// [`SAMPLE_BATCH`] runs (seeds tried, quiescent/budget split, elapsed),
/// and a final `sample.end` carrying the report — or, on a violation, the
/// violating seed and its description. An inert tracer makes this
/// byte-for-byte the untraced sweep.
///
/// # Errors
///
/// Returns the first [`SampleViolation`], tagged with its seed.
pub fn sample_k_set_agreement_traced<P: Protocol>(
    protocol: &P,
    objects: &[AnyObject],
    k: usize,
    valid_inputs: &[Value],
    config: SampleConfig,
    tracer: &Tracer,
) -> Result<SampleReport, SampleViolation> {
    let started = Instant::now();
    tracer.emit_with("sample.begin", || {
        Json::object()
            .set("runs", config.runs)
            .set("seed0", config.seed0)
            .set("max_steps", config.max_steps)
            .set("k", k)
    });
    let result = sample_sweep(protocol, objects, k, valid_inputs, config, tracer, started);
    match &result {
        Ok(report) => tracer.emit_with("sample.end", || {
            Json::object()
                .set("runs", report.runs)
                .set("quiescent", report.quiescent)
                .set("budget_hit", report.budget_hit)
                .set("distinct_outcomes", report.distinct_outcomes)
                .set("total_steps", report.total_steps)
                .set("violations", 0u64)
                .set("elapsed_us", duration_us(started.elapsed()))
        }),
        Err(violation) => tracer.emit_with("sample.end", || {
            Json::object()
                .set("violations", 1u64)
                .set("seed", violation.seed())
                .set("violation", violation.to_string())
                .set("elapsed_us", duration_us(started.elapsed()))
        }),
    }
    result
}

/// The sweep body shared by the traced and untraced entry points.
fn sample_sweep<P: Protocol>(
    protocol: &P,
    objects: &[AnyObject],
    k: usize,
    valid_inputs: &[Value],
    config: SampleConfig,
    tracer: &Tracer,
    started: Instant,
) -> Result<SampleReport, SampleViolation> {
    let mut report = SampleReport {
        runs: 0,
        quiescent: 0,
        budget_hit: 0,
        distinct_outcomes: 0,
        total_steps: 0,
    };
    let mut outcomes: BTreeSet<Vec<Option<Value>>> = BTreeSet::new();
    for i in 0..config.runs {
        let seed = config.seed0 + i;
        let mut sys = System::new(protocol, objects)
            .map_err(|error| SampleViolation::Runtime { seed, error })?;
        sys.set_record_trace(false);
        let result = sys
            .run(
                &mut RandomScheduler::seeded(seed),
                &mut RandomOutcome::seeded(seed ^ 0x5DEE_CE66),
                config.max_steps,
            )
            .map_err(|error| SampleViolation::Runtime { seed, error })?;
        report.runs += 1;
        report.total_steps += result.steps;
        match result.end {
            RunEnd::Quiescent => report.quiescent += 1,
            RunEnd::MaxSteps => report.budget_hit += 1,
            RunEnd::SchedulerStopped => {}
        }
        let decided = result.distinct_decisions();
        if decided.len() > k {
            return Err(SampleViolation::Agreement {
                seed,
                values: decided,
            });
        }
        for v in &decided {
            if !valid_inputs.contains(v) {
                return Err(SampleViolation::Validity { seed, value: *v });
            }
        }
        outcomes.insert(result.decisions);
        if report.runs.is_multiple_of(SAMPLE_BATCH) && report.runs < config.runs {
            tracer.emit_with("sample.batch", || {
                Json::object()
                    .set("batch", report.runs / SAMPLE_BATCH)
                    .set("seeds_tried", report.runs)
                    .set("quiescent", report.quiescent)
                    .set("budget_hit", report.budget_hit)
                    .set("violations", 0u64)
                    .set("elapsed_us", duration_us(started.elapsed()))
            });
        }
    }
    report.distinct_outcomes = outcomes.len();
    Ok(report)
}

/// Sampling sweep for consensus (`k = 1`).
///
/// # Errors
///
/// Returns the first [`SampleViolation`].
pub fn sample_consensus<P: Protocol>(
    protocol: &P,
    objects: &[AnyObject],
    valid_inputs: &[Value],
    config: SampleConfig,
) -> Result<SampleReport, SampleViolation> {
    sample_k_set_agreement(protocol, objects, 1, valid_inputs, config)
}

/// [`sample_consensus`] with a [`Tracer`] (see
/// [`sample_k_set_agreement_traced`] for the events).
///
/// # Errors
///
/// Returns the first [`SampleViolation`].
pub fn sample_consensus_traced<P: Protocol>(
    protocol: &P,
    objects: &[AnyObject],
    valid_inputs: &[Value],
    config: SampleConfig,
    tracer: &Tracer,
) -> Result<SampleReport, SampleViolation> {
    sample_k_set_agreement_traced(protocol, objects, 1, valid_inputs, config, tracer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::value::int;
    use lbsa_core::{ObjId, Op, Pid};
    use lbsa_runtime::process::Step;

    #[derive(Debug)]
    struct Race {
        inputs: Vec<Value>,
    }

    impl Protocol for Race {
        type LocalState = ();
        fn num_processes(&self) -> usize {
            self.inputs.len()
        }
        fn init(&self, _pid: Pid) {}
        fn pending_op(&self, pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Propose(self.inputs[pid.index()]))
        }
        fn on_response(&self, _pid: Pid, _s: &(), resp: Value) -> Step<()> {
            Step::Decide(resp)
        }
    }

    #[derive(Debug)]
    struct DecideOwn {
        inputs: Vec<Value>,
    }

    impl Protocol for DecideOwn {
        type LocalState = ();
        fn num_processes(&self) -> usize {
            self.inputs.len()
        }
        fn init(&self, _pid: Pid) {}
        fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Read)
        }
        fn on_response(&self, pid: Pid, _s: &(), _r: Value) -> Step<()> {
            Step::Decide(self.inputs[pid.index()])
        }
    }

    #[test]
    fn sampling_passes_correct_consensus_at_scale() {
        // 12 processes — far beyond exhaustive reach for a one-line test.
        let inputs: Vec<Value> = (0..12).map(|i| int(i % 2)).collect();
        let p = Race {
            inputs: inputs.clone(),
        };
        let objects = vec![AnyObject::consensus(12).unwrap()];
        let report = sample_consensus(
            &p,
            &objects,
            &inputs,
            SampleConfig {
                runs: 200,
                seed0: 0,
                max_steps: 10_000,
            },
        )
        .unwrap();
        assert_eq!(report.runs, 200);
        assert_eq!(report.quiescent, 200);
        assert_eq!(report.budget_hit, 0);
        // Either value can win depending on the schedule.
        assert!(report.distinct_outcomes >= 2, "{report:?}");
    }

    #[test]
    fn sampling_catches_agreement_violations_with_a_seed() {
        let inputs = vec![int(0), int(1)];
        let p = DecideOwn {
            inputs: inputs.clone(),
        };
        let objects = vec![AnyObject::register()];
        let err = sample_consensus(&p, &objects, &inputs, SampleConfig::default()).unwrap_err();
        match err {
            SampleViolation::Agreement { seed, values } => {
                assert_eq!(values.len(), 2);
                // The seed must reproduce the violation.
                let mut sys = System::new(&p, &objects).unwrap();
                let result = sys
                    .run(
                        &mut RandomScheduler::seeded(seed),
                        &mut RandomOutcome::seeded(seed ^ 0x5DEE_CE66),
                        100_000,
                    )
                    .unwrap();
                assert_eq!(result.distinct_decisions().len(), 2);
            }
            other => panic!("expected agreement violation, got {other}"),
        }
    }

    #[test]
    fn sampling_catches_validity_violations() {
        #[derive(Debug)]
        struct DecideConstant;
        impl Protocol for DecideConstant {
            type LocalState = ();
            fn num_processes(&self) -> usize {
                1
            }
            fn init(&self, _pid: Pid) {}
            fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
                (ObjId(0), Op::Read)
            }
            fn on_response(&self, _pid: Pid, _s: &(), _r: Value) -> Step<()> {
                Step::Decide(int(42))
            }
        }
        let err = sample_consensus(
            &DecideConstant,
            &[AnyObject::register()],
            &[int(0), int(1)],
            SampleConfig {
                runs: 5,
                seed0: 9,
                max_steps: 100,
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SampleViolation::Validity {
                value: Value::Int(42),
                ..
            }
        ));
    }

    #[test]
    fn budget_hits_are_reported_not_errors() {
        #[derive(Debug)]
        struct Spin;
        impl Protocol for Spin {
            type LocalState = ();
            fn num_processes(&self) -> usize {
                1
            }
            fn init(&self, _pid: Pid) {}
            fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
                (ObjId(0), Op::Read)
            }
            fn on_response(&self, _pid: Pid, _s: &(), _r: Value) -> Step<()> {
                Step::Continue(())
            }
        }
        let report = sample_consensus(
            &Spin,
            &[AnyObject::register()],
            &[],
            SampleConfig {
                runs: 3,
                seed0: 0,
                max_steps: 50,
            },
        )
        .unwrap();
        assert_eq!(report.budget_hit, 3);
        assert_eq!(report.quiescent, 0);
        assert_eq!(report.total_steps, 150);
    }

    #[test]
    fn traced_sweep_emits_begin_batches_and_end() {
        use lbsa_support::obs::MemorySink;
        let inputs: Vec<Value> = (0..4).map(|i| int(i % 2)).collect();
        let p = Race {
            inputs: inputs.clone(),
        };
        let objects = vec![AnyObject::consensus(4).unwrap()];
        let sink = MemorySink::new();
        let report = sample_consensus_traced(
            &p,
            &objects,
            &inputs,
            SampleConfig {
                runs: 250,
                seed0: 0,
                max_steps: 10_000,
            },
            &Tracer::new(sink.clone()),
        )
        .unwrap();
        assert_eq!(report.runs, 250);
        let names = sink.names();
        assert_eq!(names.first(), Some(&"sample.begin"));
        assert_eq!(names.last(), Some(&"sample.end"));
        assert_eq!(
            names.iter().filter(|n| **n == "sample.batch").count(),
            2,
            "250 runs at a 100-run batch emit 2 interim beats"
        );
        let events = sink.events();
        let begin = &events[0];
        assert_eq!(begin.fields.get("runs"), Some(&Json::Int(250)));
        assert_eq!(begin.fields.get("k"), Some(&Json::Int(1)));
        let batch = events
            .iter()
            .find(|e| e.name == "sample.batch")
            .expect("batch event");
        assert_eq!(batch.fields.get("seeds_tried"), Some(&Json::Int(100)));
        let end = events.last().expect("end event");
        assert_eq!(end.fields.get("violations"), Some(&Json::Int(0)));
        assert_eq!(end.fields.get("quiescent"), Some(&Json::Int(250)));
        assert!(end.fields.get("elapsed_us").is_some());
    }

    #[test]
    fn traced_sweep_reports_the_violating_seed_in_sample_end() {
        use lbsa_support::obs::MemorySink;
        let inputs = vec![int(0), int(1)];
        let p = DecideOwn {
            inputs: inputs.clone(),
        };
        let objects = vec![AnyObject::register()];
        let sink = MemorySink::new();
        let err = sample_consensus_traced(
            &p,
            &objects,
            &inputs,
            SampleConfig::default(),
            &Tracer::new(sink.clone()),
        )
        .unwrap_err();
        let events = sink.events();
        let end = events.last().expect("end event");
        assert_eq!(end.name, "sample.end");
        assert_eq!(end.fields.get("violations"), Some(&Json::Int(1)));
        assert_eq!(
            end.fields.get("seed").and_then(Json::as_i64),
            i64::try_from(err.seed()).ok(),
            "sample.end names the reproducing seed"
        );
        assert!(end
            .fields
            .get("violation")
            .and_then(Json::as_str)
            .is_some_and(|s| s.contains("seed")));
    }

    #[test]
    fn violation_display() {
        let v = SampleViolation::Agreement {
            seed: 7,
            values: vec![int(0), int(1)],
        };
        assert!(v.to_string().contains("seed 7"));
        let v = SampleViolation::Validity {
            seed: 8,
            value: int(9),
        };
        assert!(v.to_string().contains("validity"));
    }
}
