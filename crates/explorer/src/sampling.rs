//! Randomized (sampled) checking — for instances beyond exhaustive reach.
//!
//! Exhaustive exploration covers *every* execution but is bounded to small
//! instances. This module trades the universal quantifier for scale: it runs
//! many seeded random schedules (with random outcome resolution for the
//! nondeterministic objects) and checks the safety properties on each run.
//! A violation comes back with its seed, so it replays deterministically; a
//! pass is *evidence*, never proof — [`sample_confidence`] quantifies how
//! much evidence — and the experiments use sampling only above the
//! exhaustive frontier, and say so.
//!
//! # Parallel engine
//!
//! The sweep shards the seed range across workers by stride: worker `w` of
//! `t` takes seeds `seed0 + w, seed0 + w + t, …` in increasing order, so
//! every worker owns a disjoint slice and the union is exactly
//! `seed0 .. seed0 + runs` regardless of `t`. Violation selection is
//! **lowest-seed-wins** through a shared atomic minimum: a worker stops
//! only when its next seed offset is at or above the lowest violating
//! offset found so far, which guarantees every seed below the final
//! minimum was actually executed (and found clean). The reported
//! violation — and on a clean sweep the merged [`SampleReport`] — is
//! therefore identical at every thread count.
//!
//! Entry points are tracer-aware ([`lbsa_support::obs::Tracer::disabled`]
//! is free). For a [`Verdict`](crate::Verdict) with a confidence-bounded
//! outcome and a replayable [`Witness`](crate::Witness) on violation, go
//! through the builder instead:
//! [`Exploration::sample`](crate::Exploration::sample) — which also
//! supports live progress streaming via
//! [`Exploration::progress_every`](crate::Exploration::progress_every).

use crate::live::LiveMetrics;
use crate::stats::{duration_us, SampleWorkerStats};
use lbsa_core::{AnyObject, Value};
use lbsa_runtime::error::RuntimeError;
use lbsa_runtime::outcome::RandomOutcome;
use lbsa_runtime::process::Protocol;
use lbsa_runtime::scheduler::RandomScheduler;
use lbsa_runtime::system::{RunEnd, RunResult, System};
use lbsa_support::json::Json;
use lbsa_support::obs::{HistogramNs, Tracer};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Runs per `sample.batch` progress event on traced sweeps: coarse enough
/// that a default 1000-run sweep emits ten batch lines, fine enough that a
/// stalled sweep is visible long before `sample.end`.
const SAMPLE_BATCH: u64 = 100;

/// XOR'd into the seed to derive the outcome-resolver stream from the
/// scheduler stream, so the two [`SmallRng`](lbsa_support::rng::SmallRng)s
/// never walk in lockstep. Replaying a sampled run by hand needs the same
/// constant: `RandomOutcome::seeded(seed ^ OUTCOME_SEED_XOR)`.
pub const OUTCOME_SEED_XOR: u64 = 0x5DEE_CE66;

/// Significance level of the [`sample_confidence`] bound (one-sided 95%
/// Clopper–Pearson).
pub const SAMPLE_ALPHA: f64 = 0.05;

/// The confidence carried by a clean sweep of `runs` seeded schedules.
///
/// With zero violations in `n` independent runs, the one-sided
/// Clopper–Pearson upper bound on the per-schedule violation probability
/// `p` at significance α is `p ≤ 1 − α^(1/n)`; this returns the
/// complementary confidence `α^(1/n) = 1 − bound`. Read it as: unless an
/// event of probability below α occurred, a uniformly sampled schedule
/// violates with probability at most `1 − sample_confidence(runs)`.
/// 1000 runs give ≈ 0.997 (violation rate below 0.3%). Note the bound is
/// about the *sampled* schedule distribution — rare adversarial
/// interleavings can still hide below it, which is why a pass is evidence,
/// never proof.
#[must_use]
pub fn sample_confidence(runs: u64) -> f64 {
    if runs == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    SAMPLE_ALPHA.powf(1.0 / runs as f64)
}

/// Parameters of a sampling sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleConfig {
    /// Number of seeded runs.
    pub runs: u64,
    /// First seed (runs use `seed0, seed0 + 1, …`).
    pub seed0: u64,
    /// Per-run step budget.
    pub max_steps: usize,
    /// Worker threads sharding the seed range. `0` means auto, resolved
    /// exactly like [`ExploreOptions::resolved_threads`]
    /// (`LBSA_EXPLORE_THREADS`, then available cores capped by
    /// `LBSA_EXPLORE_MAX_THREADS`). The verdict, the violating seed, and
    /// the merged report never depend on this — only wall-clock does.
    ///
    /// [`ExploreOptions::resolved_threads`]: crate::ExploreOptions::resolved_threads
    pub threads: usize,
    /// Adaptive budget target, in parts per billion of confidence (`0`
    /// disables it). When set via [`SampleConfig::target_confidence`], the
    /// sweep executes only as many runs as a clean sweep needs for
    /// [`sample_confidence`] to reach the target — capped at `runs`, never
    /// fewer than one. Stored as an integer so the config stays `Copy`/`Eq`
    /// (the 1e-9 quantization is far below anything [`SAMPLE_ALPHA`] can
    /// resolve).
    pub target_confidence_ppb: u64,
}

impl Default for SampleConfig {
    /// 1000 runs from seed 0, 100k steps each, auto thread count, no
    /// confidence target.
    fn default() -> Self {
        SampleConfig {
            runs: 1000,
            seed0: 0,
            max_steps: 100_000,
            threads: 0,
            target_confidence_ppb: 0,
        }
    }
}

impl SampleConfig {
    /// Sets an adaptive budget: stop after the minimal clean-run count
    /// whose [`sample_confidence`] reaches `target` (clamped to
    /// `0.0..=1.0`), instead of always burning the full `runs`. The cutoff
    /// is a pure function of the target — `n* = ⌈ln α / ln target⌉` — so
    /// the executed seed set, the report, and the verdict stay independent
    /// of the thread count. A target at or above `1.0` (unreachable by any
    /// finite sweep) leaves the full budget in force.
    #[must_use]
    pub fn target_confidence(mut self, target: f64) -> Self {
        let clamped = if target.is_finite() {
            target.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.target_confidence_ppb = (clamped * 1e9).round() as u64;
        self
    }

    /// The run count this sweep actually executes: `runs`, shrunk to the
    /// minimal count reaching the confidence target when one is set (see
    /// [`SampleConfig::target_confidence`]).
    #[must_use]
    pub fn effective_runs(&self) -> u64 {
        let ppb = self.target_confidence_ppb;
        if ppb == 0 || ppb >= 1_000_000_000 {
            return self.runs;
        }
        let target = ppb as f64 / 1e9;
        // sample_confidence(n) = α^(1/n) ≥ target  ⇔  n ≥ ln α / ln target
        // (both logs negative). Guard the n* = 1 edge where ln target → 0.
        let needed = (SAMPLE_ALPHA.ln() / target.ln()).ceil();
        let needed = if needed.is_finite() && needed >= 1.0 {
            needed as u64
        } else {
            1
        };
        self.runs.min(needed.max(1))
    }
    /// The concrete worker count a sweep with this config uses: the
    /// resolved thread count, never more than one worker per run.
    #[must_use]
    pub fn resolved_threads(&self) -> usize {
        let auto = crate::ExploreOptions {
            threads: self.threads,
            ..crate::ExploreOptions::default()
        }
        .resolved_threads();
        usize::try_from(self.runs)
            .unwrap_or(usize::MAX)
            .clamp(1, auto.max(1))
    }
}

/// Outcome of a sampling sweep with no violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleReport {
    /// Runs executed.
    pub runs: u64,
    /// Runs that reached quiescence (everyone decided/halted).
    pub quiescent: u64,
    /// Runs stopped by the step budget (possible starvation — expected for
    /// protocols whose termination is conditional, like n-DAC retry loops).
    pub budget_hit: u64,
    /// Distinct full decision vectors observed across runs.
    pub distinct_outcomes: usize,
    /// Total steps across all runs.
    pub total_steps: usize,
    /// `true` when a confidence target (see
    /// [`SampleConfig::target_confidence`]) cut the sweep short of the
    /// configured `runs` budget.
    pub stopped_early: bool,
}

/// A safety violation found by sampling, tagged with the reproducing seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleViolation {
    /// More distinct decisions than the problem allows.
    Agreement {
        /// The seed whose run violates (replay with `RandomScheduler::seeded`).
        seed: u64,
        /// The decided values.
        values: Vec<Value>,
    },
    /// A decided value outside the valid inputs.
    Validity {
        /// The reproducing seed.
        seed: u64,
        /// The offending value.
        value: Value,
    },
    /// The run itself errored (protocol bug).
    Runtime {
        /// The reproducing seed.
        seed: u64,
        /// The underlying error.
        error: RuntimeError,
    },
}

impl fmt::Display for SampleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleViolation::Agreement { seed, values } => {
                write!(f, "agreement violated on seed {seed}: decided {values:?}")
            }
            SampleViolation::Validity { seed, value } => {
                write!(f, "validity violated on seed {seed}: decided {value}")
            }
            SampleViolation::Runtime { seed, error } => {
                write!(f, "runtime error on seed {seed}: {error}")
            }
        }
    }
}

impl SampleViolation {
    /// The seed whose run reproduces this violation.
    #[must_use]
    pub fn seed(&self) -> u64 {
        match self {
            SampleViolation::Agreement { seed, .. }
            | SampleViolation::Validity { seed, .. }
            | SampleViolation::Runtime { seed, .. } => *seed,
        }
    }
}

impl std::error::Error for SampleViolation {}

/// Runs a sampling sweep checking the k-set-agreement **safety** properties
/// (k-Agreement and Validity) on every run. Termination is *not* checked —
/// the report counts quiescent vs budget-stopped runs instead, because
/// random schedules cannot distinguish starvation from slow progress.
///
/// The sweep emits `sample.begin` (parameters), one `sample.batch`
/// progress event per [`SAMPLE_BATCH`] runs of each worker (seeds tried,
/// quiescent/budget split, elapsed), one `sample.worker` summary per
/// worker after the join, and a final `sample.end` carrying the merged
/// report with per-run latency quantiles — or, on a violation, the
/// violating seed and its description. [`Tracer::disabled`] makes all of
/// that free.
///
/// # Errors
///
/// Returns the lowest-seed [`SampleViolation`] — deterministic at every
/// thread count (see the module docs for why).
pub fn sample_k_set_agreement<P: Protocol>(
    protocol: &P,
    objects: &[AnyObject],
    k: usize,
    valid_inputs: &[Value],
    config: SampleConfig,
    tracer: &Tracer,
) -> Result<SampleReport, SampleViolation> {
    sample_k_set_agreement_live(protocol, objects, k, valid_inputs, config, tracer, None)
}

/// [`sample_k_set_agreement`] with live-metrics handles: the builder's
/// check terminals route here so a sweep under
/// [`Exploration::progress_every`](crate::Exploration::progress_every)
/// keeps `sample.runs` (one relaxed bump per run) and the
/// `sample.runs_total` budget gauge current for the progress watcher.
///
/// # Errors
///
/// Returns the lowest-seed [`SampleViolation`].
pub(crate) fn sample_k_set_agreement_live<P: Protocol>(
    protocol: &P,
    objects: &[AnyObject],
    k: usize,
    valid_inputs: &[Value],
    config: SampleConfig,
    tracer: &Tracer,
    live: Option<&LiveMetrics>,
) -> Result<SampleReport, SampleViolation> {
    let started = Instant::now();
    // An adaptive budget shrinks the sweep before any scheduling happens:
    // the executed seed set is a pure function of the config, so verdicts
    // stay thread-count-independent.
    let budget = config.runs;
    let stopped_early = config.effective_runs() < budget;
    let config = SampleConfig {
        runs: config.effective_runs(),
        ..config
    };
    let threads = config.resolved_threads();
    if let Some(live) = live {
        live.sample_runs_total
            .set(i64::try_from(config.runs).unwrap_or(i64::MAX));
        live.workers.set_usize(threads);
    }
    tracer.emit_with("sample.begin", || {
        Json::object()
            .set("runs", config.runs)
            .set("budget_runs", budget)
            .set("target_confidence_ppb", config.target_confidence_ppb)
            .set("stopped_early", stopped_early)
            .set("seed0", config.seed0)
            .set("max_steps", config.max_steps)
            .set("threads", threads)
            .set("k", k)
    });
    let shared = SweepShared {
        protocol,
        objects,
        k,
        valid_inputs,
        config,
        tracer,
        live,
        started,
        stride: threads as u64,
        stop: AtomicU64::new(u64::MAX),
    };
    let sweeps: Vec<WorkerSweep> = if threads <= 1 {
        vec![worker_sweep(&shared, 0)]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let sh = &shared;
                    s.spawn(move || worker_sweep(sh, w))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sampler worker panicked"))
                .collect()
        })
    };

    let mut report = SampleReport {
        runs: 0,
        quiescent: 0,
        budget_hit: 0,
        distinct_outcomes: 0,
        total_steps: 0,
        stopped_early,
    };
    let mut outcomes: BTreeSet<Vec<Option<Value>>> = BTreeSet::new();
    let run_ns = HistogramNs::new();
    let mut best: Option<(u64, SampleViolation)> = None;
    for w in &sweeps {
        tracer.emit_with("sample.worker", || w.stats.to_json());
        report.runs += w.stats.runs;
        report.quiescent += w.stats.quiescent;
        report.budget_hit += w.stats.budget_hit;
        report.total_steps += w.stats.total_steps;
        run_ns.merge(&w.run_ns);
    }
    for w in sweeps {
        outcomes.extend(w.outcomes);
        if let Some((offset, v)) = w.violation {
            if best.as_ref().is_none_or(|(b, _)| offset < *b) {
                best = Some((offset, v));
            }
        }
    }

    match best {
        Some((_, violation)) => {
            tracer.emit_with("sample.end", || {
                Json::object()
                    .set("violations", 1u64)
                    .set("seed", violation.seed())
                    .set("violation", violation.to_string())
                    .set("threads", threads)
                    .set("elapsed_us", duration_us(started.elapsed()))
            });
            Err(violation)
        }
        None => {
            report.distinct_outcomes = outcomes.len();
            tracer.emit_with("sample.end", || {
                let mut out = Json::object()
                    .set("runs", report.runs)
                    .set("quiescent", report.quiescent)
                    .set("budget_hit", report.budget_hit)
                    .set("distinct_outcomes", report.distinct_outcomes)
                    .set("total_steps", report.total_steps)
                    .set("stopped_early", report.stopped_early)
                    .set("violations", 0u64)
                    .set("threads", threads)
                    .set("elapsed_us", duration_us(started.elapsed()));
                if !run_ns.is_empty() {
                    out = out
                        .set("run_p50_ns", run_ns.p50())
                        .set("run_p95_ns", run_ns.p95())
                        .set("run_p99_ns", run_ns.p99());
                }
                out
            });
            Ok(report)
        }
    }
}

/// Sampling sweep for consensus (`k = 1`); see [`sample_k_set_agreement`].
///
/// # Errors
///
/// Returns the lowest-seed [`SampleViolation`].
pub fn sample_consensus<P: Protocol>(
    protocol: &P,
    objects: &[AnyObject],
    valid_inputs: &[Value],
    config: SampleConfig,
    tracer: &Tracer,
) -> Result<SampleReport, SampleViolation> {
    sample_k_set_agreement(protocol, objects, 1, valid_inputs, config, tracer)
}

/// Everything the workers share, borrowed across the scoped spawn.
struct SweepShared<'a, P: Protocol> {
    protocol: &'a P,
    objects: &'a [AnyObject],
    k: usize,
    valid_inputs: &'a [Value],
    config: SampleConfig,
    tracer: &'a Tracer,
    /// Live-metrics handles for the progress watcher, when the sweep runs
    /// under an observed builder.
    live: Option<&'a LiveMetrics>,
    started: Instant,
    /// Seed-offset stride between a worker's consecutive runs (= threads).
    stride: u64,
    /// Lowest violating seed offset found so far, `u64::MAX` when clean.
    /// Workers stop once their next offset is at or above it.
    stop: AtomicU64,
}

/// One worker's share of a sweep, merged by the caller after the join.
struct WorkerSweep {
    stats: SampleWorkerStats,
    outcomes: BTreeSet<Vec<Option<Value>>>,
    /// This worker's lowest violating `(seed offset, violation)`, if any.
    violation: Option<(u64, SampleViolation)>,
    /// Per-run wall-clock latency.
    run_ns: HistogramNs,
}

/// One seeded run: fresh system, seeded scheduler and outcome resolver.
fn run_one<P: Protocol>(sh: &SweepShared<'_, P>, seed: u64) -> Result<RunResult, RuntimeError> {
    let mut sys = System::new(sh.protocol, sh.objects)?;
    sys.set_record_trace(false);
    sys.run(
        &mut RandomScheduler::seeded(seed),
        &mut RandomOutcome::seeded(seed ^ OUTCOME_SEED_XOR),
        sh.config.max_steps,
    )
}

/// The per-worker sweep body: walks seed offsets `worker, worker + stride,
/// …` in increasing order, stopping early only when a violation at a lower
/// offset is already known (its own or, via `stop`, another worker's).
fn worker_sweep<P: Protocol>(sh: &SweepShared<'_, P>, worker: usize) -> WorkerSweep {
    let begun = Instant::now();
    let mut w = WorkerSweep {
        stats: SampleWorkerStats::new(worker),
        outcomes: BTreeSet::new(),
        violation: None,
        run_ns: HistogramNs::new(),
    };
    let mut offset = worker as u64;
    while offset < sh.config.runs {
        if offset >= sh.stop.load(Ordering::SeqCst) {
            break;
        }
        let seed = sh.config.seed0.wrapping_add(offset);
        let run_started = Instant::now();
        let found = match run_one(sh, seed) {
            Err(error) => Some(SampleViolation::Runtime { seed, error }),
            Ok(result) => {
                w.run_ns.record(run_started.elapsed());
                w.stats.runs += 1;
                if let Some(live) = sh.live {
                    live.sample_runs.bump();
                }
                w.stats.total_steps += result.steps;
                match result.end {
                    RunEnd::Quiescent => w.stats.quiescent += 1,
                    RunEnd::MaxSteps => w.stats.budget_hit += 1,
                    RunEnd::SchedulerStopped => {}
                }
                let decided = result.distinct_decisions();
                if decided.len() > sh.k {
                    Some(SampleViolation::Agreement {
                        seed,
                        values: decided,
                    })
                } else if let Some(v) = decided.iter().find(|v| !sh.valid_inputs.contains(v)) {
                    Some(SampleViolation::Validity { seed, value: *v })
                } else {
                    w.outcomes.insert(result.decisions);
                    None
                }
            }
        };
        if let Some(violation) = found {
            // Remaining offsets are all higher — nothing left to win.
            sh.stop.fetch_min(offset, Ordering::SeqCst);
            w.violation = Some((offset, violation));
            break;
        }
        if w.stats.runs.is_multiple_of(SAMPLE_BATCH) && offset + sh.stride < sh.config.runs {
            sh.tracer.emit_with("sample.batch", || {
                Json::object()
                    .set("batch", w.stats.runs / SAMPLE_BATCH)
                    .set("worker", worker)
                    .set("seeds_tried", w.stats.runs)
                    .set("quiescent", w.stats.quiescent)
                    .set("budget_hit", w.stats.budget_hit)
                    .set("violations", 0u64)
                    .set("elapsed_us", duration_us(sh.started.elapsed()))
            });
        }
        offset += sh.stride;
    }
    w.stats.busy = begun.elapsed();
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::value::int;
    use lbsa_core::{ObjId, Op, Pid};
    use lbsa_runtime::process::Step;

    #[derive(Debug)]
    struct Race {
        inputs: Vec<Value>,
    }

    impl Protocol for Race {
        type LocalState = ();
        fn num_processes(&self) -> usize {
            self.inputs.len()
        }
        fn init(&self, _pid: Pid) {}
        fn pending_op(&self, pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Propose(self.inputs[pid.index()]))
        }
        fn on_response(&self, _pid: Pid, _s: &(), resp: Value) -> Step<()> {
            Step::Decide(resp)
        }
    }

    #[derive(Debug)]
    struct DecideOwn {
        inputs: Vec<Value>,
    }

    impl Protocol for DecideOwn {
        type LocalState = ();
        fn num_processes(&self) -> usize {
            self.inputs.len()
        }
        fn init(&self, _pid: Pid) {}
        fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Read)
        }
        fn on_response(&self, pid: Pid, _s: &(), _r: Value) -> Step<()> {
            Step::Decide(self.inputs[pid.index()])
        }
    }

    #[test]
    fn sampling_passes_correct_consensus_at_scale() {
        // 12 processes — far beyond exhaustive reach for a one-line test.
        let inputs: Vec<Value> = (0..12).map(|i| int(i % 2)).collect();
        let p = Race {
            inputs: inputs.clone(),
        };
        let objects = vec![AnyObject::consensus(12).unwrap()];
        let report = sample_consensus(
            &p,
            &objects,
            &inputs,
            SampleConfig {
                runs: 200,
                seed0: 0,
                max_steps: 10_000,
                ..SampleConfig::default()
            },
            &Tracer::disabled(),
        )
        .unwrap();
        assert_eq!(report.runs, 200);
        assert_eq!(report.quiescent, 200);
        assert_eq!(report.budget_hit, 0);
        // Either value can win depending on the schedule.
        assert!(report.distinct_outcomes >= 2, "{report:?}");
    }

    #[test]
    fn sampling_catches_agreement_violations_with_a_seed() {
        let inputs = vec![int(0), int(1)];
        let p = DecideOwn {
            inputs: inputs.clone(),
        };
        let objects = vec![AnyObject::register()];
        let err = sample_consensus(
            &p,
            &objects,
            &inputs,
            SampleConfig::default(),
            &Tracer::disabled(),
        )
        .unwrap_err();
        match err {
            SampleViolation::Agreement { seed, values } => {
                assert_eq!(values.len(), 2);
                // The seed must reproduce the violation.
                let mut sys = System::new(&p, &objects).unwrap();
                let result = sys
                    .run(
                        &mut RandomScheduler::seeded(seed),
                        &mut RandomOutcome::seeded(seed ^ OUTCOME_SEED_XOR),
                        100_000,
                    )
                    .unwrap();
                assert_eq!(result.distinct_decisions().len(), 2);
            }
            other => panic!("expected agreement violation, got {other}"),
        }
    }

    #[test]
    fn sampling_catches_validity_violations() {
        #[derive(Debug)]
        struct DecideConstant;
        impl Protocol for DecideConstant {
            type LocalState = ();
            fn num_processes(&self) -> usize {
                1
            }
            fn init(&self, _pid: Pid) {}
            fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
                (ObjId(0), Op::Read)
            }
            fn on_response(&self, _pid: Pid, _s: &(), _r: Value) -> Step<()> {
                Step::Decide(int(42))
            }
        }
        let err = sample_consensus(
            &DecideConstant,
            &[AnyObject::register()],
            &[int(0), int(1)],
            SampleConfig {
                runs: 5,
                seed0: 9,
                max_steps: 100,
                ..SampleConfig::default()
            },
            &Tracer::disabled(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SampleViolation::Validity {
                value: Value::Int(42),
                ..
            }
        ));
    }

    #[test]
    fn budget_hits_are_reported_not_errors() {
        #[derive(Debug)]
        struct Spin;
        impl Protocol for Spin {
            type LocalState = ();
            fn num_processes(&self) -> usize {
                1
            }
            fn init(&self, _pid: Pid) {}
            fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
                (ObjId(0), Op::Read)
            }
            fn on_response(&self, _pid: Pid, _s: &(), _r: Value) -> Step<()> {
                Step::Continue(())
            }
        }
        let report = sample_consensus(
            &Spin,
            &[AnyObject::register()],
            &[],
            SampleConfig {
                runs: 3,
                seed0: 0,
                max_steps: 50,
                ..SampleConfig::default()
            },
            &Tracer::disabled(),
        )
        .unwrap();
        assert_eq!(report.budget_hit, 3);
        assert_eq!(report.quiescent, 0);
        assert_eq!(report.total_steps, 150);
    }

    #[test]
    fn clean_sweep_reports_are_thread_count_independent() {
        let inputs: Vec<Value> = (0..6).map(|i| int(i % 2)).collect();
        let p = Race {
            inputs: inputs.clone(),
        };
        let objects = vec![AnyObject::consensus(6).unwrap()];
        let config = SampleConfig {
            runs: 120,
            seed0: 3,
            max_steps: 10_000,
            threads: 1,
            ..SampleConfig::default()
        };
        let base = sample_consensus(&p, &objects, &inputs, config, &Tracer::disabled()).unwrap();
        for threads in [2, 4, 8] {
            let report = sample_consensus(
                &p,
                &objects,
                &inputs,
                SampleConfig { threads, ..config },
                &Tracer::disabled(),
            )
            .unwrap();
            assert_eq!(report, base, "report drifted at {threads} threads");
        }
    }

    #[test]
    fn violating_seed_is_thread_count_independent() {
        let inputs = vec![int(0), int(1), int(2)];
        let p = DecideOwn {
            inputs: inputs.clone(),
        };
        let objects = vec![AnyObject::register()];
        let config = SampleConfig {
            runs: 400,
            seed0: 17,
            max_steps: 1_000,
            threads: 1,
            ..SampleConfig::default()
        };
        let base =
            sample_consensus(&p, &objects, &inputs, config, &Tracer::disabled()).unwrap_err();
        for threads in [2, 4, 8] {
            let err = sample_consensus(
                &p,
                &objects,
                &inputs,
                SampleConfig { threads, ..config },
                &Tracer::disabled(),
            )
            .unwrap_err();
            assert_eq!(err, base, "violation drifted at {threads} threads");
        }
    }

    #[test]
    fn confidence_grows_with_runs_and_matches_clopper_pearson() {
        assert_eq!(sample_confidence(0), 0.0);
        let c1000 = sample_confidence(1000);
        assert!((c1000 - 0.997_008).abs() < 1e-4, "{c1000}");
        assert!(sample_confidence(100) < c1000);
        assert!(c1000 < sample_confidence(10_000));
        // confidence = 1 − (Clopper–Pearson upper bound at 0 failures).
        let upper = 1.0 - SAMPLE_ALPHA.powf(1.0 / 1000.0);
        assert!((c1000 - (1.0 - upper)).abs() < 1e-12);
    }

    #[test]
    fn traced_sweep_emits_begin_batches_and_end() {
        use lbsa_support::obs::MemorySink;
        let inputs: Vec<Value> = (0..4).map(|i| int(i % 2)).collect();
        let p = Race {
            inputs: inputs.clone(),
        };
        let objects = vec![AnyObject::consensus(4).unwrap()];
        let sink = MemorySink::new();
        let report = sample_consensus(
            &p,
            &objects,
            &inputs,
            SampleConfig {
                runs: 250,
                seed0: 0,
                max_steps: 10_000,
                threads: 1,
                ..SampleConfig::default()
            },
            &Tracer::new(sink.clone()),
        )
        .unwrap();
        assert_eq!(report.runs, 250);
        let names = sink.names();
        assert_eq!(names.first(), Some(&"sample.begin"));
        assert_eq!(names.last(), Some(&"sample.end"));
        assert_eq!(
            names.iter().filter(|n| **n == "sample.batch").count(),
            2,
            "250 runs at a 100-run batch emit 2 interim beats"
        );
        assert_eq!(
            names.iter().filter(|n| **n == "sample.worker").count(),
            1,
            "single-threaded sweeps still summarize their one worker"
        );
        let events = sink.events();
        let begin = &events[0];
        assert_eq!(begin.fields.get("runs"), Some(&Json::Int(250)));
        assert_eq!(begin.fields.get("k"), Some(&Json::Int(1)));
        assert_eq!(begin.fields.get("threads"), Some(&Json::Int(1)));
        let batch = events
            .iter()
            .find(|e| e.name == "sample.batch")
            .expect("batch event");
        assert_eq!(batch.fields.get("seeds_tried"), Some(&Json::Int(100)));
        assert_eq!(batch.fields.get("worker"), Some(&Json::Int(0)));
        let worker = events
            .iter()
            .find(|e| e.name == "sample.worker")
            .expect("worker event");
        assert_eq!(worker.fields.get("runs"), Some(&Json::Int(250)));
        let end = events.last().expect("end event");
        assert_eq!(end.fields.get("violations"), Some(&Json::Int(0)));
        assert_eq!(end.fields.get("quiescent"), Some(&Json::Int(250)));
        assert!(end.fields.get("elapsed_us").is_some());
        assert!(end.fields.get("run_p50_ns").is_some());
    }

    #[test]
    fn traced_sweep_reports_the_violating_seed_in_sample_end() {
        use lbsa_support::obs::MemorySink;
        let inputs = vec![int(0), int(1)];
        let p = DecideOwn {
            inputs: inputs.clone(),
        };
        let objects = vec![AnyObject::register()];
        let sink = MemorySink::new();
        let err = sample_consensus(
            &p,
            &objects,
            &inputs,
            SampleConfig::default(),
            &Tracer::new(sink.clone()),
        )
        .unwrap_err();
        let events = sink.events();
        let end = events.last().expect("end event");
        assert_eq!(end.name, "sample.end");
        assert_eq!(end.fields.get("violations"), Some(&Json::Int(1)));
        assert_eq!(
            end.fields.get("seed").and_then(Json::as_i64),
            i64::try_from(err.seed()).ok(),
            "sample.end names the reproducing seed"
        );
        assert!(end
            .fields
            .get("violation")
            .and_then(Json::as_str)
            .is_some_and(|s| s.contains("seed")));
    }

    #[test]
    fn live_sweep_mirrors_runs_into_the_registry() {
        use lbsa_support::obs::Registry;
        let inputs = vec![int(0), int(1)];
        let p = DecideOwn {
            inputs: inputs.clone(),
        };
        let objects = vec![AnyObject::register()];
        let registry = Registry::new();
        let live = LiveMetrics::register(&registry);
        let config = SampleConfig {
            runs: 300,
            threads: 2,
            ..SampleConfig::default()
        };
        let report = sample_k_set_agreement_live(
            &p,
            &objects,
            2,
            &inputs,
            config,
            &Tracer::disabled(),
            Some(&live),
        )
        .expect("clean sweep");
        assert_eq!(report.runs, 300);
        assert_eq!(live.sample_runs.get(), 300, "one bump per completed run");
        assert_eq!(live.sample_runs_total.get(), 300, "budget gauge set");
        // The plain entry point leaves the registry untouched.
        let base =
            sample_k_set_agreement(&p, &objects, 2, &inputs, config, &Tracer::disabled()).unwrap();
        assert_eq!(base, report);
        assert_eq!(live.sample_runs.get(), 300);
    }

    #[test]
    fn violation_display() {
        let v = SampleViolation::Agreement {
            seed: 7,
            values: vec![int(0), int(1)],
        };
        assert!(v.to_string().contains("seed 7"));
        let v = SampleViolation::Validity {
            seed: 8,
            value: int(9),
        };
        assert!(v.to_string().contains("validity"));
    }

    #[test]
    fn effective_runs_is_the_minimal_count_reaching_the_target() {
        // No target: the full budget stands.
        assert_eq!(SampleConfig::default().effective_runs(), 1000);
        // 0.95 needs n* = ⌈ln 0.05 / ln 0.95⌉ = 59 clean runs …
        let c = SampleConfig::default().target_confidence(0.95);
        assert_eq!(c.effective_runs(), 59);
        assert!(sample_confidence(59) >= 0.95);
        assert!(sample_confidence(58) < 0.95);
        // … but never more than the configured budget,
        let tight = SampleConfig {
            runs: 10,
            ..SampleConfig::default()
        }
        .target_confidence(0.95);
        assert_eq!(tight.effective_runs(), 10);
        // and never fewer than one run even for trivial targets (a target
        // below the 1 ppb quantum rounds to "no target" and runs in full).
        assert_eq!(SampleConfig::default().target_confidence(0.0).runs, 1000);
        assert_eq!(
            SampleConfig::default()
                .target_confidence(1e-9)
                .effective_runs(),
            1
        );
        assert_eq!(
            SampleConfig::default()
                .target_confidence(1e-12)
                .effective_runs(),
            1000
        );
        // A target of 1.0 is unreachable by any finite sweep: full budget.
        assert_eq!(
            SampleConfig::default()
                .target_confidence(1.0)
                .effective_runs(),
            1000
        );
        assert_eq!(
            SampleConfig::default()
                .target_confidence(f64::NAN)
                .effective_runs(),
            1000
        );
    }

    #[test]
    fn target_confidence_stops_early_and_stays_thread_count_independent() {
        let inputs: Vec<Value> = (0..6).map(|i| int(i % 2)).collect();
        let p = Race {
            inputs: inputs.clone(),
        };
        let objects = vec![AnyObject::consensus(6).unwrap()];
        let config = SampleConfig {
            runs: 500,
            seed0: 3,
            max_steps: 10_000,
            threads: 1,
            ..SampleConfig::default()
        }
        .target_confidence(0.95);
        let base = sample_consensus(&p, &objects, &inputs, config, &Tracer::disabled()).unwrap();
        assert_eq!(base.runs, 59, "adaptive budget should cut 500 to 59");
        assert!(base.stopped_early);
        for threads in [2, 4, 8] {
            let report = sample_consensus(
                &p,
                &objects,
                &inputs,
                SampleConfig { threads, ..config },
                &Tracer::disabled(),
            )
            .unwrap();
            assert_eq!(report, base, "report drifted at {threads} threads");
        }
        // A budget already below the cutoff runs in full, not early-stopped.
        let small = SampleConfig { runs: 20, ..config };
        let report = sample_consensus(&p, &objects, &inputs, small, &Tracer::disabled()).unwrap();
        assert_eq!(report.runs, 20);
        assert!(!report.stopped_early);
    }
}
