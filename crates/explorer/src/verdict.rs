//! Typed verdicts with replayable, minimized counterexample witnesses.
//!
//! The checkers in [`crate::checker`] answer with `Result<CheckStats,
//! Violation>` — enough to know *that* a property failed, but not to hand
//! anyone evidence. This module is the reporting layer on top: every check
//! returns a [`Verdict`] whose negative answers carry a [`Witness`] — a
//! schedule (pid + chosen object outcome per step, the same labelling as
//! [`crate::explore::Edge`]) that
//!
//! 1. **replays deterministically**: [`Witness::replay`] re-executes it step
//!    by step through [`crate::explore::Explorer::step`], rebuilding the
//!    object-level [`lbsa_runtime::trace::Trace`];
//! 2. **is delta-minimized**: the schedule is cut to the shortest failing
//!    prefix (for state-predicate violations) or re-routed through the
//!    BFS-shortest prefix (for cycle witnesses), and minimization never
//!    lengthens it;
//! 3. **confirms the violation**: [`Witness::confirm`] replays and then
//!    re-evaluates the violated property on the replayed configuration,
//!    failing with [`CheckError::WitnessDiverged`] if the schedule no longer
//!    demonstrates the violation.
//!
//! Verdicts and witnesses serialize to the `reports/*.json` schema via
//! [`Verdict::to_json`] (see `lbsa_bench::harness`).
//!
//! # Symmetry-reduced checking
//!
//! For protocols implementing [`lbsa_runtime::process::Symmetry`], the
//! `*_reduced` entry points ([`verdict_consensus_reduced`],
//! [`verdict_k_set_agreement_reduced`], [`verdict_dac_reduced`],
//! [`verdict_wait_free_reduced`]) explore the **quotient** graph (one
//! canonical representative per orbit, see [`crate::symmetry`]) and run the
//! same checkers on it — sound because every checked predicate is
//! orbit-invariant. Counterexample schedules extracted from the quotient
//! graph are **de-canonicalized** through a [`Concretizer`] into real
//! executions before the witness is built, so [`Witness::replay`] and
//! [`Witness::confirm`] work on the raw, unreduced system exactly as for
//! unreduced verdicts.

use crate::checker::{
    check_dac_graph, check_k_set_agreement_graph, solo_decides, solo_terminates, CheckStats,
    DacInstance, Violation,
};
use crate::config::Configuration;
use crate::error::CheckError;
use crate::explore::{Edge, Exploration, ExplorationGraph, Explorer, Limits, Strategy};
use crate::linearizability::{check_linearizable, LinearizabilityError};
use crate::live::{EtaModel, LiveMetrics, ProgressWatcher};
use crate::sampling::{
    sample_confidence, sample_k_set_agreement_live, SampleConfig, SampleViolation, OUTCOME_SEED_XOR,
};
use crate::symmetry::{Concretizer, ConfigSymmetry};
use lbsa_core::spec::ObjectSpec;
use lbsa_core::{AnyObject, Pid, Value};
use lbsa_runtime::derived::CompletedOp;
use lbsa_runtime::error::RuntimeError;
use lbsa_runtime::outcome::{OutcomeResolver, RandomOutcome};
use lbsa_runtime::process::{ProcStatus, Protocol, Symmetry};
use lbsa_runtime::scheduler::{RandomScheduler, Scheduler};
use lbsa_runtime::trace::{Trace, TraceEvent};
use lbsa_support::json::Json;
use lbsa_support::obs::Tracer;
use std::collections::VecDeque;
use std::fmt;

/// One step of a replayable schedule: which process moves and which
/// admissible object outcome resolves (0 for deterministic objects).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleStep {
    /// The process that steps.
    pub pid: Pid,
    /// The chosen outcome index.
    pub outcome: usize,
}

impl From<Edge> for ScheduleStep {
    fn from(e: Edge) -> Self {
        ScheduleStep {
            pid: e.pid,
            outcome: e.outcome,
        }
    }
}

impl ScheduleStep {
    fn to_json(self) -> Json {
        Json::object()
            .set("pid", self.pid.index())
            .set("outcome", self.outcome)
    }
}

/// The property a witness demonstrates the violation of. Each variant
/// carries exactly the parameters needed to re-evaluate the violated
/// predicate on a replayed configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WitnessKind {
    /// More than `k` distinct values decided.
    Agreement {
        /// The agreement bound that was exceeded.
        k: usize,
    },
    /// A decided value outside the valid set.
    Validity {
        /// The admissible decision values.
        valid: Vec<Value>,
    },
    /// A decided value no non-aborted process proposed (n-DAC Validity).
    DacValidity {
        /// Each process's input, indexed by pid.
        inputs: Vec<Value>,
    },
    /// A terminal configuration with an undecided process.
    UndecidedTerminal,
    /// An infinite execution: the schedule leads to a configuration from
    /// which `cycle` returns to itself while the victims stay undecided.
    NonTermination {
        /// Processes stepping forever without deciding.
        victims: Vec<Pid>,
    },
    /// A configuration from which `pid` run solo fails to stop (or, when
    /// `must_decide`, fails to decide) within `bound` of its own steps.
    SoloNonTermination {
        /// The process run solo.
        pid: Pid,
        /// The step bound of the solo run.
        bound: usize,
        /// `true` if the solo run must *decide* (n-DAC Termination (b));
        /// `false` if stopping (decide/abort/halt) suffices (clause (a)).
        must_decide: bool,
    },
    /// The distinguished process aborted although no other process had
    /// taken a step (n-DAC Nontriviality; the schedule is `p`-solo).
    Nontriviality {
        /// The distinguished process.
        distinguished: Pid,
    },
}

impl WitnessKind {
    /// A short machine-readable tag for reports.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            WitnessKind::Agreement { .. } => "agreement",
            WitnessKind::Validity { .. } => "validity",
            WitnessKind::DacValidity { .. } => "dac-validity",
            WitnessKind::UndecidedTerminal => "undecided-terminal",
            WitnessKind::NonTermination { .. } => "non-termination",
            WitnessKind::SoloNonTermination { .. } => "solo-non-termination",
            WitnessKind::Nontriviality { .. } => "nontriviality",
        }
    }

    /// Evaluates the violated *state* predicate on `config`, when the kind
    /// has one; `None` for kinds whose evidence is not a single
    /// configuration (non-termination cycles, solo runs).
    fn state_predicate<L: Clone + Eq + std::hash::Hash + std::fmt::Debug>(
        &self,
        config: &Configuration<L>,
    ) -> Option<bool> {
        match self {
            WitnessKind::Agreement { k } => Some(config.distinct_decisions().len() > *k),
            WitnessKind::Validity { valid } => Some(
                config
                    .distinct_decisions()
                    .iter()
                    .any(|v| !valid.contains(v)),
            ),
            WitnessKind::DacValidity { inputs } => {
                Some(config.distinct_decisions().iter().any(|v| {
                    !(0..inputs.len())
                        .any(|q| inputs.get(q) == Some(v) && !config.has_aborted(Pid(q)))
                }))
            }
            WitnessKind::UndecidedTerminal => Some(config.is_terminal() && !config.all_decided()),
            WitnessKind::Nontriviality { distinguished } => {
                Some(config.has_aborted(*distinguished))
            }
            WitnessKind::NonTermination { .. } | WitnessKind::SoloNonTermination { .. } => None,
        }
    }

    /// Evaluates the full violated predicate on `config`, running solo
    /// probes through `explorer` where the kind requires them. `None` for
    /// cycle-based kinds (their evidence is the cycle, not a configuration).
    fn predicate<P: Protocol>(
        &self,
        explorer: &Explorer<'_, P>,
        config: &Configuration<P::LocalState>,
    ) -> Result<Option<bool>, RuntimeError> {
        if let Some(hit) = self.state_predicate(config) {
            return Ok(Some(hit));
        }
        match self {
            WitnessKind::SoloNonTermination {
                pid,
                bound,
                must_decide,
            } => {
                if !matches!(config.procs.get(pid.index()), Some(ProcStatus::Running(_))) {
                    return Ok(Some(false));
                }
                let ok = if *must_decide {
                    solo_decides(explorer, config, *pid, *bound)?
                } else {
                    solo_terminates(explorer, config, *pid, *bound)?
                };
                Ok(Some(!ok))
            }
            WitnessKind::NonTermination { .. } => Ok(None),
            _ => Ok(self.state_predicate(config)),
        }
    }
}

impl fmt::Display for WitnessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A replayable, minimized counterexample: the executable analogue of the
/// paper's "there is an execution in which …".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// The failing schedule, from the initial configuration.
    pub schedule: Vec<ScheduleStep>,
    /// For non-termination witnesses, the cycle pumped after `schedule`;
    /// empty otherwise.
    pub cycle: Vec<ScheduleStep>,
    /// The violated property, with the parameters to re-check it.
    pub kind: WitnessKind,
    /// The object-level trace of replaying `schedule` (plus one cycle lap
    /// for non-termination witnesses) — built on [`lbsa_runtime::trace`].
    pub trace: Trace,
    /// `true` once delta-minimization ran over the schedule.
    pub minimized: bool,
}

impl Witness {
    /// Total schedule length (prefix plus one cycle lap).
    #[must_use]
    pub fn len(&self) -> usize {
        self.schedule.len() + self.cycle.len()
    }

    /// `true` if the witness has no steps at all (a violation visible in
    /// the initial configuration).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replays `schedule` from the initial configuration, one chosen step
    /// at a time, rebuilding the trace.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::WitnessDiverged`] when a step cannot be
    /// replayed (the schedule does not belong to this protocol/object
    /// combination).
    pub fn replay<P: Protocol>(
        &self,
        explorer: &Explorer<'_, P>,
    ) -> Result<(Configuration<P::LocalState>, Trace), CheckError> {
        let mut config = explorer.initial_config();
        let mut trace = Trace::new();
        for (i, step) in self.schedule.iter().enumerate() {
            config = replay_one(explorer, config, *step, i, &mut trace)?;
        }
        explorer.tracer().emit_with("witness.replay", || {
            Json::object()
                .set("kind", self.kind.tag())
                .set("steps", self.schedule.len())
        });
        Ok((config, trace))
    }

    /// Replays the witness and re-evaluates the violated property,
    /// confirming the counterexample end to end.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::WitnessDiverged`] if replay fails or the
    /// replayed execution no longer violates the property.
    pub fn confirm<P: Protocol>(&self, explorer: &Explorer<'_, P>) -> Result<(), CheckError> {
        let result = self.confirm_inner(explorer);
        explorer.tracer().emit_with("witness.confirm", || {
            Json::object()
                .set("kind", self.kind.tag())
                .set("steps", self.len())
                .set("ok", result.is_ok())
        });
        result
    }

    fn confirm_inner<P: Protocol>(&self, explorer: &Explorer<'_, P>) -> Result<(), CheckError> {
        let (config, mut trace) = self.replay(explorer)?;
        match &self.kind {
            WitnessKind::NonTermination { victims } => {
                if self.cycle.is_empty() {
                    return Err(CheckError::WitnessDiverged {
                        step: self.schedule.len(),
                        reason: "non-termination witness has an empty cycle".to_string(),
                    });
                }
                let entry = config.clone();
                let mut cur = config;
                let mut stepped: Vec<Pid> = Vec::new();
                for (i, step) in self.cycle.iter().enumerate() {
                    let at = self.schedule.len() + i;
                    for victim in victims {
                        let undecided = cur
                            .procs
                            .get(victim.index())
                            .is_some_and(|s| s.decision().is_none());
                        if !undecided {
                            return Err(CheckError::WitnessDiverged {
                                step: at,
                                reason: format!("victim {victim} decided on the cycle"),
                            });
                        }
                    }
                    stepped.push(step.pid);
                    cur = replay_one(explorer, cur, *step, at, &mut trace)?;
                }
                if cur != entry {
                    return Err(CheckError::WitnessDiverged {
                        step: self.len(),
                        reason: "cycle does not return to its entry configuration".to_string(),
                    });
                }
                if let Some(v) = victims.iter().find(|v| !stepped.contains(v)) {
                    return Err(CheckError::WitnessDiverged {
                        step: self.len(),
                        reason: format!("victim {v} never steps on the cycle"),
                    });
                }
                Ok(())
            }
            kind => match kind.predicate(explorer, &config) {
                Ok(Some(true)) => Ok(()),
                Ok(_) => Err(CheckError::WitnessDiverged {
                    step: self.schedule.len(),
                    reason: format!("replayed configuration does not violate {kind}"),
                }),
                Err(e) => Err(CheckError::Runtime(e)),
            },
        }
    }

    /// Serializes the witness for `reports/*.json`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("kind", self.kind.tag())
            .set(
                "schedule",
                Json::Arr(self.schedule.iter().map(|s| s.to_json()).collect()),
            )
            .set(
                "cycle",
                Json::Arr(self.cycle.iter().map(|s| s.to_json()).collect()),
            )
            .set("minimized", self.minimized)
            .set(
                "trace",
                Json::Arr(
                    self.trace
                        .iter()
                        .map(|e| Json::from(e.to_string()))
                        .collect(),
                ),
            )
    }
}

/// Emits the `witness.extract` trace event for a freshly built witness.
fn emit_extract(tracer: &Tracer, w: &Witness) {
    tracer.emit_with("witness.extract", || {
        Json::object()
            .set("kind", w.kind.tag())
            .set("schedule_len", w.schedule.len())
            .set("cycle_len", w.cycle.len())
            .set("minimized", w.minimized)
    });
}

/// Replays one chosen step, appending its trace event.
fn replay_one<P: Protocol>(
    explorer: &Explorer<'_, P>,
    config: Configuration<P::LocalState>,
    step: ScheduleStep,
    index: usize,
    trace: &mut Trace,
) -> Result<Configuration<P::LocalState>, CheckError> {
    match explorer.step(&config, step.pid, step.outcome) {
        Ok(rec) => {
            trace.push(TraceEvent {
                step: index,
                pid: step.pid,
                obj: rec.obj,
                op: rec.op,
                response: rec.response,
            });
            Ok(rec.config)
        }
        Err(e) => Err(CheckError::WitnessDiverged {
            step: index,
            reason: e.to_string(),
        }),
    }
}

/// How a check concluded.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Outcome {
    /// The property holds in every execution.
    Holds,
    /// The property held on every run of a sampling sweep — probabilistic
    /// evidence, not proof: `confidence` is the complement of the
    /// Clopper–Pearson upper bound on the per-schedule violation rate (see
    /// [`crate::sampling::sample_confidence`]).
    HoldsSampled {
        /// Seeded runs executed, all clean.
        runs: u64,
        /// Runs that reached quiescence (the rest hit the step budget).
        quiescent: u64,
        /// `1 − bound` where `bound` is the 95% Clopper–Pearson upper
        /// bound on the violation probability of a sampled schedule.
        confidence: f64,
        /// `true` when a confidence target (see
        /// [`SampleConfig::target_confidence`]) stopped the sweep before
        /// its full `runs` budget.
        stopped_early: bool,
    },
    /// A violation was found (the verdict's witness demonstrates it, when
    /// one could be extracted).
    Violated(Violation),
    /// The exploration was truncated; inconclusive.
    Truncated,
    /// The checking machinery itself failed.
    Error(CheckError),
}

impl Outcome {
    /// A short machine-readable tag for reports.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Outcome::Holds => "holds",
            Outcome::HoldsSampled { .. } => "holds-sampled",
            Outcome::Violated(_) => "violated",
            Outcome::Truncated => "truncated",
            Outcome::Error(_) => "error",
        }
    }
}

/// The typed result of a property check: how it concluded, what it cost,
/// and — for violations — a replayable counterexample.
#[derive(Clone, Debug, PartialEq)]
pub struct Verdict {
    /// How the check concluded.
    pub outcome: Outcome,
    /// Work performed (configurations/transitions examined).
    pub stats: CheckStats,
    /// A minimized, replayable counterexample, when the outcome is
    /// [`Outcome::Violated`] and a schedule could be extracted.
    pub witness: Option<Witness>,
}

impl Verdict {
    /// `true` if the property was proven to hold.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self.outcome, Outcome::Holds)
    }

    /// `true` if a violation was found.
    #[must_use]
    pub fn is_violated(&self) -> bool {
        matches!(self.outcome, Outcome::Violated(_))
    }

    /// One-line human summary.
    #[must_use]
    pub fn describe(&self) -> String {
        match &self.outcome {
            Outcome::Holds => "holds".to_string(),
            Outcome::HoldsSampled {
                runs,
                confidence,
                stopped_early,
                ..
            } => format!(
                "holds on {runs} sampled runs{} (violation rate < {:.2e} at 95% confidence)",
                if *stopped_early {
                    " (stopped early at target confidence)"
                } else {
                    ""
                },
                1.0 - confidence
            ),
            Outcome::Violated(v) => format!("violated: {v}"),
            Outcome::Truncated => "inconclusive: exploration truncated".to_string(),
            Outcome::Error(e) => format!("error: {e}"),
        }
    }

    /// Serializes the verdict for `reports/*.json`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object().set("outcome", self.outcome.tag());
        match &self.outcome {
            Outcome::Violated(v) => doc = doc.set("detail", v.to_string()),
            Outcome::Error(e) => doc = doc.set("detail", e.to_string()),
            Outcome::HoldsSampled {
                runs,
                quiescent,
                confidence,
                stopped_early,
            } => {
                doc = doc.set(
                    "sampled",
                    Json::object()
                        .set("runs", *runs)
                        .set("quiescent", *quiescent)
                        .set("confidence", *confidence)
                        .set("stopped_early", *stopped_early),
                );
            }
            _ => {}
        }
        doc = doc.set(
            "stats",
            Json::object()
                .set("configs", self.stats.configs)
                .set("transitions", self.stats.transitions),
        );
        doc.set(
            "witness",
            self.witness.as_ref().map_or(Json::Null, Witness::to_json),
        )
    }

    fn error(stats: CheckStats, e: CheckError) -> Verdict {
        Verdict {
            outcome: Outcome::Error(e),
            stats,
            witness: None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

fn graph_stats<L>(graph: &ExplorationGraph<L>) -> CheckStats {
    CheckStats {
        configs: graph.configs.len(),
        transitions: graph.transitions,
    }
}

const EMPTY_STATS: CheckStats = CheckStats {
    configs: 0,
    transitions: 0,
};

/// Emits the end-of-check `verdict` trace event and passes the verdict
/// through. Every public `verdict_*` entry point routes its result here
/// exactly once, so a traced run shows one `verdict` line per check.
fn traced(tracer: &Tracer, check: &'static str, verdict: Verdict) -> Verdict {
    tracer.emit_with("verdict", || {
        Json::object()
            .set("check", check)
            .set("outcome", verdict.outcome.tag())
            .set("configs", verdict.stats.configs)
            .set("transitions", verdict.stats.transitions)
            .set(
                "witness_len",
                verdict
                    .witness
                    .as_ref()
                    .map_or(Json::Null, |w| Json::from(w.len())),
            )
    });
    verdict
}

/// Explores and checks consensus, returning a verdict with a minimized
/// witness on violation.
#[must_use]
pub fn verdict_consensus<P: Protocol>(
    explorer: &Explorer<'_, P>,
    valid_inputs: &[Value],
    limits: Limits,
) -> Verdict {
    verdict_k_set_agreement(explorer, 1, valid_inputs, limits)
}

/// Explores and checks k-set agreement, returning a verdict with a
/// minimized witness on violation.
#[must_use]
pub fn verdict_k_set_agreement<P: Protocol>(
    explorer: &Explorer<'_, P>,
    k: usize,
    valid_inputs: &[Value],
    limits: Limits,
) -> Verdict {
    let graph = match explorer.exploration().limits(limits).run() {
        Ok(g) => g,
        Err(e) => {
            return traced(
                explorer.tracer(),
                "k-set-agreement",
                Verdict::error(EMPTY_STATS, e.into()),
            )
        }
    };
    verdict_k_set_agreement_graph(explorer, &graph, k, valid_inputs)
}

/// Checks k-set agreement over an already-built graph, returning a verdict
/// with a minimized witness on violation.
#[must_use]
pub fn verdict_k_set_agreement_graph<P: Protocol>(
    explorer: &Explorer<'_, P>,
    graph: &ExplorationGraph<P::LocalState>,
    k: usize,
    valid_inputs: &[Value],
) -> Verdict {
    let stats = graph_stats(graph);
    let verdict = match check_k_set_agreement_graph(graph, k, valid_inputs) {
        Ok(stats) => Verdict {
            outcome: Outcome::Holds,
            stats,
            witness: None,
        },
        Err(violation) => {
            let kind = k_set_kind(&violation, k, valid_inputs);
            violation_verdict(explorer, graph, violation, stats, kind)
        }
    };
    traced(explorer.tracer(), "k-set-agreement", verdict)
}

/// The re-checkable [`WitnessKind`] of a k-set-agreement violation.
fn k_set_kind(violation: &Violation, k: usize, valid_inputs: &[Value]) -> Option<WitnessKind> {
    match violation {
        Violation::Agreement { .. } => Some(WitnessKind::Agreement { k }),
        Violation::Validity { .. } => Some(WitnessKind::Validity {
            valid: valid_inputs.to_vec(),
        }),
        Violation::UndecidedTerminal { .. } => Some(WitnessKind::UndecidedTerminal),
        _ => None,
    }
}

/// Checks k-set agreement by sampling (see [`crate::sampling`]) instead of
/// exhaustive exploration, returning a verdict whose positive outcome is
/// [`Outcome::HoldsSampled`] with a confidence bound and whose violations
/// carry the same minimized, [`Witness::confirm`]-able witnesses as
/// exhaustive checks — the violating seed is replayed into a
/// [`ScheduleStep`] schedule and delta-minimized. The verdict (and any
/// violating seed) is independent of `config.threads`.
#[must_use]
pub fn verdict_k_set_agreement_sampled<P: Protocol>(
    explorer: &Explorer<'_, P>,
    k: usize,
    valid_inputs: &[Value],
    config: SampleConfig,
) -> Verdict {
    verdict_k_set_agreement_sampled_with(explorer, k, valid_inputs, config, explorer.tracer(), None)
}

/// Sampled consensus check (`k = 1`); see
/// [`verdict_k_set_agreement_sampled`].
#[must_use]
pub fn verdict_consensus_sampled<P: Protocol>(
    explorer: &Explorer<'_, P>,
    valid_inputs: &[Value],
    config: SampleConfig,
) -> Verdict {
    verdict_k_set_agreement_sampled(explorer, 1, valid_inputs, config)
}

/// [`verdict_k_set_agreement_sampled`] against an explicit tracer — the
/// builder terminals route their per-run tracer override here.
fn verdict_k_set_agreement_sampled_with<P: Protocol>(
    explorer: &Explorer<'_, P>,
    k: usize,
    valid_inputs: &[Value],
    config: SampleConfig,
    tracer: &Tracer,
    live: Option<&LiveMetrics>,
) -> Verdict {
    let verdict = match sample_k_set_agreement_live(
        explorer.protocol(),
        explorer.objects(),
        k,
        valid_inputs,
        config,
        tracer,
        live,
    ) {
        Ok(report) => Verdict {
            outcome: Outcome::HoldsSampled {
                runs: report.runs,
                quiescent: report.quiescent,
                confidence: sample_confidence(report.runs),
                stopped_early: report.stopped_early,
            },
            stats: CheckStats {
                configs: usize::try_from(report.runs).unwrap_or(usize::MAX),
                transitions: report.total_steps,
            },
            witness: None,
        },
        Err(violation) => sampled_violation_verdict(explorer, k, valid_inputs, config, violation),
    };
    traced(tracer, "k-set-agreement-sampled", verdict)
}

/// Builds the `Violated` verdict for a sampling violation: replays the
/// seed into a schedule and lifts it into a real, minimized witness.
/// Stats count the seeds tried up to the violating one (`configs`) and the
/// failing run's length (`transitions`) — both seed-deterministic, so the
/// verdict compares equal across thread counts.
fn sampled_violation_verdict<P: Protocol>(
    explorer: &Explorer<'_, P>,
    k: usize,
    valid_inputs: &[Value],
    config: SampleConfig,
    violation: SampleViolation,
) -> Verdict {
    let seeds_tried = violation.seed().wrapping_sub(config.seed0).wrapping_add(1);
    if let SampleViolation::Runtime { error, .. } = &violation {
        return Verdict::error(
            CheckStats {
                configs: usize::try_from(seeds_tried).unwrap_or(usize::MAX),
                transitions: 0,
            },
            error.clone().into(),
        );
    }
    let kind = match &violation {
        SampleViolation::Agreement { .. } => Some(WitnessKind::Agreement { k }),
        SampleViolation::Validity { .. } => Some(WitnessKind::Validity {
            valid: valid_inputs.to_vec(),
        }),
        SampleViolation::Runtime { .. } => None,
    };
    let schedule = sampled_schedule(explorer, violation.seed(), config.max_steps);
    let stats = CheckStats {
        configs: usize::try_from(seeds_tried).unwrap_or(usize::MAX),
        transitions: schedule.as_ref().map_or(0, Vec::len),
    };
    let witness = schedule
        .ok()
        .zip(kind)
        .and_then(|(schedule, kind)| finish_witness(explorer, schedule, Vec::new(), kind));
    Verdict {
        outcome: Outcome::Violated(Violation::Sampled(violation)),
        stats,
        witness,
    }
}

/// Re-derives a sampled run's schedule from its seed by driving
/// [`Explorer::step`] with the same seeded scheduler and outcome resolver
/// as the sweep's `System::run` — including consulting the resolver *only*
/// when an object offers more than one outcome, so the RNG streams stay
/// bit-aligned with the original run.
fn sampled_schedule<P: Protocol>(
    explorer: &Explorer<'_, P>,
    seed: u64,
    max_steps: usize,
) -> Result<Vec<ScheduleStep>, RuntimeError> {
    let mut scheduler = RandomScheduler::seeded(seed);
    let mut resolver = RandomOutcome::seeded(seed ^ OUTCOME_SEED_XOR);
    let mut config = explorer.initial_config();
    let mut schedule = Vec::new();
    loop {
        let enabled = config.enabled_pids();
        if enabled.is_empty() || schedule.len() >= max_steps {
            break;
        }
        let Some(pid) = scheduler.next_pid(&enabled) else {
            break;
        };
        let local = match &config.procs[pid.index()] {
            ProcStatus::Running(s) => s.clone(),
            _ => unreachable!("enabled pids are running"),
        };
        let (obj, op) = explorer.protocol().pending_op(pid, &local);
        let spec = explorer
            .objects()
            .get(obj.index())
            .ok_or(RuntimeError::ObjIdOutOfRange {
                obj,
                len: explorer.objects().len(),
            })?;
        let options = spec
            .outcomes(&config.object_states[obj.index()], &op)?
            .into_vec();
        let outcome = if options.len() == 1 {
            0
        } else {
            resolver.choose(pid, obj, &options).min(options.len() - 1)
        };
        config = explorer.step(&config, pid, outcome)?.config;
        schedule.push(ScheduleStep { pid, outcome });
    }
    Ok(schedule)
}

/// The checking terminals of the [`Exploration`] builder: one fluent API,
/// one [`Verdict`], under either [`Strategy`].
impl<'e, 'a, P: Protocol> Exploration<'e, 'a, P> {
    /// Consumes the builder and checks k-set agreement under the
    /// configured [`Strategy`]: exhaustive exploration (respecting every
    /// builder knob — limits, threads, frontier, symmetry, tracer) by
    /// default, or a seeded sampling sweep after
    /// [`Exploration::sample`]. Either way the verdict's violations carry
    /// replayable, minimized witnesses.
    #[must_use]
    pub fn check_k_set_agreement(self, k: usize, valid_inputs: &[Value]) -> Verdict {
        let parts = self.run_for_check();
        match parts.strategy {
            Strategy::Sample(config) => {
                // The sweep runs here, not in `run_for_check`, so the
                // progress watcher brackets it from the verdict layer.
                let watcher = match (parts.progress_every, &parts.live) {
                    (Some(period), Some(live)) if parts.tracer.enabled() => {
                        Some(ProgressWatcher::spawn(
                            live.clone(),
                            parts.tracer.clone(),
                            period,
                            EtaModel::Sampling,
                        ))
                    }
                    _ => None,
                };
                let verdict = verdict_k_set_agreement_sampled_with(
                    parts.explorer,
                    k,
                    valid_inputs,
                    config,
                    &parts.tracer,
                    parts.live.as_ref(),
                );
                if let Some(watcher) = watcher {
                    watcher.finish();
                }
                verdict
            }
            Strategy::Exhaustive => {
                let graph = match parts.graph.expect("exhaustive checks build a graph") {
                    Ok(g) => g,
                    Err(e) => {
                        return traced(
                            &parts.tracer,
                            "k-set-agreement",
                            Verdict::error(EMPTY_STATS, e.into()),
                        )
                    }
                };
                let stats = graph_stats(&graph);
                let verdict = match check_k_set_agreement_graph(&graph, k, valid_inputs) {
                    Ok(stats) => Verdict {
                        outcome: Outcome::Holds,
                        stats,
                        witness: None,
                    },
                    Err(violation) => {
                        let kind = k_set_kind(&violation, k, valid_inputs);
                        match &parts.symmetry {
                            Some(sym) => violation_verdict_reduced(
                                parts.explorer,
                                sym,
                                &graph,
                                violation,
                                stats,
                                kind,
                            ),
                            None => {
                                violation_verdict(parts.explorer, &graph, violation, stats, kind)
                            }
                        }
                    }
                };
                traced(&parts.tracer, "k-set-agreement", verdict)
            }
        }
    }

    /// Consumes the builder and checks consensus (`k = 1`); see
    /// [`Exploration::check_k_set_agreement`].
    #[must_use]
    pub fn check_consensus(self, valid_inputs: &[Value]) -> Verdict {
        self.check_k_set_agreement(1, valid_inputs)
    }
}

/// The re-checkable [`WitnessKind`] of an n-DAC violation.
fn dac_kind(
    violation: &Violation,
    instance: &DacInstance,
    solo_bound: usize,
) -> Option<WitnessKind> {
    match violation {
        Violation::Agreement { .. } => Some(WitnessKind::Agreement { k: 1 }),
        Violation::Validity { .. } => Some(WitnessKind::DacValidity {
            inputs: instance.inputs.clone(),
        }),
        Violation::UndecidedTerminal { .. } => Some(WitnessKind::UndecidedTerminal),
        Violation::SoloNonTermination { pid, .. } => Some(WitnessKind::SoloNonTermination {
            pid: *pid,
            bound: solo_bound,
            must_decide: *pid != instance.distinguished,
        }),
        Violation::Nontriviality { .. } => Some(WitnessKind::Nontriviality {
            distinguished: instance.distinguished,
        }),
        _ => None,
    }
}

/// Explores and checks the four n-DAC properties, returning a verdict with
/// a minimized witness on violation.
#[must_use]
pub fn verdict_dac<P: Protocol>(
    explorer: &Explorer<'_, P>,
    instance: &DacInstance,
    limits: Limits,
    solo_bound: usize,
) -> Verdict {
    let graph = match explorer.exploration().limits(limits).run() {
        Ok(g) => g,
        Err(e) => {
            return traced(
                explorer.tracer(),
                "dac",
                Verdict::error(EMPTY_STATS, e.into()),
            )
        }
    };
    verdict_dac_graph(explorer, &graph, instance, solo_bound)
}

/// Checks the four n-DAC properties over an already-built graph, returning
/// a verdict with a minimized witness on violation. Use this to check a
/// graph explored under non-default options — e.g. the work-stealing
/// frontier, whose verdicts must match the deterministic engine's.
#[must_use]
pub fn verdict_dac_graph<P: Protocol>(
    explorer: &Explorer<'_, P>,
    graph: &ExplorationGraph<P::LocalState>,
    instance: &DacInstance,
    solo_bound: usize,
) -> Verdict {
    let stats = graph_stats(graph);
    let verdict = match check_dac_graph(explorer, graph, instance, solo_bound) {
        Ok(stats) => Verdict {
            outcome: Outcome::Holds,
            stats,
            witness: None,
        },
        Err(violation) => {
            let kind = dac_kind(&violation, instance, solo_bound);
            violation_verdict(explorer, graph, violation, stats, kind)
        }
    };
    traced(explorer.tracer(), "dac", verdict)
}

/// Explores and checks wait-free termination alone (no infinite execution,
/// every terminal configuration fully decided), returning a verdict whose
/// witness is a pumpable cycle on violation.
#[must_use]
pub fn verdict_wait_free<P: Protocol>(explorer: &Explorer<'_, P>, limits: Limits) -> Verdict {
    let verdict = wait_free_verdict(explorer, limits);
    traced(explorer.tracer(), "wait-free", verdict)
}

fn wait_free_verdict<P: Protocol>(explorer: &Explorer<'_, P>, limits: Limits) -> Verdict {
    let graph = match explorer.exploration().limits(limits).run() {
        Ok(g) => g,
        Err(e) => return Verdict::error(EMPTY_STATS, e.into()),
    };
    let stats = graph_stats(&graph);
    if !graph.complete {
        return Verdict {
            outcome: Outcome::Truncated,
            stats,
            witness: None,
        };
    }
    if let Some(w) = crate::adversary::find_nontermination(&graph) {
        let violation = Violation::NonTermination(w);
        return violation_verdict(explorer, &graph, violation, stats, None);
    }
    for idx in graph.terminal_indices() {
        if !graph.configs[idx].all_decided() {
            return violation_verdict(
                explorer,
                &graph,
                Violation::UndecidedTerminal { config: idx },
                stats,
                Some(WitnessKind::UndecidedTerminal),
            );
        }
    }
    Verdict {
        outcome: Outcome::Holds,
        stats,
        witness: None,
    }
}

/// [`verdict_consensus`] over the symmetry-reduced (quotient) graph: the
/// exploration deduplicates on canonical orbit representatives, and any
/// counterexample is de-canonicalized into a real execution before the
/// witness is built.
#[must_use]
pub fn verdict_consensus_reduced<P>(
    explorer: &Explorer<'_, P>,
    valid_inputs: &[Value],
    limits: Limits,
) -> Verdict
where
    P: Symmetry,
    P::LocalState: Ord,
{
    verdict_k_set_agreement_reduced(explorer, 1, valid_inputs, limits)
}

/// [`verdict_k_set_agreement`] over the symmetry-reduced (quotient) graph.
///
/// Sound because every checked predicate is orbit-invariant (see
/// [`crate::symmetry`]); falls back to the unreduced check when the
/// protocol's declared group is trivial.
#[must_use]
pub fn verdict_k_set_agreement_reduced<P>(
    explorer: &Explorer<'_, P>,
    k: usize,
    valid_inputs: &[Value],
    limits: Limits,
) -> Verdict
where
    P: Symmetry,
    P::LocalState: Ord,
{
    let sym = ConfigSymmetry::of(explorer.protocol());
    if sym.is_trivial() {
        return verdict_k_set_agreement(explorer, k, valid_inputs, limits);
    }
    let graph = match explorer.exploration().limits(limits).symmetric().run() {
        Ok(g) => g,
        Err(e) => {
            return traced(
                explorer.tracer(),
                "k-set-agreement-reduced",
                Verdict::error(EMPTY_STATS, e.into()),
            )
        }
    };
    let stats = graph_stats(&graph);
    let verdict = match check_k_set_agreement_graph(&graph, k, valid_inputs) {
        Ok(stats) => Verdict {
            outcome: Outcome::Holds,
            stats,
            witness: None,
        },
        Err(violation) => {
            let kind = k_set_kind(&violation, k, valid_inputs);
            violation_verdict_reduced(explorer, &sym, &graph, violation, stats, kind)
        }
    };
    traced(explorer.tracer(), "k-set-agreement-reduced", verdict)
}

/// [`verdict_dac`] over the symmetry-reduced (quotient) graph. The n-DAC
/// pid-specific predicates (solo termination, Nontriviality of the
/// distinguished process) stay sound because the [`Symmetry`] contract makes
/// distinguished roles singleton classes, fixed by every group element.
#[must_use]
pub fn verdict_dac_reduced<P>(
    explorer: &Explorer<'_, P>,
    instance: &DacInstance,
    limits: Limits,
    solo_bound: usize,
) -> Verdict
where
    P: Symmetry,
    P::LocalState: Ord,
{
    let sym = ConfigSymmetry::of(explorer.protocol());
    if sym.is_trivial() {
        return verdict_dac(explorer, instance, limits, solo_bound);
    }
    let graph = match explorer.exploration().limits(limits).symmetric().run() {
        Ok(g) => g,
        Err(e) => {
            return traced(
                explorer.tracer(),
                "dac-reduced",
                Verdict::error(EMPTY_STATS, e.into()),
            )
        }
    };
    let stats = graph_stats(&graph);
    let verdict = match check_dac_graph(explorer, &graph, instance, solo_bound) {
        Ok(stats) => Verdict {
            outcome: Outcome::Holds,
            stats,
            witness: None,
        },
        Err(violation) => {
            let kind = dac_kind(&violation, instance, solo_bound);
            violation_verdict_reduced(explorer, &sym, &graph, violation, stats, kind)
        }
    };
    traced(explorer.tracer(), "dac-reduced", verdict)
}

/// [`verdict_wait_free`] over the symmetry-reduced (quotient) graph. A
/// quotient cycle witnesses real non-termination: the concretized cycle is
/// pumped until the real configuration repeats (at most `|G|` laps), and the
/// victims are recomputed on the real cycle.
#[must_use]
pub fn verdict_wait_free_reduced<P>(explorer: &Explorer<'_, P>, limits: Limits) -> Verdict
where
    P: Symmetry,
    P::LocalState: Ord,
{
    let sym = ConfigSymmetry::of(explorer.protocol());
    if sym.is_trivial() {
        return verdict_wait_free(explorer, limits);
    }
    let verdict = wait_free_reduced_verdict(explorer, &sym, limits);
    traced(explorer.tracer(), "wait-free-reduced", verdict)
}

fn wait_free_reduced_verdict<P>(
    explorer: &Explorer<'_, P>,
    sym: &ConfigSymmetry<'_, P::LocalState>,
    limits: Limits,
) -> Verdict
where
    P: Symmetry,
    P::LocalState: Ord,
{
    let graph = match explorer.exploration().limits(limits).symmetric().run() {
        Ok(g) => g,
        Err(e) => return Verdict::error(EMPTY_STATS, e.into()),
    };
    let stats = graph_stats(&graph);
    if !graph.complete {
        return Verdict {
            outcome: Outcome::Truncated,
            stats,
            witness: None,
        };
    }
    if let Some(w) = crate::adversary::find_nontermination(&graph) {
        let violation = Violation::NonTermination(w);
        return violation_verdict_reduced(explorer, sym, &graph, violation, stats, None);
    }
    for idx in graph.terminal_indices() {
        if !graph.configs[idx].all_decided() {
            return violation_verdict_reduced(
                explorer,
                sym,
                &graph,
                Violation::UndecidedTerminal { config: idx },
                stats,
                Some(WitnessKind::UndecidedTerminal),
            );
        }
    }
    Verdict {
        outcome: Outcome::Holds,
        stats,
        witness: None,
    }
}

/// Checks linearizability of a recorded front-end history, returning a
/// typed verdict. (The history itself is the evidence either way, so no
/// schedule witness is attached.)
#[must_use]
pub fn verdict_linearizable(history: &[CompletedOp], specs: &[AnyObject]) -> Verdict {
    let stats = CheckStats {
        configs: history.len(),
        transitions: 0,
    };
    match check_linearizable(history, specs) {
        Ok(_) => Verdict {
            outcome: Outcome::Holds,
            stats,
            witness: None,
        },
        Err(LinearizabilityError::NotLinearizable { obj }) => Verdict {
            outcome: Outcome::Violated(Violation::NotLinearizable { obj }),
            stats,
            witness: None,
        },
        Err(e) => Verdict::error(stats, e.into()),
    }
}

/// Builds the `Violated` verdict for `violation`, extracting and
/// minimizing a witness when `kind` gives the re-checkable predicate.
fn violation_verdict<P: Protocol>(
    explorer: &Explorer<'_, P>,
    graph: &ExplorationGraph<P::LocalState>,
    violation: Violation,
    stats: CheckStats,
    kind: Option<WitnessKind>,
) -> Verdict {
    if matches!(violation, Violation::Truncated) {
        return Verdict {
            outcome: Outcome::Truncated,
            stats,
            witness: None,
        };
    }
    if let Violation::Runtime(e) = violation {
        return Verdict::error(stats, e.into());
    }
    let witness = match &violation {
        Violation::NonTermination(w) => nontermination_witness(explorer, graph, w),
        Violation::Agreement { config, .. }
        | Violation::Validity { config, .. }
        | Violation::UndecidedTerminal { config }
        | Violation::SoloNonTermination { config, .. } => {
            kind.and_then(|kind| state_witness(explorer, graph, *config, kind))
        }
        Violation::Nontriviality { config } => {
            kind.and_then(|kind| nontriviality_witness(explorer, graph, *config, kind))
        }
        _ => None,
    };
    Verdict {
        outcome: Outcome::Violated(violation),
        stats,
        witness,
    }
}

/// [`violation_verdict`] for a quotient graph: the same dispatch, but every
/// witness builder routes its quotient schedule through a [`Concretizer`]
/// so the emitted witness replays on the raw system.
fn violation_verdict_reduced<P: Protocol>(
    explorer: &Explorer<'_, P>,
    sym: &ConfigSymmetry<'_, P::LocalState>,
    graph: &ExplorationGraph<P::LocalState>,
    violation: Violation,
    stats: CheckStats,
    kind: Option<WitnessKind>,
) -> Verdict {
    if matches!(violation, Violation::Truncated) {
        return Verdict {
            outcome: Outcome::Truncated,
            stats,
            witness: None,
        };
    }
    if let Violation::Runtime(e) = violation {
        return Verdict::error(stats, e.into());
    }
    let witness = match &violation {
        Violation::NonTermination(w) => nontermination_witness_reduced(explorer, sym, graph, w),
        Violation::Agreement { config, .. }
        | Violation::Validity { config, .. }
        | Violation::UndecidedTerminal { config }
        | Violation::SoloNonTermination { config, .. } => {
            kind.and_then(|kind| state_witness_reduced(explorer, sym, graph, *config, kind))
        }
        Violation::Nontriviality { config } => kind.and_then(|kind| {
            let schedule = nontriviality_schedule(graph, *config, &kind)?;
            let (real, _) = concretize_schedule(explorer, sym, &schedule)?;
            finish_witness(explorer, real, Vec::new(), kind)
        }),
        _ => None,
    };
    Verdict {
        outcome: Outcome::Violated(violation),
        stats,
        witness,
    }
}

/// De-canonicalizes a quotient schedule into a real one, returning the
/// walker so callers can read the final `σ` (pid translation) off it.
fn concretize_schedule<'e, 'a, 'p, P: Protocol>(
    explorer: &'e Explorer<'a, P>,
    sym: &'e ConfigSymmetry<'p, P::LocalState>,
    steps: &[ScheduleStep],
) -> Option<(Vec<ScheduleStep>, Concretizer<'e, 'a, 'p, P>)> {
    let mut walker = Concretizer::new(explorer, sym);
    let mut real = Vec::with_capacity(steps.len());
    for s in steps {
        let (pid, outcome) = walker.advance(s.pid, s.outcome).ok()?;
        real.push(ScheduleStep { pid, outcome });
    }
    Some((real, walker))
}

/// [`state_witness`] for a quotient graph: the BFS-shortest quotient path is
/// concretized into a real schedule, pid-naming kinds are translated through
/// the final `σ`, and the result is delta-minimized on the raw system.
fn state_witness_reduced<P: Protocol>(
    explorer: &Explorer<'_, P>,
    sym: &ConfigSymmetry<'_, P::LocalState>,
    graph: &ExplorationGraph<P::LocalState>,
    target: usize,
    kind: WitnessKind,
) -> Option<Witness> {
    let path = graph.path_to(target)?;
    let quotient: Vec<ScheduleStep> = path.into_iter().map(ScheduleStep::from).collect();
    let (schedule, walker) = concretize_schedule(explorer, sym, &quotient)?;
    // A solo-run kind names a pid of the quotient configuration; the real
    // process it denotes is σ⁻¹(pid) at the end of the path.
    let kind = match kind {
        WitnessKind::SoloNonTermination {
            pid,
            bound,
            must_decide,
        } => WitnessKind::SoloNonTermination {
            pid: walker.real_pid(pid),
            bound,
            must_decide,
        },
        k => k,
    };
    finish_witness(explorer, schedule, Vec::new(), kind)
}

/// [`nontermination_witness`] for a quotient graph. A quotient cycle need
/// not close as a *real* cycle after one lap — concretizing it returns to
/// the same orbit, not necessarily the same configuration. So the lap is
/// pumped: successive laps walk the (finite) orbit of the entry
/// configuration, and by pigeonhole a real configuration repeats within
/// `|G| + 1` laps. Laps before the repeat join the prefix; the laps between
/// the two occurrences form the real cycle. Victims are recomputed as the
/// distinct pids stepping on the real cycle — sound because decisions are
/// absorbing, so a process that steps on a closed cycle can never have
/// decided anywhere on it.
fn nontermination_witness_reduced<P: Protocol>(
    explorer: &Explorer<'_, P>,
    sym: &ConfigSymmetry<'_, P::LocalState>,
    graph: &ExplorationGraph<P::LocalState>,
    w: &crate::adversary::NonTerminationWitness,
) -> Option<Witness> {
    // Locate the cycle entry and the shortest prefix to it, as in the raw
    // builder — all on the quotient graph.
    let mut entry = 0usize;
    for e in &w.prefix {
        entry = graph.edges[entry]
            .iter()
            .find(|g| g.pid == e.pid && g.outcome == e.outcome)?
            .target;
    }
    let shortest = graph.path_to(entry)?;
    let prefix = if shortest.len() <= w.prefix.len() {
        shortest
    } else {
        w.prefix.clone()
    };
    let quotient_prefix: Vec<ScheduleStep> = prefix.into_iter().map(ScheduleStep::from).collect();
    let quotient_cycle: Vec<ScheduleStep> =
        w.cycle.iter().copied().map(ScheduleStep::from).collect();
    if quotient_cycle.is_empty() {
        return None;
    }

    let (mut schedule, mut walker) = concretize_schedule(explorer, sym, &quotient_prefix)?;
    let mut laps: Vec<Vec<ScheduleStep>> = Vec::new();
    let mut seen: Vec<Configuration<P::LocalState>> = vec![walker.real().clone()];
    let mut repeat = None;
    for _ in 0..=sym.group_order() {
        let mut lap = Vec::with_capacity(quotient_cycle.len());
        for s in &quotient_cycle {
            let (pid, outcome) = walker.advance(s.pid, s.outcome).ok()?;
            lap.push(ScheduleStep { pid, outcome });
        }
        laps.push(lap);
        let reached = walker.real().clone();
        if let Some(i) = seen.iter().position(|c| *c == reached) {
            repeat = Some(i);
            break;
        }
        seen.push(reached);
    }
    let start = repeat?;
    for lap in &laps[..start] {
        schedule.extend_from_slice(lap);
    }
    let cycle: Vec<ScheduleStep> = laps[start..].iter().flatten().copied().collect();
    let mut victims: Vec<Pid> = Vec::new();
    for s in &cycle {
        if !victims.contains(&s.pid) {
            victims.push(s.pid);
        }
    }
    victims.sort_by_key(|p| p.index());
    let kind = WitnessKind::NonTermination { victims };
    // Replay prefix + one full real cycle for the trace.
    let mut config = explorer.initial_config();
    let mut trace = Trace::new();
    for (i, step) in schedule.iter().chain(cycle.iter()).enumerate() {
        config = replay_one(explorer, config, *step, i, &mut trace).ok()?;
    }
    let w = Witness {
        schedule,
        cycle,
        kind,
        trace,
        minimized: true,
    };
    emit_extract(explorer.tracer(), &w);
    Some(w)
}

/// Builds a witness for a violation visible at configuration `target`:
/// BFS-shortest path, then delta-minimized to the shortest failing prefix
/// by replaying and re-evaluating the predicate at every intermediate
/// configuration.
fn state_witness<P: Protocol>(
    explorer: &Explorer<'_, P>,
    graph: &ExplorationGraph<P::LocalState>,
    target: usize,
    kind: WitnessKind,
) -> Option<Witness> {
    let path = graph.path_to(target)?;
    let schedule: Vec<ScheduleStep> = path.into_iter().map(ScheduleStep::from).collect();
    finish_witness(explorer, schedule, Vec::new(), kind)
}

/// Builds a witness for an n-DAC Nontriviality violation: a `p`-solo path
/// (only edges of the distinguished process) to a configuration where `p`
/// has aborted. Such a path exists exactly when the product-BFS in the
/// checker flagged the violation.
fn nontriviality_witness<P: Protocol>(
    explorer: &Explorer<'_, P>,
    graph: &ExplorationGraph<P::LocalState>,
    target: usize,
    kind: WitnessKind,
) -> Option<Witness> {
    let schedule = nontriviality_schedule(graph, target, &kind)?;
    finish_witness(explorer, schedule, Vec::new(), kind)
}

/// The `p`-solo schedule behind a Nontriviality witness: BFS restricted to
/// `p`'s edges — the flagged configuration is reachable this way by
/// construction of the (config, others-stepped) product BFS in the checker.
fn nontriviality_schedule<L: Clone + Eq + std::hash::Hash + std::fmt::Debug>(
    graph: &ExplorationGraph<L>,
    target: usize,
    kind: &WitnessKind,
) -> Option<Vec<ScheduleStep>> {
    let WitnessKind::Nontriviality { distinguished } = kind else {
        return None;
    };
    let p = *distinguished;
    let mut pred: Vec<Option<(usize, Edge)>> = vec![None; graph.configs.len()];
    let mut seen = vec![false; graph.configs.len()];
    let mut queue = VecDeque::from([0usize]);
    seen[0] = true;
    let mut found = graph.configs[0].has_aborted(p).then_some(0usize);
    'bfs: while let Some(node) = queue.pop_front() {
        for &e in &graph.edges[node] {
            if e.pid != p || seen[e.target] {
                continue;
            }
            seen[e.target] = true;
            pred[e.target] = Some((node, e));
            if e.target == target || graph.configs[e.target].has_aborted(p) {
                found = Some(e.target);
                break 'bfs;
            }
            queue.push_back(e.target);
        }
    }
    let mut cur = found?;
    let mut schedule = Vec::new();
    while cur != 0 {
        let (prev, edge) = pred[cur]?;
        schedule.push(ScheduleStep::from(edge));
        cur = prev;
    }
    schedule.reverse();
    Some(schedule)
}

/// Builds a non-termination witness: the DFS prefix is re-routed through
/// the BFS-shortest path to the cycle entry (this is the minimization —
/// never longer than the DFS prefix), the cycle is kept verbatim.
fn nontermination_witness<P: Protocol>(
    explorer: &Explorer<'_, P>,
    graph: &ExplorationGraph<P::LocalState>,
    w: &crate::adversary::NonTerminationWitness,
) -> Option<Witness> {
    // Locate the cycle entry by walking the recorded prefix.
    let mut entry = 0usize;
    for e in &w.prefix {
        entry = graph.edges[entry]
            .iter()
            .find(|g| g.pid == e.pid && g.outcome == e.outcome)?
            .target;
    }
    let shortest = graph.path_to(entry)?;
    let prefix = if shortest.len() <= w.prefix.len() {
        shortest
    } else {
        w.prefix.clone()
    };
    let schedule: Vec<ScheduleStep> = prefix.into_iter().map(ScheduleStep::from).collect();
    let cycle: Vec<ScheduleStep> = w.cycle.iter().copied().map(ScheduleStep::from).collect();
    let kind = WitnessKind::NonTermination {
        victims: w.victims.clone(),
    };
    // Replay prefix + one cycle lap for the trace.
    let mut config = explorer.initial_config();
    let mut trace = Trace::new();
    for (i, step) in schedule.iter().chain(cycle.iter()).enumerate() {
        config = replay_one(explorer, config, *step, i, &mut trace).ok()?;
    }
    let w = Witness {
        schedule,
        cycle,
        kind,
        trace,
        minimized: true,
    };
    emit_extract(explorer.tracer(), &w);
    Some(w)
}

/// Delta-minimizes `schedule` against `kind`'s predicate (shortest failing
/// prefix), replays the result for its trace, and assembles the witness.
fn finish_witness<P: Protocol>(
    explorer: &Explorer<'_, P>,
    schedule: Vec<ScheduleStep>,
    cycle: Vec<ScheduleStep>,
    kind: WitnessKind,
) -> Option<Witness> {
    let mut config = explorer.initial_config();
    let mut trace = Trace::new();
    let mut minimized: Vec<ScheduleStep> = Vec::new();
    let mut hit = matches!(kind.predicate(explorer, &config), Ok(Some(true)));
    if !hit {
        for (i, step) in schedule.iter().enumerate() {
            config = replay_one(explorer, config, *step, i, &mut trace).ok()?;
            minimized.push(*step);
            if matches!(kind.predicate(explorer, &config), Ok(Some(true))) {
                hit = true;
                break;
            }
        }
    }
    if !hit {
        return None;
    }
    let w = Witness {
        schedule: minimized,
        cycle,
        kind,
        trace,
        minimized: true,
    };
    emit_extract(explorer.tracer(), &w);
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::value::int;
    use lbsa_core::{AnyObject, ObjId, Op};
    use lbsa_runtime::process::Step;

    /// Correct consensus via a consensus object.
    #[derive(Debug)]
    struct GoodConsensus {
        inputs: Vec<Value>,
    }

    impl Protocol for GoodConsensus {
        type LocalState = ();
        fn num_processes(&self) -> usize {
            self.inputs.len()
        }
        fn init(&self, _pid: Pid) {}
        fn pending_op(&self, pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Propose(self.inputs[pid.index()]))
        }
        fn on_response(&self, _pid: Pid, _s: &(), resp: Value) -> Step<()> {
            Step::Decide(resp)
        }
    }

    /// Broken "consensus": each process decides its own input.
    #[derive(Debug)]
    struct DecideOwn {
        inputs: Vec<Value>,
    }

    impl Protocol for DecideOwn {
        type LocalState = ();
        fn num_processes(&self) -> usize {
            self.inputs.len()
        }
        fn init(&self, _pid: Pid) {}
        fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
            (ObjId(0), Op::Read)
        }
        fn on_response(&self, pid: Pid, _s: &(), _r: Value) -> Step<()> {
            Step::Decide(self.inputs[pid.index()])
        }
    }

    fn reg() -> Vec<AnyObject> {
        vec![AnyObject::register()]
    }

    /// Pid classes grouping processes with equal inputs.
    fn input_classes(inputs: &[Value]) -> Vec<u32> {
        inputs
            .iter()
            .map(|v| u32::try_from(inputs.iter().position(|w| w == v).unwrap()).unwrap())
            .collect()
    }

    impl Symmetry for GoodConsensus {
        fn pid_classes(&self) -> Vec<u32> {
            input_classes(&self.inputs)
        }
    }

    impl Symmetry for DecideOwn {
        fn pid_classes(&self) -> Vec<u32> {
            input_classes(&self.inputs)
        }
    }

    #[test]
    fn holding_verdict_has_no_witness() {
        let p = GoodConsensus {
            inputs: vec![int(0), int(1)],
        };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let v = verdict_consensus(&ex, &[int(0), int(1)], Limits::default());
        assert!(v.holds(), "{v}");
        assert!(v.witness.is_none());
        assert!(v.stats.configs > 0);
        assert_eq!(
            v.to_json().get("outcome").and_then(Json::as_str),
            Some("holds")
        );
    }

    #[test]
    fn agreement_witness_replays_and_confirms() {
        let p = DecideOwn {
            inputs: vec![int(0), int(1)],
        };
        let objects = reg();
        let ex = Explorer::new(&p, &objects);
        let v = verdict_consensus(&ex, &[int(0), int(1)], Limits::default());
        assert!(v.is_violated(), "{v}");
        let w = v.witness.expect("agreement violations carry a witness");
        assert!(w.minimized);
        assert_eq!(w.kind, WitnessKind::Agreement { k: 1 });
        // Two decisions require two steps; minimization cannot do better.
        assert_eq!(w.schedule.len(), 2);
        assert_eq!(w.trace.len(), w.schedule.len());
        w.confirm(&ex).expect("witness must confirm");
        let (config, _) = w.replay(&ex).unwrap();
        assert!(config.distinct_decisions().len() > 1);
    }

    #[test]
    fn tampered_witness_fails_confirmation() {
        let p = DecideOwn {
            inputs: vec![int(0), int(1)],
        };
        let objects = reg();
        let ex = Explorer::new(&p, &objects);
        let v = verdict_consensus(&ex, &[int(0), int(1)], Limits::default());
        let w = v.witness.unwrap();

        let mut truncated = w.clone();
        truncated.schedule.pop();
        assert!(matches!(
            truncated.confirm(&ex),
            Err(CheckError::WitnessDiverged { .. })
        ));

        let mut bad_outcome = w.clone();
        bad_outcome.schedule[0].outcome = 7;
        assert!(matches!(
            bad_outcome.confirm(&ex),
            Err(CheckError::WitnessDiverged { step: 0, .. })
        ));
    }

    #[test]
    fn truncated_exploration_yields_truncated_outcome() {
        let p = GoodConsensus {
            inputs: vec![int(0), int(1)],
        };
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let v = verdict_consensus(&ex, &[int(0), int(1)], Limits::new(1));
        assert!(matches!(v.outcome, Outcome::Truncated));
        assert!(v.witness.is_none());
        assert_eq!(
            v.to_json().get("outcome").and_then(Json::as_str),
            Some("truncated")
        );
    }

    #[test]
    fn wait_free_verdict_finds_cycles_with_pumpable_witness() {
        /// One process spinning forever on a register.
        #[derive(Debug)]
        struct Spin;
        impl Protocol for Spin {
            type LocalState = ();
            fn num_processes(&self) -> usize {
                1
            }
            fn init(&self, _pid: Pid) {}
            fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
                (ObjId(0), Op::Read)
            }
            fn on_response(&self, _pid: Pid, _s: &(), _r: Value) -> Step<()> {
                Step::Continue(())
            }
        }
        let p = Spin;
        let objects = reg();
        let ex = Explorer::new(&p, &objects);
        let v = verdict_wait_free(&ex, Limits::default());
        assert!(v.is_violated());
        let w = v.witness.expect("cycle witness");
        assert!(matches!(w.kind, WitnessKind::NonTermination { .. }));
        assert!(!w.cycle.is_empty());
        w.confirm(&ex).expect("cycle witness must confirm");
    }

    #[test]
    fn reduced_agreement_witness_confirms_on_the_raw_system() {
        let p = DecideOwn {
            inputs: vec![int(0), int(0), int(1), int(1)],
        };
        let objects = reg();
        let ex = Explorer::new(&p, &objects);
        let raw = verdict_consensus(&ex, &[int(0), int(1)], Limits::default());
        let reduced = verdict_consensus_reduced(&ex, &[int(0), int(1)], Limits::default());
        assert!(raw.is_violated(), "{raw}");
        assert!(reduced.is_violated(), "{reduced}");
        assert!(
            reduced.stats.configs < raw.stats.configs,
            "reduction must shrink the checked graph: {} !< {}",
            reduced.stats.configs,
            raw.stats.configs
        );
        let w = reduced.witness.expect("reduced violations carry a witness");
        assert_eq!(w.kind, WitnessKind::Agreement { k: 1 });
        // The de-canonicalized schedule replays on the *raw* system.
        w.confirm(&ex)
            .expect("de-canonicalized witness must confirm");
    }

    #[test]
    fn reduced_verdicts_agree_when_the_property_holds() {
        let p = GoodConsensus {
            inputs: vec![int(0), int(0), int(0)],
        };
        let objects = vec![AnyObject::consensus(3).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let raw = verdict_consensus(&ex, &[int(0)], Limits::default());
        let reduced = verdict_consensus_reduced(&ex, &[int(0)], Limits::default());
        assert!(raw.holds(), "{raw}");
        assert!(reduced.holds(), "{reduced}");
        assert!(reduced.stats.configs < raw.stats.configs);
    }

    #[test]
    fn reduced_wait_free_verdict_pumps_a_real_cycle() {
        /// Two interchangeable processes spinning forever on a register.
        #[derive(Debug)]
        struct SpinAll {
            n: usize,
        }
        impl Protocol for SpinAll {
            type LocalState = ();
            fn num_processes(&self) -> usize {
                self.n
            }
            fn init(&self, _pid: Pid) {}
            fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
                (ObjId(0), Op::Read)
            }
            fn on_response(&self, _pid: Pid, _s: &(), _r: Value) -> Step<()> {
                Step::Continue(())
            }
        }
        impl Symmetry for SpinAll {
            fn pid_classes(&self) -> Vec<u32> {
                vec![0; self.n]
            }
        }
        let p = SpinAll { n: 2 };
        let objects = reg();
        let ex = Explorer::new(&p, &objects);
        let v = verdict_wait_free_reduced(&ex, Limits::default());
        assert!(v.is_violated(), "{v}");
        let w = v.witness.expect("cycle witness");
        let WitnessKind::NonTermination { victims } = &w.kind else {
            panic!("wrong kind: {:?}", w.kind);
        };
        assert!(!victims.is_empty());
        assert!(!w.cycle.is_empty());
        w.confirm(&ex)
            .expect("pumped cycle witness must confirm on the raw system");
    }

    #[test]
    fn traced_verdicts_emit_check_and_witness_events() {
        use lbsa_support::obs::MemorySink;
        let p = DecideOwn {
            inputs: vec![int(0), int(1)],
        };
        let objects = reg();
        let sink = MemorySink::new();
        let ex = Explorer::new(&p, &objects).with_trace(Tracer::new(sink.clone()));
        let v = verdict_consensus(&ex, &[int(0), int(1)], Limits::default());
        assert!(v.is_violated(), "{v}");
        v.witness
            .as_ref()
            .expect("witness present")
            .confirm(&ex)
            .expect("witness confirms");

        let names = sink.names();
        assert!(names.contains(&"explore.begin"), "{names:?}");
        assert_eq!(
            names.iter().filter(|n| **n == "verdict").count(),
            1,
            "exactly one verdict event per check: {names:?}"
        );
        assert!(names.contains(&"witness.extract"), "{names:?}");
        assert!(names.contains(&"witness.replay"), "{names:?}");
        assert!(names.contains(&"witness.confirm"), "{names:?}");

        let events = sink.events();
        let verdict_ev = events.iter().find(|e| e.name == "verdict").unwrap();
        assert_eq!(
            verdict_ev.fields.get("check").and_then(Json::as_str),
            Some("k-set-agreement")
        );
        assert_eq!(
            verdict_ev.fields.get("outcome").and_then(Json::as_str),
            Some("violated")
        );
        assert_eq!(
            verdict_ev.fields.get("witness_len").and_then(Json::as_i64),
            Some(2)
        );
        let confirm_ev = events.iter().find(|e| e.name == "witness.confirm").unwrap();
        assert_eq!(
            confirm_ev.fields.get("ok").and_then(Json::as_bool),
            Some(true)
        );
        // The verdict event follows the witness extraction that fed it.
        let extract_seq = events
            .iter()
            .find(|e| e.name == "witness.extract")
            .unwrap()
            .seq;
        assert!(verdict_ev.seq > extract_seq);
    }

    #[test]
    fn verdict_json_shape() {
        let p = DecideOwn {
            inputs: vec![int(0), int(1)],
        };
        let objects = reg();
        let ex = Explorer::new(&p, &objects);
        let v = verdict_consensus(&ex, &[int(0), int(1)], Limits::default());
        let doc = v.to_json();
        assert_eq!(doc.get("outcome").and_then(Json::as_str), Some("violated"));
        assert!(doc.get("detail").is_some());
        let w = doc.get("witness").expect("witness present");
        assert_eq!(w.get("kind").and_then(Json::as_str), Some("agreement"));
        assert_eq!(w.get("minimized").and_then(Json::as_bool), Some(true));
        assert_eq!(w.get("schedule").and_then(Json::as_arr).unwrap().len(), 2);
        // The document round-trips through the parser.
        let parsed = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(parsed, doc);
    }
}
