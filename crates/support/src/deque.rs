//! A lock-free Chase–Lev work-stealing deque.
//!
//! This is the classic dynamic circular work-stealing deque of Chase &
//! Lev (SPAA 2005), with the memory orderings of Lê, Pop, Cohen &
//! Zappa Nardelli ("Correct and Efficient Work-Stealing for Weak Memory
//! Models", PPoPP 2013), hand-rolled because the workspace's dependency
//! policy forbids `crossbeam-deque`. One thread — the **owner** — pushes
//! and pops at the *bottom* (LIFO, so a worker chases its own subtree
//! depth-first and stays in cache); any number of **thieves** steal from
//! the *top* (FIFO, the oldest tasks, which head the largest unexplored
//! subtrees), each theft a single CAS on `top`.
//!
//! ## Memory-ordering argument (the unsafe core)
//!
//! The deque's state is two monotonically increasing indices into a
//! circular buffer: `top` (next steal slot) and `bottom` (next push
//! slot); the `bottom - top` slots in between hold live values.
//!
//! * **push** writes the slot, then publishes it with a `Release` store
//!   of `bottom`. A thief that observes the new `bottom` (via its
//!   `Acquire` load) therefore also observes the slot write.
//! * **pop** decrements `bottom`, then needs to know whether a thief
//!   might be racing for the same (now only) element. The `SeqCst`
//!   fence between the `bottom` store and the `top` load, paired with
//!   the fence in **steal**, guarantees pop and steal cannot *both*
//!   conclude they are safely ahead of each other: at least one of them
//!   sees the other's index update. When the element is the last one
//!   (`top == bottom` after the decrement), pop races thieves with a
//!   CAS on `top` — exactly one taker wins; the loser restores.
//! * **steal** reads `top`, fences, reads `bottom`; if the deque looks
//!   non-empty it reads the slot *first* and then CASes `top` forward.
//!   Only a successful CAS transfers ownership of the value — a failed
//!   CAS forgets the bitwise copy it read, so no value is ever dropped
//!   (or observed) twice. The slot read must precede the CAS: after the
//!   CAS the owner is free to overwrite the slot (the ring index
//!   `top mod cap` becomes reachable by `push` again).
//!
//! The barrier in pop is not an implementation wart but a law: Attiya
//! et al. ("Laws of Order", POPL 2011) prove every work-stealing deque
//! must execute an expensive synchronization (a fence or an atomic RMW)
//! on the pop path. The choice here is *which* expensive instruction to
//! pay. An all-`SeqCst` formulation (SC store of `bottom`, SC loads in
//! steal) was measured head-to-head against the fence formulation on
//! this workload and lost — the `xchg` that an SC store compiles to on
//! x86 costs more per pop than the plain store + `mfence` pair here —
//! so the PPoPP 2013 fence version is kept.
//!
//! ## Buffer growth and retirement
//!
//! When a push finds the buffer full, the owner allocates a buffer of
//! twice the capacity, copies the live range `top..bottom`, and
//! publishes the new buffer with a `Release` store. Thieves may still
//! hold the *old* buffer pointer, so grown-out buffers are never freed
//! mid-run: they are **retired** into a list owned by the deque and
//! reclaimed only when the deque itself drops — at which point no
//! handle (hence no in-flight steal) can exist. This is the degenerate
//! but sound end of epoch-based reclamation: the single epoch is the
//! deque's lifetime, which is fine because growth is O(log n) events
//! with geometrically sized buffers (total retired memory ≤ the final
//! buffer). A stale thief reading a retired buffer reads the value that
//! was copied out of it — the owner never mutates a retired buffer — so
//! its CAS on `top` is still the sole arbiter of ownership.
//!
//! ## Batched stealing
//!
//! [`Stealer::steal_batch_and_pop`] takes up to half the victim's
//! observed size, as repeated *single* CAS steals: the first stolen task
//! is returned, the rest are pushed onto the thief's own deque. A
//! multi-slot CAS (`top → top + n`) would race the owner's uncounted
//! bottom pops — the owner only arbitrates through `top` for the *last*
//! element, so a thief must never claim a range the owner might pop
//! from. Per-element CAS keeps every transfer linearizable; the batch
//! is amortization of the victim-selection sweep, not of the CAS.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default initial capacity (slots) of a freshly created deque.
const DEFAULT_CAPACITY: usize = 64;

/// The circular slot array. Indices are the *global* monotone `top` /
/// `bottom` counters; the ring position is `index & mask`. Slots are
/// `MaybeUninit` because liveness is tracked by the indices, not by the
/// slots themselves.
struct Buffer<T> {
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

impl<T> Buffer<T> {
    fn alloc(capacity: usize) -> *mut Buffer<T> {
        debug_assert!(capacity.is_power_of_two());
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Box::into_raw(Box::new(Buffer {
            mask: capacity - 1,
            slots,
        }))
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Writes `value` into the ring slot for `index`.
    ///
    /// # Safety
    ///
    /// Only the owner calls this, and only on a slot outside the live
    /// `top..bottom` range (so no thief reads it concurrently), with a
    /// non-negative `index`.
    unsafe fn write(&self, index: isize, value: T) {
        // SAFETY: masking keeps the ring position within `0..=mask`,
        // and `slots.len() == mask + 1`. The cast is lossless: callers
        // only pass live (non-negative) indices. This is the owner's
        // per-push hot path, so the bounds check is elided by hand.
        let slot = unsafe { self.slots.get_unchecked((index as usize) & self.mask) };
        unsafe { (*slot.get()).write(value) };
    }

    /// Reads a bitwise copy of the ring slot for `index`.
    ///
    /// # Safety
    ///
    /// The slot must have been initialized by a `write` that
    /// happens-before this read, with a non-negative `index`. The copy
    /// only becomes *owned* once the caller wins the index (pop past
    /// the fence, or a successful CAS on `top`); until then it must be
    /// treated as borrowed bits and forgotten on failure.
    unsafe fn read(&self, index: isize) -> T {
        // SAFETY: as in `write` — masked index is always in bounds.
        let slot = unsafe { self.slots.get_unchecked((index as usize) & self.mask) };
        unsafe { (*slot.get()).assume_init_read() }
    }
}

/// The shared core of one deque. `bottom` is written only by the owner;
/// `top` advances only through CAS (thieves) or the owner's last-element
/// CAS. `buffer` is replaced only by the owner (growth); old buffers
/// park in `retired` until drop.
struct Inner<T> {
    bottom: AtomicIsize,
    top: AtomicIsize,
    buffer: AtomicPtr<Buffer<T>>,
    retired: Mutex<Vec<*mut Buffer<T>>>,
    grows: AtomicU64,
}

// SAFETY: all shared mutation goes through the atomics and the protocol
// documented at module level; values of `T` cross threads only by being
// pushed on one thread and popped/stolen on another, which requires
// `T: Send` (enforced on the public constructors and handle impls).
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: see above — the steal protocol makes concurrent `&Inner`
// access sound.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access: no handles remain, so the live range is
        // exactly `top..bottom` in the current buffer.
        let buf = *self.buffer.get_mut();
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        // SAFETY: exclusive access; every index in `t..b` holds an
        // initialized value nobody else will read.
        unsafe {
            for i in t..b {
                drop((*buf).read(i));
            }
            drop(Box::from_raw(buf));
            for old in self
                .retired
                .get_mut()
                .expect("retired list poisoned")
                .drain(..)
            {
                drop(Box::from_raw(old));
            }
        }
    }
}

/// The owner handle: single-threaded push/pop at the bottom. `Send` but
/// deliberately not `Sync` and not `Clone` — the Chase–Lev protocol
/// requires exactly one pusher/popper.
pub struct Owner<T> {
    inner: Arc<Inner<T>>,
    /// Makes the handle `!Sync`, pinning bottom-end operations to one
    /// thread at a time without `unsafe` in callers.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

/// A thief handle: clonable, shareable, steals from the top.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// The outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// A task was stolen.
    Taken(T),
    /// The deque was observed empty.
    Empty,
    /// Lost a race (another thief, or the owner's last-element pop);
    /// the deque may still hold work.
    Retry,
}

impl<T> Steal<T> {
    /// `Some(task)` for [`Steal::Taken`], `None` otherwise.
    pub fn take(self) -> Option<T> {
        match self {
            Steal::Taken(t) => Some(t),
            _ => None,
        }
    }
}

/// Creates a deque with the default initial capacity, returning the
/// owner handle and one stealer (clone the stealer for more thieves).
#[must_use]
pub fn deque<T: Send>() -> (Owner<T>, Stealer<T>) {
    deque_with_capacity(DEFAULT_CAPACITY)
}

/// Creates a deque whose first buffer holds `capacity` (rounded up to a
/// power of two, minimum 2) slots — small capacities force buffer
/// growth, which the stress tests exploit.
#[must_use]
pub fn deque_with_capacity<T: Send>(capacity: usize) -> (Owner<T>, Stealer<T>) {
    let capacity = capacity.next_power_of_two().max(2);
    let inner = Arc::new(Inner {
        bottom: AtomicIsize::new(0),
        top: AtomicIsize::new(0),
        buffer: AtomicPtr::new(Buffer::alloc(capacity)),
        retired: Mutex::new(Vec::new()),
        grows: AtomicU64::new(0),
    });
    (
        Owner {
            inner: Arc::clone(&inner),
            _not_sync: PhantomData,
        },
        Stealer { inner },
    )
}

impl<T: Send> Owner<T> {
    /// Pushes a task at the bottom, growing the buffer when full.
    pub fn push(&self, value: T) {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Acquire);
        let mut buf = self.inner.buffer.load(Ordering::Relaxed);
        // SAFETY: `buf` is the current buffer — only the owner (this
        // thread) replaces it.
        if b.wrapping_sub(t) >= unsafe { (*buf).capacity() } as isize {
            buf = self.grow(t, b, buf);
        }
        // SAFETY: slot `b` is outside the live range until the Release
        // store below publishes it.
        unsafe { (*buf).write(b, value) };
        self.inner
            .bottom
            .store(b.wrapping_add(1), Ordering::Release);
    }

    /// Pops a task from the bottom (LIFO). Returns `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let b = self.inner.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        let buf = self.inner.buffer.load(Ordering::Relaxed);
        self.inner.bottom.store(b, Ordering::Relaxed);
        // Pairs with the fence in `Stealer::steal`: pop and a racing
        // steal cannot both miss each other's index update.
        fence(Ordering::SeqCst);
        let t = self.inner.top.load(Ordering::Relaxed);
        let size = b.wrapping_sub(t);
        if size < 0 {
            // Already empty; restore the canonical empty state.
            self.inner.bottom.store(t, Ordering::Relaxed);
            return None;
        }
        // SAFETY: slot `b` was initialized by the push that advanced
        // `bottom` past it; the owner is the only popper.
        let value = ManuallyDrop::new(unsafe { (*buf).read(b) });
        if size > 0 {
            // More than one element: thieves arbitrate among `t..b`,
            // strictly below our slot.
            return Some(ManuallyDrop::into_inner(value));
        }
        // Last element: race thieves for it via `top`.
        let won = self
            .inner
            .top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        self.inner
            .bottom
            .store(t.wrapping_add(1), Ordering::Relaxed);
        if won {
            Some(ManuallyDrop::into_inner(value))
        } else {
            // A thief took it; forget the bitwise copy.
            None
        }
    }

    /// A snapshot of the deque's size (exact when no thief is active).
    #[must_use]
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        usize::try_from(b.wrapping_sub(t)).unwrap_or(0)
    }

    /// `true` when the snapshot size is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many times the circular buffer grew (and retired its
    /// predecessor) over the deque's lifetime.
    #[must_use]
    pub fn grows(&self) -> u64 {
        self.inner.grows.load(Ordering::Relaxed)
    }

    /// Slots in the current circular buffer.
    #[must_use]
    pub fn capacity(&self) -> usize {
        // SAFETY: owner-only read of the buffer pointer; only the owner
        // replaces it, and retired buffers outlive every handle.
        unsafe { (*self.inner.buffer.load(Ordering::Acquire)).capacity() }
    }

    /// Approximate heap bytes held by this deque: the live buffer's slot
    /// array plus the retired buffers (each retired buffer is half its
    /// successor, so they sum to at most one extra live-buffer's worth).
    /// A memory-accounting gauge, not an exact figure.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let slot = std::mem::size_of::<T>().max(1);
        let live = self.capacity() * slot;
        let retired = if self.grows() > 0 { live } else { 0 };
        live + retired + std::mem::size_of::<Inner<T>>()
    }

    /// Doubles the buffer: copy the live range, publish the new buffer,
    /// retire the old one (freed only at drop — thieves may still read
    /// it).
    fn grow(&self, t: isize, b: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
        // SAFETY: owner-only; `old` is the current buffer.
        let new = unsafe { Buffer::<T>::alloc((*old).capacity() * 2) };
        // SAFETY: indices `t..b` are initialized in `old`; the copies
        // are bitwise, and exactly one buffer's copy of each index is
        // ever read afterwards (ownership is by index, not by slot).
        unsafe {
            for i in t..b {
                (*new).write(i, (*old).read(i));
            }
        }
        self.inner.buffer.store(new, Ordering::Release);
        self.inner
            .retired
            .lock()
            .expect("retired list poisoned")
            .push(old);
        self.inner.grows.fetch_add(1, Ordering::Relaxed);
        new
    }
}

impl<T: Send> Stealer<T> {
    /// Attempts to steal one task from the top (FIFO end).
    pub fn steal(&self) -> Steal<T> {
        let t = self.inner.top.load(Ordering::Acquire);
        // Pairs with the fence in `Owner::pop`.
        fence(Ordering::SeqCst);
        let b = self.inner.bottom.load(Ordering::Acquire);
        if t.wrapping_sub(b) >= 0 {
            return Steal::Empty;
        }
        // The Acquire load of `bottom` above synchronizes with the
        // owner's Release store in `push` (and the Release buffer
        // publication in `grow`), so both the slot write and any buffer
        // swap that preceded it are visible.
        let buf = self.inner.buffer.load(Ordering::Acquire);
        // SAFETY: `t < b`, so slot `t` holds an initialized value in
        // whichever buffer we observed (retired buffers keep their
        // copies alive and unmutated until the deque drops). The copy
        // is only owned if the CAS below wins.
        let value = ManuallyDrop::new(unsafe { (*buf).read(t) });
        if self
            .inner
            .top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Taken(ManuallyDrop::into_inner(value))
        } else {
            // Lost to another thief or the owner's last-element pop;
            // the bitwise copy is forgotten, never dropped.
            Steal::Retry
        }
    }

    /// Steal-half batching: takes up to `ceil(size / 2)` tasks (capped
    /// at `max`) from the victim as repeated single steals. The first
    /// stolen task is returned; the rest are pushed onto `dest` (the
    /// thief's own deque). Returns the task and how many extra tasks
    /// were moved to `dest`.
    pub fn steal_batch_and_pop(&self, dest: &Owner<T>, max: usize) -> Steal<(T, usize)> {
        let t = self.inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.inner.bottom.load(Ordering::Acquire);
        let size = b.wrapping_sub(t);
        if size <= 0 {
            return Steal::Empty;
        }
        let goal = usize::try_from(size.wrapping_add(1) / 2)
            .unwrap_or(1)
            .clamp(1, max.max(1));
        let first = match self.steal() {
            Steal::Taken(task) => task,
            other @ (Steal::Empty | Steal::Retry) => {
                return match other {
                    Steal::Empty => Steal::Empty,
                    _ => Steal::Retry,
                }
            }
        };
        let mut extra = 0usize;
        while extra + 1 < goal {
            match self.steal() {
                Steal::Taken(task) => {
                    dest.push(task);
                    extra += 1;
                }
                // Contention or drained victim: keep what we have.
                Steal::Empty | Steal::Retry => break,
            }
        }
        Steal::Taken((first, extra))
    }

    /// A racy snapshot of the victim's size.
    #[must_use]
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        usize::try_from(b.wrapping_sub(t)).unwrap_or(0)
    }

    /// `true` when the snapshot size is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn owner_push_pop_is_lifo() {
        let (owner, _stealer) = deque::<u32>();
        assert!(owner.is_empty());
        assert_eq!(owner.pop(), None);
        for i in 0..100 {
            owner.push(i);
        }
        assert_eq!(owner.len(), 100);
        for i in (0..100).rev() {
            assert_eq!(owner.pop(), Some(i));
        }
        assert_eq!(owner.pop(), None);
        assert!(owner.is_empty());
    }

    #[test]
    fn interleaved_push_pop_keeps_stack_discipline() {
        let (owner, _stealer) = deque_with_capacity::<u64>(2);
        let mut model: Vec<u64> = Vec::new();
        let mut rng = crate::rng::SmallRng::seed_from_u64(7);
        let steps = if cfg!(miri) { 500 } else { 10_000 };
        for step in 0..steps {
            if model.is_empty() || rng.ratio(3, 5) {
                owner.push(step);
                model.push(step);
            } else {
                assert_eq!(owner.pop(), model.pop());
            }
            assert_eq!(owner.len(), model.len());
        }
        while let Some(expect) = model.pop() {
            assert_eq!(owner.pop(), Some(expect));
        }
        assert_eq!(owner.pop(), None);
        assert!(owner.grows() > 0, "capacity 2 must have grown");
    }

    #[test]
    fn single_thief_steals_fifo_while_owner_pops_lifo() {
        let (owner, stealer) = deque::<u32>();
        for i in 0..10 {
            owner.push(i);
        }
        assert_eq!(stealer.steal().take(), Some(0), "thieves take the oldest");
        assert_eq!(stealer.steal().take(), Some(1));
        assert_eq!(owner.pop(), Some(9), "owner takes the newest");
        assert_eq!(stealer.len(), 7);
    }

    #[test]
    fn steal_batch_takes_half_and_pops_the_first() {
        let (victim, stealer) = deque::<u32>();
        let (thief, _thief_stealer) = deque::<u32>();
        for i in 0..10 {
            victim.push(i);
        }
        // ceil(10 / 2) = 5: one returned, four deposited.
        let Steal::Taken((first, extra)) = stealer.steal_batch_and_pop(&thief, 32) else {
            panic!("batch steal from a full deque must succeed");
        };
        assert_eq!(first, 0);
        assert_eq!(extra, 4);
        assert_eq!(thief.len(), 4);
        assert_eq!(victim.len(), 5);
        // The deposited tasks keep FIFO order bottom-up: thief pops 4.
        assert_eq!(thief.pop(), Some(4));
        // The cap bounds the batch.
        let Steal::Taken((first, extra)) = stealer.steal_batch_and_pop(&thief, 2) else {
            panic!("batch steal must succeed");
        };
        assert_eq!(first, 5);
        assert_eq!(extra, 1);
        assert_eq!(victim.len(), 3);
    }

    #[test]
    fn steal_batch_on_empty_reports_empty() {
        let (victim, stealer) = deque::<u32>();
        let (thief, _s) = deque::<u32>();
        assert_eq!(stealer.steal_batch_and_pop(&thief, 8), Steal::Empty);
        drop(victim);
    }

    /// Every pushed value is taken exactly once across 4–8 concurrent
    /// thieves plus the owner popping — the linearizability contract of
    /// the top-end CAS.
    #[test]
    fn concurrent_steals_take_every_task_exactly_once() {
        for thieves in [4usize, 8] {
            // Miri interprets every access, ~1000x slower: shrink the
            // load so the advisory CI job stays in budget while still
            // exercising growth and the last-element race.
            const TASKS: usize = if cfg!(miri) { 300 } else { 20_000 };
            let (owner, stealer) = deque_with_capacity::<usize>(4);
            let taken: Vec<AtomicUsize> = (0..TASKS).map(|_| AtomicUsize::new(0)).collect();
            let done = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|s| {
                for _ in 0..thieves {
                    let stealer = stealer.clone();
                    let taken = &taken;
                    let done = &done;
                    s.spawn(move || loop {
                        match stealer.steal() {
                            Steal::Taken(v) => {
                                taken[v].fetch_add(1, Ordering::Relaxed);
                            }
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    });
                }
                // The owner interleaves pushes with occasional pops, so
                // the last-element CAS race gets exercised.
                for v in 0..TASKS {
                    owner.push(v);
                    if v % 7 == 0 {
                        if let Some(got) = owner.pop() {
                            taken[got].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                while let Some(got) = owner.pop() {
                    taken[got].fetch_add(1, Ordering::Relaxed);
                }
                done.store(true, Ordering::Release);
            });
            for (v, count) in taken.iter().enumerate() {
                assert_eq!(
                    count.load(Ordering::Relaxed),
                    1,
                    "task {v} taken a wrong number of times with {thieves} thieves"
                );
            }
            assert!(owner.grows() > 0, "capacity 4 must grow under this load");
        }
    }

    /// Buffer growth while thieves are mid-steal: stale buffer pointers
    /// must keep reading valid (retired, unmutated) memory.
    #[test]
    fn growth_under_concurrent_stealing_loses_nothing() {
        const ROUNDS: usize = if cfg!(miri) { 20 } else { 200 };
        const BATCH: usize = 64;
        let (owner, stealer) = deque_with_capacity::<usize>(2);
        let stolen_sum = AtomicU64::new(0);
        let stolen_count = AtomicUsize::new(0);
        let done = std::sync::atomic::AtomicBool::new(false);
        let mut owner_sum = 0u64;
        let mut owner_count = 0usize;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stealer = stealer.clone();
                let (stolen_sum, stolen_count, done) = (&stolen_sum, &stolen_count, &done);
                s.spawn(move || loop {
                    match stealer.steal() {
                        Steal::Taken(v) => {
                            stolen_sum.fetch_add(v as u64, Ordering::Relaxed);
                            stolen_count.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for round in 0..ROUNDS {
                for i in 0..BATCH {
                    owner.push(round * BATCH + i);
                }
                // Drain a little to oscillate around the growth edge.
                for _ in 0..BATCH / 2 {
                    if let Some(v) = owner.pop() {
                        owner_sum += v as u64;
                        owner_count += 1;
                    }
                }
            }
            while let Some(v) = owner.pop() {
                owner_sum += v as u64;
                owner_count += 1;
            }
            done.store(true, Ordering::Release);
        });
        let total = ROUNDS * BATCH;
        assert_eq!(owner_count + stolen_count.load(Ordering::Relaxed), total);
        let expect: u64 = (0..total as u64).sum();
        assert_eq!(owner_sum + stolen_sum.load(Ordering::Relaxed), expect);
        assert!(owner.grows() >= 5, "capacity 2 must grow repeatedly");
    }

    /// Batched steals under contention still deliver exactly-once: the
    /// per-element CAS makes the batch a sequence of linearizable
    /// single steals.
    #[test]
    fn concurrent_batch_steals_partition_the_tasks() {
        const TASKS: usize = if cfg!(miri) { 300 } else { 10_000 };
        let (owner, stealer) = deque_with_capacity::<usize>(8);
        let done = std::sync::atomic::AtomicBool::new(false);
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stealer = stealer.clone();
                let (seen, done) = (&seen, &done);
                s.spawn(move || {
                    let (mine, _my_stealer) = deque::<usize>();
                    let mut got: Vec<usize> = Vec::new();
                    loop {
                        match stealer.steal_batch_and_pop(&mine, 16) {
                            Steal::Taken((first, _extra)) => {
                                got.push(first);
                                while let Some(v) = mine.pop() {
                                    got.push(v);
                                }
                            }
                            Steal::Retry => {}
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    let mut seen = seen.lock().unwrap();
                    for v in got {
                        assert!(seen.insert(v), "task {v} delivered twice");
                    }
                });
            }
            for v in 0..TASKS {
                owner.push(v);
            }
            while let Some(v) = owner.pop() {
                let mut seen = seen.lock().unwrap();
                assert!(seen.insert(v), "task {v} delivered twice (owner)");
            }
            done.store(true, Ordering::Release);
        });
        // Everything the owner pushed was delivered somewhere; thieves
        // may still be drying up when the owner finishes, so the final
        // count check happens after the scope joins every thief.
        assert_eq!(seen.lock().unwrap().len(), TASKS);
    }

    #[test]
    fn drop_reclaims_unpopped_tasks_and_retired_buffers() {
        // Arc payloads: a leak or double-drop would show up as a wrong
        // strong count on the survivor.
        let probe = Arc::new(());
        let (owner, stealer) = deque_with_capacity::<Arc<()>>(2);
        for _ in 0..100 {
            owner.push(Arc::clone(&probe));
        }
        for _ in 0..10 {
            drop(stealer.steal());
        }
        for _ in 0..10 {
            drop(owner.pop());
        }
        assert!(owner.grows() > 0);
        drop(owner);
        drop(stealer);
        assert_eq!(Arc::strong_count(&probe), 1, "every pushed Arc released");
    }
}
