//! A tracking global allocator for the `mem-profile` feature: live and
//! peak heap bytes for the whole process, at the cost of two relaxed
//! atomic RMWs per allocation.
//!
//! The structural `approx_bytes()` gauges (interner, dedup index, canon
//! memo, deques) account for the containers the engine *knows about*; this
//! module is the ground truth they are checked against — everything the
//! process actually allocated, including what the estimates miss. It is a
//! feature, not a default, because the per-allocation counters tax every
//! allocation in the process; perf gates run without it.
//!
//! A binary opts in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: lbsa_support::memtrack::TrackingAllocator =
//!     lbsa_support::memtrack::TrackingAllocator;
//! ```
//!
//! and then reads [`live_bytes`] / [`peak_bytes`] at any point — e.g. into
//! the `mem.heap_live_bytes` / `mem.heap_peak_bytes` registry gauges.
//!
//! This is the one other place (besides [`crate::deque`]) where the crate's
//! `deny(unsafe_code)` is lifted: implementing [`GlobalAlloc`] is
//! inherently an `unsafe impl`. The wrapper adds no pointer arithmetic of
//! its own — every allocation is forwarded verbatim to [`System`]; the
//! unsafety is confined to restating the contract `System` already upholds.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn on_alloc(bytes: usize) {
    let live = LIVE.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(bytes: usize) {
    LIVE.fetch_sub(bytes as u64, Ordering::Relaxed);
}

/// Heap bytes currently allocated through the tracking allocator. Zero
/// unless the running binary installed [`TrackingAllocator`] as its
/// `#[global_allocator]`.
#[must_use]
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since process start (or the last
/// [`reset_peak`]).
#[must_use]
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live level — for measuring the peak of
/// one phase rather than the whole process.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// [`System`] plus live/peak byte accounting. See the module docs for how
/// to install it.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrackingAllocator;

// SAFETY: every method forwards to `System` with the caller's layout
// unchanged, so `System`'s contract (valid pointers, correct
// size/alignment) carries over verbatim; the counters are side effects
// with no influence on the returned memory.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim; caller upholds `alloc`'s contract.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim; caller upholds the contract.
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; caller passes the pointer's layout.
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: forwarded verbatim; caller upholds `realloc`'s contract.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator itself is only *installed* by opt-in binaries; here we
    // exercise the counter arithmetic directly.
    #[test]
    fn counters_track_live_and_peak() {
        reset_peak();
        let before = live_bytes();
        on_alloc(1024);
        assert_eq!(live_bytes(), before + 1024);
        assert!(peak_bytes() >= before + 1024);
        on_dealloc(1024);
        assert_eq!(live_bytes(), before);
        assert!(peak_bytes() >= before + 1024, "peak survives the free");
    }
}
