//! The Fx multiply-xor hasher.
//!
//! The explorer's hot loops hash short `u32` slices (interned configuration
//! keys) millions of times; SipHash's per-call setup dominates at that size.
//! FxHash — the rustc-internal word-at-a-time multiply-xor hash — is the
//! standard drop-in for trusted, fixed-size integer keys.

use std::hash::{BuildHasherDefault, Hash, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A word-at-a-time multiply-xor hasher (non-cryptographic, not
/// HashDoS-resistant — for internal, trusted keys only).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`], for use with `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Hashes one value with [`FxHasher`].
#[must_use]
pub fn fx_hash<T: Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_hash_equal() {
        let a: Vec<u32> = vec![1, 2, 3, 4, 5];
        let b: Vec<u32> = vec![1, 2, 3, 4, 5];
        assert_eq!(fx_hash(&a), fx_hash(&b));
    }

    #[test]
    fn different_values_hash_differently() {
        // Not guaranteed in general, but these must differ for any sane mix.
        assert_ne!(fx_hash(&[1u32, 2]), fx_hash(&[2u32, 1]));
        assert_ne!(fx_hash(&0u64), fx_hash(&1u64));
    }

    #[test]
    fn map_works_with_fx() {
        let mut m: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        m.insert(vec![1, 2], 12);
        m.insert(vec![3], 3);
        assert_eq!(m.get([1u32, 2].as_slice()), Some(&12));
    }

    #[test]
    fn byte_tail_is_hashed() {
        assert_ne!(
            fx_hash(&b"abcdefgh1".to_vec()),
            fx_hash(&b"abcdefgh2".to_vec())
        );
    }
}
