//! A tiny property-test runner.
//!
//! Replaces the proptest harness for offline builds: a property is a closure
//! over a seeded [`SmallRng`]; the runner executes it for a fixed number of
//! cases with per-case seeds derived deterministically from the case index,
//! so every failure message names the exact seed that reproduces it.
//!
//! ```
//! use lbsa_support::check::run_cases;
//! run_cases("addition_commutes", 64, |rng| {
//!     let a = rng.i64_range(-100..100);
//!     let b = rng.i64_range(-100..100);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::SmallRng;

/// Base offset mixed into per-case seeds, overridable with `LBSA_CHECK_SEED`
/// to re-run a suite over a different slice of the input space.
fn base_seed() -> u64 {
    std::env::var("LBSA_CHECK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Runs `property` for `cases` seeded random cases.
///
/// # Panics
///
/// Re-panics any assertion failure inside `property`, prefixed with the
/// property name and the reproducing seed (pass it to [`run_seed`] to
/// replay).
pub fn run_cases<F>(name: &str, cases: u64, mut property: F)
where
    F: FnMut(&mut SmallRng),
{
    let base = base_seed();
    for case in 0..cases {
        let seed = base.wrapping_add(case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_seed(seed, &mut property);
        }));
        if let Err(payload) = result {
            eprintln!("property '{name}' failed at case {case}: replay with run_seed({seed}, ..) or LBSA_CHECK_SEED={seed}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Runs `property` once with the given seed (replay entry point).
pub fn run_seed<F>(seed: u64, property: &mut F)
where
    F: FnMut(&mut SmallRng),
{
    // Decorrelate consecutive seeds: feed the raw seed through one
    // SplitMix64 round via the generator's own seeding.
    let mut rng = SmallRng::seed_from_u64(seed);
    property(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u64;
        run_cases("counts", 17, |_| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn failing_property_names_seed() {
        let result = std::panic::catch_unwind(|| {
            run_cases("fails", 10, |rng| {
                let x = rng.random_range(0..100);
                assert!(x > 1000, "always fails");
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn replay_is_deterministic() {
        let mut a = Vec::new();
        run_seed(7, &mut |rng: &mut SmallRng| a.push(rng.next_u64()));
        let mut b = Vec::new();
        run_seed(7, &mut |rng: &mut SmallRng| b.push(rng.next_u64()));
        assert_eq!(a, b);
    }
}
