//! Seeded, reproducible pseudo-random numbers.
//!
//! [`SmallRng`] is xoshiro256\*\* seeded through SplitMix64 — the standard
//! construction for turning a 64-bit seed into a full 256-bit state. It is
//! deliberately *not* cryptographic: its jobs are adversarial schedule
//! sampling, outcome resolution, and randomized test-case generation, all of
//! which need speed and reproducibility only.

/// A small, fast, seeded PRNG (xoshiro256\*\*).
///
/// The API mirrors the subset of `rand::rngs::StdRng` this workspace used:
/// [`SmallRng::seed_from_u64`] and [`SmallRng::random_range`].
///
/// # Examples
///
/// ```
/// use lbsa_support::rng::SmallRng;
/// let mut a = SmallRng::seed_from_u64(7);
/// let mut b = SmallRng::seed_from_u64(7);
/// assert_eq!(a.random_range(0..100), b.random_range(0..100));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `usize` in `range` (Lemire-style rejection-free reduction;
    /// the bias is below 2⁻⁶⁴ per draw, irrelevant for test workloads).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        let x = self.next_u64();
        let reduced = ((u128::from(x) * u128::from(span)) >> 64) as u64;
        range.start + usize::try_from(reduced).expect("span fits usize")
    }

    /// A uniform `i64` in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn i64_range(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.abs_diff(range.start);
        let x = self.next_u64();
        let reduced = ((u128::from(x) * u128::from(span)) >> 64) as u64;
        range
            .start
            .wrapping_add(i64::try_from(reduced).expect("span fits i64"))
    }

    /// A random boolean with probability `num`/`den` of being `true`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn ratio(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0, "zero denominator");
        self.next_u64() % den < num
    }

    /// A uniformly-chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.random_range(0..items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.random_range(5..9);
            assert!((5..9).contains(&x));
            let y = r.i64_range(-4..3);
            assert!((-4..3).contains(&y));
        }
    }

    #[test]
    fn range_covers_every_value() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.random_range(0..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_and_ratio() {
        let mut r = SmallRng::seed_from_u64(5);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(r.choose(&items)));
        }
        assert!((0..100).all(|_| r.ratio(1, 1)));
        assert!(!(0..100).any(|_| r.ratio(0, 1)));
    }
}
