//! A minimal JSON document model with a deterministic writer and a strict
//! parser.
//!
//! The workspace compiles offline, so the report schema of `lbsa-bench`
//! cannot use `serde`/`serde_json`. This module supplies the small subset
//! the reporting layer needs:
//!
//! * [`Json`] — an ordered document tree (objects keep insertion order, so
//!   emission is byte-deterministic);
//! * [`Json::pretty`] / [`Json::compact`] — writers with stable output;
//! * [`Json::parse`] — a strict recursive-descent parser (UTF-8 input,
//!   `\uXXXX` escapes including surrogate pairs), used by the `exp_report`
//!   aggregator and the schema round-trip tests.
//!
//! Numbers distinguish integers from floats ([`Json::Int`] vs
//! [`Json::Num`]) so that `emit ∘ parse` is the identity on reports, whose
//! counters are all integers.

use std::fmt;

/// A JSON value. Object members keep insertion order — two structurally
/// equal documents emit identical bytes.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without decimal point).
    Int(i64),
    /// A float (emitted via `{:?}`, which round-trips f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an ordered member list.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Int(i64::from(v))
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

impl Json {
    /// An empty object, for fluent construction with [`Json::set`].
    #[must_use]
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends (or replaces) a member on an object, fluently. Panics if
    /// `self` is not an object — construction-site misuse, not input error.
    #[must_use]
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Obj(members) = &mut self else {
            panic!("Json::set on a non-object");
        };
        let value = value.into();
        if let Some(slot) = members.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            members.push((key.to_string(), value));
        }
        self
    }

    /// Looks up an object member.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (integers widen).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Emits the document on one line.
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Emits the document with two-space indentation and a trailing
    /// newline — the on-disk format of `reports/*.json`.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let mut buf = itoa_buffer();
                out.push_str(write_i64(&mut buf, *v));
            }
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:?}"));
                } else {
                    // JSON has no NaN/inf; degrade to null like serde_json.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. The whole input must be one value (plus
    /// surrounding whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first offending byte offset.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after document"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn itoa_buffer() -> [u8; 24] {
    [0; 24]
}

fn write_i64(buf: &mut [u8; 24], v: i64) -> &str {
    use std::io::Write as _;
    let mut cursor = std::io::Cursor::new(&mut buf[..]);
    write!(cursor, "{v}").expect("24 bytes fit any i64");
    let len = cursor.position() as usize;
    std::str::from_utf8(&buf[..len]).expect("ascii digits")
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte 0x{b:02x}"))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let doc = Json::object()
            .set("name", "t2_dac")
            .set("n", 3i64)
            .set("ok", true)
            .set("rate", 0.5)
            .set("rows", vec![Json::from(1i64), Json::from(2i64)]);
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("t2_dac"));
        assert_eq!(doc.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("rate").and_then(Json::as_f64), Some(0.5));
        assert_eq!(doc.get("rows").and_then(Json::as_arr).unwrap().len(), 2);
        assert_eq!(doc.get("missing"), None);
        // set replaces on duplicate key
        let doc = doc.set("n", 4i64);
        assert_eq!(doc.get("n").and_then(Json::as_i64), Some(4));
    }

    #[test]
    fn compact_emission_is_canonical() {
        let doc = Json::object()
            .set("a", Json::Arr(vec![]))
            .set("b", Json::object())
            .set("s", "x\"y\\z\n");
        assert_eq!(doc.compact(), r#"{"a":[],"b":{},"s":"x\"y\\z\n"}"#);
    }

    #[test]
    fn pretty_emission_indents() {
        let doc = Json::object().set("k", vec![Json::from(1i64)]);
        assert_eq!(doc.pretty(), "{\n  \"k\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn parse_round_trips_pretty_and_compact() {
        let doc = Json::object()
            .set("schema", "lbsa-report/v1")
            .set("int", -42i64)
            .set("float", 1.25)
            .set("none", Json::Null)
            .set("flag", false)
            .set(
                "nested",
                Json::object().set("arr", vec![Json::from("a"), Json::from(7i64)]),
            );
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.compact()).unwrap(), doc);
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let parsed = Json::parse(r#""a\u0041\n\t\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(parsed, Json::Str("aA\n\té😀".to_string()));
        // Emission escapes control characters back.
        let emitted = Json::Str("\u{1}".to_string()).compact();
        assert_eq!(emitted, r#""\u0001""#);
        assert_eq!(
            Json::parse(&emitted).unwrap(),
            Json::Str("\u{1}".to_string())
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"\\q\"",
            "\"unterminated",
            "01x",
            "{\"a\":}",
            "nul",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_parse_by_kind() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert!(Json::parse("99999999999999999999").is_err());
    }

    #[test]
    fn error_reports_offset() {
        let e = Json::parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
