//! Lightweight tracing and metrics for the exploration engine.
//!
//! The model checker's hot phases — shard interning, orbit
//! canonicalization, parallel-gate decisions, the two-phase merge, witness
//! extraction and replay — are invisible from the outside: aggregates say
//! *what* happened, not *where the time went*. This module supplies the
//! observability layer the rest of the workspace threads through those
//! phases:
//!
//! * [`Tracer`] — a cheap, clonable handle that emits span-style
//!   [`Event`]s to a pluggable [`TraceSink`]. The default handle is
//!   **inert** ([`Tracer::disabled`]): `enabled()` is a single `Option`
//!   check and [`Tracer::emit_with`] never builds its payload, so an
//!   untraced run pays near-zero overhead.
//! * [`TraceSink`] implementations — [`NoopSink`], human-readable
//!   [`StderrSink`], a JSONL trace writer ([`JsonlSink`], one compact JSON
//!   object per line, the `reports/<id>.trace.jsonl` artifact format), and
//!   an in-memory collector for tests ([`MemorySink`]).
//! * [`Counter`] / [`Gauge`] / [`TimerNs`] — relaxed atomic counters,
//!   level gauges, and nanosecond accumulators for always-on metrics
//!   (interner shard hits/misses, transition-memo hits, frontier depth,
//!   orbit-canonicalization time) that are safe to bump from concurrent
//!   expansion workers.
//! * [`Registry`] — a shared, lock-light registry of *named* live metrics.
//!   Engines register the counters and gauges they already bump under
//!   dotted names (`explore.configs`, `ws.steals`, `mem.index_bytes`);
//!   the registry lock is held only to register or snapshot, never on the
//!   bump path, so a background watcher can [`Registry::snapshot`] a run
//!   mid-flight or render an OpenMetrics text exposition
//!   ([`Registry::render_prometheus`]) without perturbing it.
//!
//! ## Event model
//!
//! An [`Event`] is a name, a monotonic per-tracer sequence number, a
//! microsecond timestamp relative to the tracer's epoch, and a JSON object
//! of fields. Phases with duration emit a single event at phase *end*
//! carrying the measured duration as a field (`…_us`), rather than paired
//! begin/end events — one line per phase keeps JSONL traces greppable and
//! the sink contract trivial.
//!
//! ## Overhead policy
//!
//! Anything on a per-successor path must be gated on
//! [`Tracer::enabled`] (e.g. per-call canonicalization timing) or use a
//! relaxed atomic at worst (counters). Per-level and per-run events are
//! unconditionally cheap. The committed perf gates (`perf_smoke`) run with
//! the inert handle and bound the total instrumentation cost.

use crate::json::Json;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One trace event: a named point (or completed span) in an instrumented
/// run.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Monotonic sequence number within the emitting [`Tracer`].
    pub seq: u64,
    /// Microseconds since the tracer's epoch (its creation).
    pub t_us: u64,
    /// Event name, dot-namespaced by subsystem (`explore.begin`, `level`,
    /// `pargate`, `witness.extract`, …).
    pub name: &'static str,
    /// Structured payload; always a JSON object.
    pub fields: Json,
}

impl Event {
    /// Serializes the event as one flat JSON object: `seq`, `t_us`,
    /// `event`, then every payload field. This is the JSONL line format.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object()
            .set("seq", self.seq)
            .set("t_us", self.t_us)
            .set("event", self.name);
        if let Json::Obj(members) = &self.fields {
            for (k, v) in members {
                doc = doc.set(k, v.clone());
            }
        }
        doc
    }
}

/// Where trace events go. Implementations must be safe to call from
/// concurrent expansion workers; ordering across threads is whatever the
/// sequence numbers say, not arrival order.
pub trait TraceSink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &Event);
    /// Flushes any buffering. Default: nothing to flush.
    fn flush(&self) {}
}

/// A sink that drops every event — the explicit form of what a disabled
/// [`Tracer`] does implicitly (prefer [`Tracer::disabled`], which also
/// skips payload construction).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn emit(&self, _event: &Event) {}
}

/// Human-readable tracing to stderr, one line per event.
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn emit(&self, event: &Event) {
        eprintln!(
            "trace [{:>9}us] {:<18} {}",
            event.t_us,
            event.name,
            event.fields.compact()
        );
    }
}

/// How many events a [`JsonlSink`] buffers before forcing a flush. Live
/// followers (`obs_top --follow`) see the file advance at least this
/// often; `progress` events flush immediately so a dashboard's heartbeat
/// never sits in a `BufWriter`.
pub const JSONL_FLUSH_EVERY: u64 = 64;

/// JSONL trace writer: each event becomes one compact JSON object on its
/// own line (see [`Event::to_json`]). Write errors are swallowed —
/// observability must never take down the run it observes.
///
/// The writer is buffered but **tail-friendly**: it flushes every
/// [`JSONL_FLUSH_EVERY`] events and on every `progress` event (plus
/// [`flush`](TraceSink::flush) and `Drop`), so a concurrent reader of the
/// growing file only ever sees whole lines go stale, never a run that
/// looks frozen until exit.
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
    unflushed: AtomicU64,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be created.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            out: Mutex::new(std::io::BufWriter::new(file)),
            unflushed: AtomicU64::new(0),
        })
    }
}

impl TraceSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut out = self.out.lock().expect("trace sink poisoned");
        let _ = writeln!(out, "{}", event.to_json().compact());
        let pending = self.unflushed.fetch_add(1, Ordering::Relaxed) + 1;
        if event.name == "progress" || pending >= JSONL_FLUSH_EVERY {
            self.unflushed.store(0, Ordering::Relaxed);
            let _ = out.flush();
        }
    }

    fn flush(&self) {
        self.unflushed.store(0, Ordering::Relaxed);
        let _ = self.out.lock().expect("trace sink poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// In-memory event collector for tests: clone the sink before handing it
/// to a [`Tracer`], then read [`MemorySink::events`] afterwards.
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A snapshot of every event collected so far, in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// The names of every collected event, in emission order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .iter()
            .map(|e| e.name)
            .collect()
    }
}

impl TraceSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

struct TracerCore {
    sink: Box<dyn TraceSink>,
    epoch: Instant,
    seq: AtomicU64,
}

/// A clonable tracing handle. Disabled by default; when enabled, every
/// [`Tracer::emit`] stamps the event with a sequence number and the
/// microseconds since the tracer was created, then hands it to the sink.
///
/// Clones share the sink, the epoch, and the sequence counter, so one
/// tracer can be threaded through the explorer, the verdict layer, and the
/// runtime and still produce one totally-ordered event stream.
#[derive(Clone, Default)]
pub struct Tracer {
    core: Option<Arc<TracerCore>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.core {
            None => f.write_str("Tracer(disabled)"),
            Some(core) => write!(
                f,
                "Tracer(enabled, {} events)",
                core.seq.load(Ordering::Relaxed)
            ),
        }
    }
}

impl Tracer {
    /// The inert handle: `enabled()` is false, every emit is a no-op, and
    /// [`Tracer::emit_with`] never runs its payload closure.
    #[must_use]
    pub fn disabled() -> Tracer {
        Tracer { core: None }
    }

    /// A tracer writing to `sink`, with its epoch set to now.
    #[must_use]
    pub fn new(sink: impl TraceSink + 'static) -> Tracer {
        Tracer {
            core: Some(Arc::new(TracerCore {
                sink: Box::new(sink),
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
            })),
        }
    }

    /// `true` if events actually go anywhere. Instrumentation with a
    /// nontrivial cost to *prepare* (per-call timers, payload allocation)
    /// must check this first.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Emits one event. `fields` must be a JSON object (or `Json::Null`
    /// for field-less events). Call sites that allocate to build `fields`
    /// should prefer [`Tracer::emit_with`].
    pub fn emit(&self, name: &'static str, fields: Json) {
        let Some(core) = &self.core else { return };
        let event = Event {
            seq: core.seq.fetch_add(1, Ordering::Relaxed),
            t_us: u64::try_from(core.epoch.elapsed().as_micros()).unwrap_or(u64::MAX),
            name,
            fields,
        };
        core.sink.emit(&event);
    }

    /// Emits one event, building the payload only when the tracer is
    /// enabled — the zero-overhead form for hot call sites.
    pub fn emit_with(&self, name: &'static str, fields: impl FnOnce() -> Json) {
        if self.enabled() {
            self.emit(name, fields());
        }
    }

    /// Number of events emitted through this tracer (and its clones) so
    /// far. Zero for a disabled tracer.
    #[must_use]
    pub fn events_emitted(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.seq.load(Ordering::Relaxed))
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        if let Some(core) = &self.core {
            core.sink.flush();
        }
    }
}

/// A relaxed atomic event counter, safe to bump from concurrent workers.
/// Always-on metrics (shard hits/misses, memo hits) use this: one relaxed
/// RMW per event is cheap next to the hash-map probe it annotates.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A relaxed atomic level gauge: a value that goes up *and* down (frontier
/// depth, live heap bytes, parked workers), where [`Counter`] only
/// accumulates. Safe to set from one place and read from a watcher thread,
/// or to add/sub from concurrent workers.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Sets the gauge to `v`, saturating at `i64::MAX` (the convenient
    /// form for `usize` sizes and byte counts).
    pub fn set_usize(&self, v: usize) {
        self.set(i64::try_from(v).unwrap_or(i64::MAX));
    }

    /// Adds `n` (which may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A relaxed atomic duration accumulator (nanosecond resolution), for
/// timers fed from concurrent workers. Reading the clock around the timed
/// region is the caller's responsibility — and should be gated on
/// [`Tracer::enabled`] when the region is a per-successor hot path.
#[derive(Debug, Default)]
pub struct TimerNs(AtomicU64);

impl TimerNs {
    /// A timer at zero.
    #[must_use]
    pub fn new() -> TimerNs {
        TimerNs::default()
    }

    /// Accumulates one measured duration.
    pub fn record(&self, d: Duration) {
        self.0.fetch_add(
            u64::try_from(d.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// The accumulated total.
    #[must_use]
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.0.load(Ordering::Relaxed))
    }
}

/// Number of log2 buckets in a [`HistogramNs`]: bucket `i` (for
/// `1 <= i < 63`) counts durations in `[2^(i-1), 2^i - 1]` nanoseconds,
/// bucket `0` counts zero-length measurements, and the last bucket absorbs
/// everything from `2^62` ns up.
pub const HIST_BUCKETS: usize = 64;

/// A lock-light latency histogram with logarithmic (power-of-two)
/// nanosecond buckets.
///
/// Recording is one relaxed atomic increment — safe to feed from
/// concurrent expansion workers without a mutex — and per-worker
/// histograms [`merge`](HistogramNs::merge) into a run-wide one at
/// assembly time. Quantiles ([`p50`](HistogramNs::p50),
/// [`p95`](HistogramNs::p95), [`p99`](HistogramNs::p99)) are estimated as
/// the midpoint of the bucket containing the requested rank, so they carry
/// at most one octave of error — plenty for the "where did the time go"
/// questions the trace observatory asks, at a fraction of the cost of
/// exact reservoirs.
pub struct HistogramNs {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistogramNs {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> HistogramNs {
        HistogramNs {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket index for a duration of `ns` nanoseconds.
    #[must_use]
    fn bucket_of(ns: u64) -> usize {
        ((u64::BITS - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// The inclusive `(low, high)` nanosecond range of bucket `i`.
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            _ if i >= HIST_BUCKETS - 1 => (1 << (HIST_BUCKETS - 2), u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one measurement of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[HistogramNs::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one measured duration.
    pub fn record(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Adds every count from `other` into `self` — how per-worker
    /// histograms fold into the run-wide view.
    pub fn merge(&self, other: &HistogramNs) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Total number of recorded measurements.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The estimated `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the
    /// midpoint of the bucket holding the rank-`ceil(q·count)` sample.
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let (lo, hi) = HistogramNs::bucket_bounds(i);
                return lo + (hi - lo) / 2;
            }
        }
        let (lo, hi) = HistogramNs::bucket_bounds(HIST_BUCKETS - 1);
        lo + (hi - lo) / 2
    }

    /// Estimated median, in nanoseconds.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Estimated 95th percentile, in nanoseconds.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// Estimated 99th percentile, in nanoseconds.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Serializes the histogram as a nested JSON object:
    /// `{count, p50_ns, p95_ns, p99_ns, buckets: {"<low_ns>": count, …}}`
    /// with only non-empty buckets listed, low bound ascending. This is
    /// the shape embedded in the `lbsa-report/v2` metrics object (and the
    /// shape `exp_report --metrics` flattens with dotted keys).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut buckets = Json::object();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets = buckets.set(&HistogramNs::bucket_bounds(i).0.to_string(), n);
            }
        }
        Json::object()
            .set("count", self.count())
            .set("p50_ns", self.p50())
            .set("p95_ns", self.p95())
            .set("p99_ns", self.p99())
            .set("buckets", buckets)
    }
}

impl Default for HistogramNs {
    fn default() -> HistogramNs {
        HistogramNs::new()
    }
}

impl Clone for HistogramNs {
    fn clone(&self) -> HistogramNs {
        let copy = HistogramNs::new();
        copy.merge(self);
        copy
    }
}

impl std::fmt::Debug for HistogramNs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HistogramNs(count={}, p50={}ns, p95={}ns, p99={}ns)",
            self.count(),
            self.p50(),
            self.p95(),
            self.p99()
        )
    }
}

/// One named live metric held by a [`Registry`]: a shared handle to a
/// [`Counter`], [`Gauge`], [`TimerNs`], or [`HistogramNs`]. The `Arc` is
/// the whole design — the registry hands the *same* atomic to the engine
/// that bumps it and to the watcher that reads it, so registration costs
/// one lock round-trip and every update after that is lock-free.
#[derive(Clone, Debug)]
pub enum Metric {
    /// A monotone event counter.
    Counter(Arc<Counter>),
    /// A level gauge (may go down).
    Gauge(Arc<Gauge>),
    /// A nanosecond accumulator.
    Timer(Arc<TimerNs>),
    /// A latency histogram.
    Histogram(Arc<HistogramNs>),
}

impl Metric {
    /// The metric's current scalar value: count, level, or accumulated
    /// nanoseconds. Histograms report their sample count.
    #[must_use]
    pub fn value(&self) -> i64 {
        match self {
            Metric::Counter(c) => i64::try_from(c.get()).unwrap_or(i64::MAX),
            Metric::Gauge(g) => g.get(),
            Metric::Timer(t) => i64::try_from(t.total().as_nanos()).unwrap_or(i64::MAX),
            Metric::Histogram(h) => i64::try_from(h.count()).unwrap_or(i64::MAX),
        }
    }

    /// The OpenMetrics type keyword for this metric kind.
    #[must_use]
    fn prom_type(&self) -> &'static str {
        match self {
            Metric::Counter(_) | Metric::Timer(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "summary",
        }
    }
}

/// A shared, lock-light registry of named live metrics.
///
/// Names are dot-namespaced by subsystem (`explore.configs`,
/// `ws.steals`, `sample.runs`, `mem.interner_bytes`). The accessors
/// ([`counter`](Registry::counter), [`gauge`](Registry::gauge), …) are
/// get-or-register: the first call under a name creates the metric, later
/// calls return the same shared handle — so an engine and a dashboard
/// agree on one atomic without coordinating. The internal lock guards
/// only the name table; bumping a handed-out handle never takes it.
///
/// Clones share the table ([`Registry`] is a handle, like [`Tracer`]).
///
/// # Panics
///
/// The accessors panic when a name is already registered *as a different
/// kind* — that is a programming error (two subsystems fighting over one
/// name), not a runtime condition.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    fn table(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.inner.lock().expect("metrics registry poisoned")
    }

    /// The counter named `name`, registering it at zero on first sight.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut table = self.table();
        match table
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a counter"),
        }
    }

    /// The gauge named `name`, registering it at zero on first sight.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut table = self.table();
        match table
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a gauge"),
        }
    }

    /// The timer named `name`, registering it at zero on first sight.
    #[must_use]
    pub fn timer(&self, name: &str) -> Arc<TimerNs> {
        let mut table = self.table();
        match table
            .entry(name.to_string())
            .or_insert_with(|| Metric::Timer(Arc::new(TimerNs::new())))
        {
            Metric::Timer(t) => Arc::clone(t),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a timer"),
        }
    }

    /// The histogram named `name`, registering it empty on first sight.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<HistogramNs> {
        let mut table = self.table();
        match table
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramNs::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {other:?}, wanted a histogram"),
        }
    }

    /// Looks up a metric by exact name without registering anything.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.table().get(name).cloned()
    }

    /// Every registered name, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.table().keys().cloned().collect()
    }

    /// A point-in-time snapshot of every metric as one flat JSON object,
    /// keys sorted. Counters and gauges become integers, timers become
    /// `<name>` in nanoseconds, histograms embed their
    /// [`HistogramNs::to_json`] object. The snapshot is *per-metric*
    /// atomic (each value is one relaxed load), not cross-metric — a
    /// watcher reading mid-run may see counter A ahead of counter B.
    #[must_use]
    pub fn snapshot(&self) -> Json {
        let table = self.table();
        let mut doc = Json::object();
        for (name, metric) in table.iter() {
            doc = match metric {
                Metric::Histogram(h) => doc.set(name, h.to_json()),
                other => doc.set(name, other.value()),
            };
        }
        doc
    }

    /// Renders the registry in the OpenMetrics / Prometheus text
    /// exposition format: dotted names become underscore-separated, each
    /// metric gets a `# TYPE` line, counters and timers get the `_total`
    /// suffix the format reserves for monotone series, and histograms
    /// render as summaries with `quantile` labels. Deterministic: names
    /// are emitted sorted.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let table = self.table();
        let mut out = String::new();
        for (name, metric) in table.iter() {
            let base: String = name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            let _ = writeln!(out, "# TYPE {base} {}", metric.prom_type());
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{base}_total {}", c.get());
                }
                Metric::Timer(t) => {
                    let _ = writeln!(out, "{base}_total {}", duration_ns_u64(t.total()));
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{base} {}", g.get());
                }
                Metric::Histogram(h) => {
                    for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
                        let _ = writeln!(out, "{base}{{quantile=\"{q}\"}} {v}");
                    }
                    let _ = writeln!(out, "{base}_count {}", h.count());
                }
            }
        }
        out
    }
}

/// A duration in whole nanoseconds, saturating at `u64::MAX`.
fn duration_ns_u64(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.emit("x", Json::object());
        let mut built = false;
        t.emit_with("y", || {
            built = true;
            Json::object()
        });
        assert!(!built, "payload must not be built when disabled");
        assert_eq!(t.events_emitted(), 0);
        t.flush();
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        let t = Tracer::new(sink.clone());
        assert!(t.enabled());
        t.emit("a", Json::object().set("k", 1i64));
        let t2 = t.clone();
        t2.emit("b", Json::Null);
        t.emit("c", Json::object());
        let events = sink.events();
        assert_eq!(sink.names(), vec!["a", "b", "c"]);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "clones share one sequence"
        );
        assert!(events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        assert_eq!(t.events_emitted(), 3);
        assert_eq!(events[0].to_json().get("k"), Some(&Json::Int(1)));
        assert_eq!(
            events[0].to_json().get("event").and_then(Json::as_str),
            Some("a")
        );
    }

    #[test]
    fn concurrent_emission_keeps_sequence_numbers_distinct() {
        let sink = MemorySink::new();
        let t = Tracer::new(sink.clone());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        t.emit("tick", Json::object());
                    }
                });
            }
        });
        let mut seqs: Vec<u64> = sink.events().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..400).collect::<Vec<u64>>());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join(format!(
            "lbsa-obs-test-{}-{:?}.trace.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let t = Tracer::new(JsonlSink::create(&path).expect("temp file"));
        t.emit("begin", Json::object().set("threads", 4usize));
        t.emit("end", Json::object().set("ok", true));
        t.flush();
        let text = std::fs::read_to_string(&path).expect("trace written");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let doc = Json::parse(line).expect("well-formed JSONL line");
            assert!(doc.get("event").and_then(Json::as_str).is_some());
            assert!(doc.get("seq").is_some() && doc.get("t_us").is_some());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn counters_and_timers_accumulate() {
        let c = Counter::new();
        c.bump();
        c.add(41);
        assert_eq!(c.get(), 42);
        let timer = TimerNs::new();
        timer.record(Duration::from_micros(3));
        timer.record(Duration::from_micros(4));
        assert_eq!(timer.total(), Duration::from_micros(7));
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = HistogramNs::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0, "empty histogram reports zero");
        h.record_ns(0);
        h.record_ns(1);
        h.record_ns(3);
        h.record(Duration::from_nanos(1024));
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 5);
        let doc = h.to_json();
        let buckets = doc.get("buckets").expect("buckets object");
        assert_eq!(buckets.get("0").and_then(Json::as_i64), Some(1));
        assert_eq!(buckets.get("1").and_then(Json::as_i64), Some(1));
        assert_eq!(buckets.get("2").and_then(Json::as_i64), Some(1));
        assert_eq!(buckets.get("1024").and_then(Json::as_i64), Some(1));
        assert_eq!(
            buckets
                .get(&(1u64 << 62).to_string())
                .and_then(Json::as_i64),
            Some(1),
            "saturating top bucket catches u64::MAX"
        );
        assert!(doc.get("p50_ns").is_some() && doc.get("count").is_some());
    }

    #[test]
    fn histogram_quantiles_stay_within_one_octave() {
        let h = HistogramNs::new();
        for _ in 0..90 {
            h.record_ns(1_000); // bucket [512, 1023]
        }
        for _ in 0..10 {
            h.record_ns(1_000_000); // bucket [524288, 1048575]
        }
        let p50 = h.p50();
        assert!(
            (512..=1023).contains(&p50),
            "p50 {p50} must land in the 1µs bucket"
        );
        let p99 = h.p99();
        assert!(
            (524_288..=1_048_575).contains(&p99),
            "p99 {p99} must land in the 1ms bucket"
        );
        assert!(h.p95() <= p99 && p50 <= h.p95(), "quantiles are monotone");
    }

    #[test]
    fn histogram_merge_is_additive() {
        let a = HistogramNs::new();
        let b = HistogramNs::new();
        for i in 0..50u64 {
            a.record_ns(100 + i);
            b.record_ns(10_000 + i);
        }
        let merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 100);
        assert_eq!(a.count(), 50, "merge leaves the source untouched");
        assert!(
            merged.p95() > a.p95(),
            "tail mass from b must pull the merged p95 up"
        );
    }

    #[test]
    fn histogram_concurrent_recording_is_lossless() {
        let h = HistogramNs::new();
        std::thread::scope(|s| {
            for worker in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record_ns(worker * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn jsonl_sink_flushes_periodically_for_live_tailing() {
        let path = std::env::temp_dir().join(format!(
            "lbsa-obs-tail-{}-{:?}.trace.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let t = Tracer::new(JsonlSink::create(&path).expect("temp file"));
        // Below the flush threshold nothing is promised; a `progress`
        // event must force the buffered prefix out immediately.
        for i in 0..5u64 {
            t.emit("tick", Json::object().set("i", i));
        }
        t.emit("progress", Json::object().set("configs", 5u64));
        let text = std::fs::read_to_string(&path).expect("trace readable mid-run");
        assert_eq!(text.lines().count(), 6, "progress event flushes the buffer");
        // Crossing JSONL_FLUSH_EVERY flushes without any progress event.
        for i in 0..JSONL_FLUSH_EVERY {
            t.emit("tick", Json::object().set("i", i));
        }
        let text = std::fs::read_to_string(&path).expect("trace readable mid-run");
        assert!(
            text.lines().count() >= 6 + JSONL_FLUSH_EVERY as usize,
            "periodic flush keeps the file advancing"
        );
        for line in text.lines() {
            assert!(
                Json::parse(line).is_ok(),
                "concurrently-read file yields only whole JSONL lines"
            );
        }
        drop(t);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let reg = Registry::new();
        let a = reg.counter("explore.configs");
        let b = reg.clone().counter("explore.configs");
        a.add(3);
        b.bump();
        assert_eq!(a.get(), 4, "both handles bump one atomic");
        let g = reg.gauge("explore.frontier_depth");
        g.set(17);
        g.sub(2);
        assert_eq!(g.get(), 15);
        reg.timer("explore.canon_ns")
            .record(Duration::from_nanos(7));
        reg.histogram("explore.level_ns").record_ns(100);
        let mut names = reg.names();
        names.sort();
        assert_eq!(
            names,
            vec![
                "explore.canon_ns",
                "explore.configs",
                "explore.frontier_depth",
                "explore.level_ns"
            ]
        );
        assert!(matches!(
            reg.get("explore.configs"),
            Some(Metric::Counter(_))
        ));
        assert!(reg.get("absent").is_none());
    }

    #[test]
    fn registry_snapshot_is_coherent_under_concurrent_writers() {
        let reg = Registry::new();
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let writers: Vec<_> = (0..4)
                .map(|w| {
                    let reg = reg.clone();
                    s.spawn(move || {
                        let c = reg.counter("w.events");
                        let g = reg.gauge("w.depth");
                        for i in 0..5_000i64 {
                            c.bump();
                            g.set(i);
                        }
                        reg.counter(&format!("w.{w}.done")).bump();
                    })
                })
                .collect();
            let watcher = {
                let reg = reg.clone();
                let done = &done;
                s.spawn(move || {
                    // A watcher snapshotting mid-run: counters never
                    // decrease across snapshots and every snapshot is a
                    // coherent object.
                    let mut last = 0i64;
                    while !done.load(Ordering::Relaxed) {
                        let snap = reg.snapshot();
                        if let Some(v) = snap.get("w.events").and_then(Json::as_i64) {
                            assert!(v >= last, "counter went backwards: {v} < {last}");
                            last = v;
                        }
                        std::thread::yield_now();
                    }
                })
            };
            for h in writers {
                h.join().expect("writer panicked");
            }
            done.store(true, Ordering::Relaxed);
            watcher.join().expect("watcher panicked");
        });
        let snap = reg.snapshot();
        assert_eq!(snap.get("w.events").and_then(Json::as_i64), Some(20_000));
        for w in 0..4 {
            assert_eq!(
                snap.get(&format!("w.{w}.done")).and_then(Json::as_i64),
                Some(1)
            );
        }
    }

    #[test]
    fn prometheus_rendering_follows_the_exposition_format() {
        let reg = Registry::new();
        reg.counter("explore.configs").add(42);
        reg.gauge("mem.interner_bytes").set(1024);
        reg.timer("explore.canon").record(Duration::from_nanos(99));
        reg.histogram("ws.task_ns").record_ns(1000);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE explore_configs counter\nexplore_configs_total 42\n"));
        assert!(text.contains("# TYPE mem_interner_bytes gauge\nmem_interner_bytes 1024\n"));
        assert!(text.contains("# TYPE explore_canon counter\nexplore_canon_total 99\n"));
        assert!(text.contains("# TYPE ws_task_ns summary\n"));
        assert!(text.contains("ws_task_ns{quantile=\"0.5\"}"));
        assert!(text.contains("ws_task_ns_count 1\n"));
        // Dotted names sort before rendering, so output is deterministic.
        let first = text.lines().next().unwrap();
        assert_eq!(first, "# TYPE explore_canon counter");
    }

    #[test]
    fn noop_and_stderr_sinks_accept_events() {
        let event = Event {
            seq: 0,
            t_us: 1,
            name: "x",
            fields: Json::object(),
        };
        NoopSink.emit(&event);
        NoopSink.flush();
        // StderrSink just writes a line; smoke-test it doesn't panic.
        StderrSink.emit(&event);
    }
}
