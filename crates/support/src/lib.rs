//! # lbsa-support — zero-dependency infrastructure
//!
//! The workspace is built to compile **offline**: no crates.io access is
//! assumed. This crate supplies the small, self-contained pieces that would
//! otherwise come from external crates:
//!
//! * [`rng`] — a seeded, reproducible PRNG (SplitMix64-seeded
//!   xoshiro256\*\*) replacing `rand::rngs::StdRng` for schedulers, outcome
//!   resolvers, sampling, and randomized tests;
//! * [`hash`] — the Fx multiply-xor hasher, used by the explorer's interner
//!   and sharded dedup map where hashing fixed-size integer keys is hot;
//! * [`bench`] — a micro-benchmark harness API-compatible with the subset
//!   of Criterion the `lbsa-bench` suite uses (`benchmark_group`,
//!   `bench_function`, `bench_with_input`, `iter`, `iter_batched`), with
//!   JSON result emission for perf trajectories;
//! * [`check`] — a tiny property-test runner (seeded random cases with a
//!   reproducing-seed panic message) replacing the proptest harness;
//! * [`json`] — an ordered JSON document model with deterministic emission
//!   and a strict parser, replacing `serde_json` for the `reports/*.json`
//!   experiment artifacts;
//! * [`obs`] — the tracing/metrics layer (`Tracer`, pluggable sinks, relaxed
//!   atomic counters/gauges, and the live-metrics `Registry` with
//!   OpenMetrics rendering) the exploration engine threads through its hot
//!   phases, replacing `tracing` + `tracing-subscriber` + a metrics crate;
//! * [`deque`] — a lock-free Chase–Lev work-stealing deque (single-owner
//!   LIFO end, CAS-steal FIFO end, steal-half batching) replacing
//!   `crossbeam-deque` for the explorer's work-stealing frontier;
//! * [`memtrack`] (feature `mem-profile`) — a tracking global allocator
//!   reporting live/peak heap bytes, replacing `dhat`-style heap profiling
//!   for the memory-accounting gauges.
//!
//! Unsafe code is denied crate-wide and allowed in exactly two places: the
//! [`deque`] buffer management, whose safety argument lives with the module
//! (and in DESIGN.md §12) and is exercised under Miri in CI, and the
//! [`memtrack`] allocator wrapper, which forwards every call verbatim to
//! `std::alloc::System`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod check;
pub mod deque;
pub mod hash;
pub mod json;
#[cfg(feature = "mem-profile")]
pub mod memtrack;
pub mod obs;
pub mod rng;
