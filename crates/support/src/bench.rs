//! A micro-benchmark harness, API-compatible with the subset of Criterion
//! used by `lbsa-bench`.
//!
//! Each `[[bench]]` target builds its own `main` via [`criterion_group!`] /
//! [`criterion_main!`]; groups print one line per benchmark (min / median /
//! mean over the sample set) and the whole run is written as JSON to
//! `target/lbsa-bench/<group>.json` (override the directory with
//! `LBSA_BENCH_DIR`) so perf trajectories can be tracked across commits.
//!
//! Methodology: after a short calibration phase, every sample executes a
//! batch of iterations sized so one sample takes roughly
//! [`SAMPLE_TARGET_NANOS`]; the per-iteration time of a sample is the batch
//! wall-clock divided by the batch size. This is Criterion's "flat" sampling
//! mode, minus the statistical machinery we don't need offline.

use std::time::Instant;

/// Target wall-clock per sample, in nanoseconds (5 ms).
pub const SAMPLE_TARGET_NANOS: u64 = 5_000_000;

/// One measured benchmark: identifier plus per-sample nanoseconds.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// `group/benchmark` identifier.
    pub id: String,
    /// Iterations per sample used for the measurement.
    pub iters_per_sample: u64,
    /// Per-iteration nanoseconds, one entry per sample.
    pub sample_nanos: Vec<f64>,
}

impl BenchResult {
    /// Minimum per-iteration time across samples.
    #[must_use]
    pub fn min_nanos(&self) -> f64 {
        self.sample_nanos
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Median per-iteration time across samples.
    #[must_use]
    pub fn median_nanos(&self) -> f64 {
        let mut s = self.sample_nanos.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let mid = s.len() / 2;
        if s.len() % 2 == 1 {
            s[mid]
        } else {
            f64::midpoint(s[mid - 1], s[mid])
        }
    }

    /// Mean per-iteration time across samples.
    #[must_use]
    pub fn mean_nanos(&self) -> f64 {
        self.sample_nanos.iter().sum::<f64>() / self.sample_nanos.len() as f64
    }
}

/// The top-level harness handle; collects results across groups.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Prints the final summary and writes the JSON report. Called by the
    /// [`criterion_main!`]-generated `main` after all groups ran.
    pub fn final_summary(&self) {
        if self.results.is_empty() {
            return;
        }
        let json = results_to_json(&self.results);
        let dir = std::env::var("LBSA_BENCH_DIR").unwrap_or_else(|_| "target/lbsa-bench".into());
        let group = self.results[0]
            .id
            .split('/')
            .next()
            .unwrap_or("bench")
            .to_string();
        let path = std::path::Path::new(&dir).join(format!("{group}.json"));
        if std::fs::create_dir_all(&dir).is_ok() && std::fs::write(&path, json).is_ok() {
            println!("\nwrote {}", path.display());
        }
    }

    /// All results measured so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measures `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{id}", self.name);
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        let mut result = bencher.result.expect("benchmark closure must call iter()");
        result.id.clone_from(&full_id);
        println!(
            "{full_id:<44} min {:>12}  median {:>12}  mean {:>12}",
            fmt_nanos(result.min_nanos()),
            fmt_nanos(result.median_nanos()),
            fmt_nanos(result.mean_nanos()),
        );
        self.criterion.results.push(result);
        self
    }

    /// Measures `f` applied to `input`, under a parameterized id.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.id, |b| f(b, input))
    }

    /// Ends the group (kept for Criterion API compatibility).
    pub fn finish(self) {}
}

/// A `name/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id of the form `name/parameter`.
    #[must_use]
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

/// Batch-size hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the harness always re-runs setup per iteration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
}

/// The per-benchmark measurement driver.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    result: Option<BenchResult>,
}

impl Bencher {
    /// Measures a routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in one sample window?
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let one = t0.elapsed().as_nanos().max(1);
        let iters = u64::try_from((u128::from(SAMPLE_TARGET_NANOS) / one).clamp(1, 1_000_000))
            .expect("clamped");
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.result = Some(BenchResult {
            id: String::new(),
            iters_per_sample: iters,
            sample_nanos: samples,
        });
    }

    /// Measures a routine with a fresh setup value per invocation. Setup
    /// time is excluded from the measurement.
    pub fn iter_batched<S, O, Setup, R>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        let t0 = Instant::now();
        std::hint::black_box(routine(setup()));
        let one = t0.elapsed().as_nanos().max(1);
        let iters = u64::try_from((u128::from(SAMPLE_TARGET_NANOS) / one).clamp(1, 1_000_000))
            .expect("clamped");
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let inputs: Vec<S> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.result = Some(BenchResult {
            id: String::new(),
            iters_per_sample: iters,
            sample_nanos: samples,
        });
    }
}

/// Serializes results as a small JSON document (no external JSON crate).
#[must_use]
pub fn results_to_json(results: &[BenchResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"id\": {}, \"iters_per_sample\": {}, \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}}}",
            json_string(&r.id),
            r.iters_per_sample,
            r.min_nanos(),
            r.median_nanos(),
            r.mean_nanos(),
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Escapes a string for JSON embedding.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a function running a sequence of benchmark functions over one
/// shared [`Criterion`] instance (Criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::bench::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares the bench binary's `main`, running each group
/// (Criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
                b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::SmallInput);
            });
            g.finish();
        }
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].id, "unit/noop");
        assert_eq!(c.results()[1].id, "unit/param/4");
        assert!(c.results()[0].median_nanos() >= 0.0);
    }

    #[test]
    fn json_output_shape() {
        let r = BenchResult {
            id: "g/b".into(),
            iters_per_sample: 10,
            sample_nanos: vec![1.0, 2.0, 3.0],
        };
        let json = results_to_json(&[r]);
        assert!(json.contains("\"id\": \"g/b\""));
        assert!(json.contains("\"median_ns\": 2.0"));
        assert!(json.trim_start().starts_with('['));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn median_of_even_sample_count() {
        let r = BenchResult {
            id: String::new(),
            iters_per_sample: 1,
            sample_nanos: vec![1.0, 3.0, 2.0, 4.0],
        };
        assert!((r.median_nanos() - 2.5).abs() < 1e-9);
        assert!((r.min_nanos() - 1.0).abs() < 1e-9);
    }
}
