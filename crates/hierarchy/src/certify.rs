//! Consensus-number certification.
//!
//! An object is *at level `n`* of the consensus hierarchy if it (with
//! registers) solves consensus among `n` but not `n + 1` processes. This
//! module certifies the two halves separately, with the honest epistemic
//! status of each:
//!
//! * **Upper bound (machine-verified)** — [`certify_consensus_upper`] runs
//!   the canonical protocol (propose the input through the object's
//!   consensus-bearing face, decide the response) and checks the consensus
//!   properties over *every* execution and every binary input vector.
//! * **Refutation evidence (canonical-protocol)** —
//!   [`refute_canonical_consensus`] shows the canonical protocol fails for
//!   `n + 1` processes. This is evidence, not a proof over all protocols;
//!   the full impossibility is the paper's Theorem 5.2 (whose adversary
//!   machinery lives in `lbsa-explorer` and is exercised on the candidate
//!   catalogue of `lbsa-protocols`).
//!
//! [`certified_consensus_number`] combines both into a [`CertifiedLevel`].

use lbsa_core::{AnyObject, ObjId, Value};
use lbsa_explorer::checker::{check_consensus, CheckStats, Violation};
use lbsa_explorer::{Explorer, Limits};
use lbsa_protocols::consensus_protocols::ConsensusViaObject;
use lbsa_protocols::dac::all_binary_inputs;

/// Which operation face of an object carries consensus proposals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Face {
    /// `PROPOSE(v)` — consensus objects, 2-SA, (n,k)-SA.
    Propose,
    /// `PROPOSEC(v)` — (n,m)-PAC objects (including `Oₙ`).
    ProposeC,
    /// `PROPOSE(v, 1)` — level 1 of a power object `O'ₙ`.
    PowerLevel1,
}

impl Face {
    fn protocol(self, inputs: Vec<Value>) -> ConsensusViaObject {
        match self {
            Face::Propose => ConsensusViaObject::new(inputs, ObjId(0)),
            Face::ProposeC => ConsensusViaObject::via_propose_c(inputs, ObjId(0)),
            Face::PowerLevel1 => ConsensusViaObject::via_power_level_1(inputs, ObjId(0)),
        }
    }
}

/// Aggregate statistics of an exhaustive certification sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Input vectors checked (always `2^n` for binary inputs).
    pub input_vectors: usize,
    /// Total configurations across all sweeps.
    pub configs: usize,
    /// Total transitions across all sweeps.
    pub transitions: usize,
}

impl SweepStats {
    fn absorb(&mut self, s: CheckStats) {
        self.input_vectors += 1;
        self.configs += s.configs;
        self.transitions += s.transitions;
    }
}

/// Certifies (exhaustively) that one instance of `object`, accessed through
/// `face`, solves consensus among `n` processes for every binary input
/// vector.
///
/// # Errors
///
/// Returns the first [`Violation`] found — including
/// [`Violation::Truncated`] if `limits` are too small.
pub fn certify_consensus_upper(
    object: &AnyObject,
    face: Face,
    n: usize,
    limits: Limits,
) -> Result<SweepStats, Violation> {
    let mut stats = SweepStats::default();
    for inputs in all_binary_inputs(n) {
        let valid = inputs.clone();
        let protocol = face.protocol(inputs);
        let objects = std::slice::from_ref(object);
        let explorer = Explorer::new(&protocol, objects);
        stats.absorb(check_consensus(&explorer, &valid, limits)?);
    }
    Ok(stats)
}

/// Shows that the canonical protocol fails consensus among `n + 1`
/// processes with one instance of `object`: returns the violation found, or
/// `None` if the canonical protocol unexpectedly works (in which case the
/// object's consensus number exceeds `n`).
#[must_use]
pub fn refute_canonical_consensus(
    object: &AnyObject,
    face: Face,
    n_plus_1: usize,
    limits: Limits,
) -> Option<Violation> {
    // A mixed input vector is the discriminating one (all-equal inputs
    // cannot violate agreement/validity).
    let mut inputs = vec![Value::Int(0); n_plus_1];
    inputs[0] = Value::Int(1);
    let valid = inputs.clone();
    let protocol = face.protocol(inputs);
    let objects = std::slice::from_ref(object);
    let explorer = Explorer::new(&protocol, objects);
    check_consensus(&explorer, &valid, limits).err()
}

/// The outcome of a consensus-number certification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertifiedLevel {
    /// The certified level: consensus among `level` processes is
    /// machine-verified.
    pub level: usize,
    /// Statistics of the exhaustive upper-bound sweep at `level`.
    pub upper: SweepStats,
    /// The violation exhibited by the canonical protocol at `level + 1`
    /// (canonical-protocol refutation evidence).
    pub refutation: Violation,
}

/// Certifies the consensus number of `object` (through `face`) by searching
/// the largest `n <= cap` whose upper bound verifies, and recording the
/// canonical-protocol refutation at `n + 1`.
///
/// # Errors
///
/// Returns the violation if even `n = 1` fails to verify, or if the object
/// verifies all the way to `cap` (so no refutation exists below the cap —
/// raise the cap).
pub fn certified_consensus_number(
    object: &AnyObject,
    face: Face,
    cap: usize,
    limits: Limits,
) -> Result<CertifiedLevel, Violation> {
    let mut best: Option<(usize, SweepStats)> = None;
    for n in 1..=cap {
        match certify_consensus_upper(object, face, n, limits) {
            Ok(stats) => best = Some((n, stats)),
            Err(violation) => {
                let (level, upper) = best.ok_or(violation.clone())?;
                debug_assert_eq!(level + 1, n);
                return Ok(CertifiedLevel {
                    level,
                    upper,
                    refutation: violation,
                });
            }
        }
    }
    // Verified all the way to the cap: no refutation below it.
    Err(Violation::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> Limits {
        Limits::default()
    }

    #[test]
    fn consensus_object_is_at_its_own_level() {
        for n in 1..=3usize {
            let obj = AnyObject::consensus(n).unwrap();
            let cert = certified_consensus_number(&obj, Face::Propose, 5, limits()).unwrap();
            assert_eq!(cert.level, n, "n-consensus must certify at level {n}");
            assert!(cert.upper.input_vectors == 1 << n);
            assert!(cert.upper.configs > 0);
        }
    }

    #[test]
    fn observation_6_2_o_n_is_at_level_n() {
        // O_n = (n+1, n)-PAC has consensus number n (through its PROPOSEC
        // face — the canonical consensus protocol for it).
        for n in 2..=3usize {
            let obj = AnyObject::o_n(n).unwrap();
            let cert = certified_consensus_number(&obj, Face::ProposeC, 5, limits()).unwrap();
            assert_eq!(cert.level, n, "O_{n} must certify at level {n}");
        }
    }

    #[test]
    fn o_prime_n_level_1_certifies_at_level_n() {
        for n in 2..=3usize {
            let obj = AnyObject::o_prime_n(n, 2).unwrap();
            let cert = certified_consensus_number(&obj, Face::PowerLevel1, 5, limits()).unwrap();
            assert_eq!(cert.level, n, "O'_{n} must certify at level {n}");
        }
    }

    #[test]
    fn theorem_5_3_combined_pac_level_is_m_not_n() {
        // (n,m)-PAC sits at level m regardless of the PAC arity n.
        for (n, m) in [(5usize, 2usize), (2, 3)] {
            let obj = AnyObject::combined_pac(n, m).unwrap();
            let cert = certified_consensus_number(&obj, Face::ProposeC, 5, limits()).unwrap();
            assert_eq!(cert.level, m, "({n},{m})-PAC must certify at level {m}");
        }
    }

    #[test]
    fn strong_sa_has_consensus_number_1() {
        let obj = AnyObject::strong_sa();
        let cert = certified_consensus_number(&obj, Face::Propose, 4, limits()).unwrap();
        assert_eq!(
            cert.level, 1,
            "2-SA solves consensus only for a single process"
        );
        assert!(matches!(cert.refutation, Violation::Agreement { .. }));
    }

    #[test]
    fn set_agreement_k1_certifies_at_its_port_count() {
        // An (n,1)-SA object is consensus for n processes.
        let obj = AnyObject::set_agreement(3, 1).unwrap();
        let cert = certified_consensus_number(&obj, Face::Propose, 5, limits()).unwrap();
        assert_eq!(cert.level, 3);
    }

    #[test]
    fn cap_too_low_is_reported() {
        let obj = AnyObject::consensus(4).unwrap();
        assert!(certified_consensus_number(&obj, Face::Propose, 3, limits()).is_err());
    }

    #[test]
    fn refutation_evidence_is_returned_directly() {
        let obj = AnyObject::consensus(2).unwrap();
        let v = refute_canonical_consensus(&obj, Face::Propose, 3, limits());
        assert!(v.is_some());
        let none = refute_canonical_consensus(&obj, Face::Propose, 2, limits());
        assert!(
            none.is_none(),
            "2 processes on 2-consensus must not be refutable"
        );
    }
}
