//! Certified set agreement power tables.
//!
//! The set agreement power of `O` is `(n₁, n₂, …)` with `n_k` the largest
//! process count for which `O` + registers solve `k`-set agreement. Exact
//! values are a hard open combinatorial question in general; what this
//! module certifies — and what the paper's construction of `O'ₙ` actually
//! needs — are **machine-verified lower bounds** together with the
//! observation that `Oₙ` and `O'ₙ` certify to the *same* table:
//!
//! * `n_k(Oₙ) >= k·n`, by group-splitting `k·n` processes over the
//!   `PROPOSEC` faces of `k` instances of `Oₙ` ([`certify_power_table_o_n`]),
//!   with `n₁ = n` exact (Observation 6.2, certified in [`crate::certify`]);
//! * `n_k(O'ₙ) >= k·n`, by construction: level `k` of `O'ₙ` *is* an
//!   `(k·n, k)-SA` object ([`certify_power_table_o_prime`]).
//!
//! Every entry is verified by exhaustive exploration over all-distinct
//! inputs (the adversarial case for the agreement bound).

use lbsa_core::power_object::SetAgreementPower;
use lbsa_core::{AnyObject, ObjId, SpecError, Value};
use lbsa_explorer::checker::{check_k_set_agreement, Violation};
use lbsa_explorer::{Explorer, Limits};
use lbsa_protocols::set_agreement_protocols::{GroupSplitKSet, KSetViaPowerLevel};

/// An error from power-table certification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PowerError {
    /// A k-set agreement check failed at the given level.
    Violation {
        /// The level `k` that failed.
        k: usize,
        /// The violation.
        violation: Violation,
    },
    /// Object construction failed.
    Spec(SpecError),
    /// A protocol constructor rejected its arguments.
    Protocol(String),
}

impl std::fmt::Display for PowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PowerError::Violation { k, violation } => {
                write!(f, "level {k} failed certification: {violation}")
            }
            PowerError::Spec(e) => write!(f, "object construction failed: {e}"),
            PowerError::Protocol(e) => write!(f, "protocol construction failed: {e}"),
        }
    }
}

impl std::error::Error for PowerError {}

impl From<SpecError> for PowerError {
    fn from(e: SpecError) -> Self {
        PowerError::Spec(e)
    }
}

fn distinct_inputs(count: usize) -> Vec<Value> {
    (0..count).map(|i| Value::Int(i as i64)).collect()
}

/// Certifies the lower-bound power table of `Oₙ` for levels `1..=max_k`:
/// for each `k`, exhaustively verifies `k`-set agreement among `k·n`
/// processes using `k` instances of `Oₙ` (group-split over their
/// `PROPOSEC` faces).
///
/// # Errors
///
/// Returns a [`PowerError`] if any level fails.
pub fn certify_power_table_o_n(
    n: usize,
    max_k: usize,
    limits: Limits,
) -> Result<SetAgreementPower, PowerError> {
    let mut entries = Vec::with_capacity(max_k);
    for k in 1..=max_k {
        let processes = k * n;
        let inputs = distinct_inputs(processes);
        let protocol =
            GroupSplitKSet::via_combined(inputs.clone(), n).map_err(PowerError::Protocol)?;
        let objects: Vec<AnyObject> = (0..k)
            .map(|_| AnyObject::o_n(n))
            .collect::<Result<_, _>>()?;
        let explorer = Explorer::new(&protocol, &objects);
        check_k_set_agreement(&explorer, k, &inputs, limits)
            .map_err(|violation| PowerError::Violation { k, violation })?;
        entries.push(processes);
    }
    Ok(SetAgreementPower::new(entries)?)
}

/// Certifies the lower-bound power table of `O'ₙ` for levels `1..=max_k`:
/// for each `k`, exhaustively verifies `k`-set agreement among `n_k = k·n`
/// processes through level `k` of a single `O'ₙ`.
///
/// # Errors
///
/// Returns a [`PowerError`] if any level fails.
pub fn certify_power_table_o_prime(
    n: usize,
    max_k: usize,
    limits: Limits,
) -> Result<SetAgreementPower, PowerError> {
    let mut entries = Vec::with_capacity(max_k);
    for k in 1..=max_k {
        let processes = k * n;
        let inputs = distinct_inputs(processes);
        let protocol = KSetViaPowerLevel::new(inputs.clone(), ObjId(0), k);
        let objects = vec![AnyObject::o_prime_n(n, max_k)?];
        let explorer = Explorer::new(&protocol, &objects);
        check_k_set_agreement(&explorer, k, &inputs, limits)
            .map_err(|violation| PowerError::Violation { k, violation })?;
        entries.push(processes);
    }
    Ok(SetAgreementPower::new(entries)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn o_2_power_table_certifies() {
        let table = certify_power_table_o_n(2, 2, Limits::default()).unwrap();
        assert_eq!(table.n_k(1), Some(2));
        assert_eq!(table.n_k(2), Some(4));
    }

    #[test]
    fn o_prime_2_power_table_certifies() {
        let table = certify_power_table_o_prime(2, 2, Limits::default()).unwrap();
        assert_eq!(table.n_k(1), Some(2));
        assert_eq!(table.n_k(2), Some(4));
    }

    #[test]
    fn corollary_6_6_precondition_tables_agree() {
        // The heart of Corollary 6.6's setup: O_n and O'_n certify to the
        // same power table.
        let a = certify_power_table_o_n(2, 2, Limits::default()).unwrap();
        let b = certify_power_table_o_prime(2, 2, Limits::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn power_errors_display() {
        let e = PowerError::Protocol("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = PowerError::from(SpecError::ZeroLabel);
        assert!(e.to_string().contains("construction"));
    }
}
