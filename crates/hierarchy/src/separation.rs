//! The headline pipeline: `Oₙ` vs `O'ₙ` (Section 6, Corollaries 6.6/6.7).
//!
//! For a level `n`, [`run_separation`] machine-checks every executable
//! ingredient of the paper's separation:
//!
//! 1. **Equal power** — `Oₙ` and `O'ₙ` certify to the same (truncated) set
//!    agreement power table (the precondition of Corollary 6.6).
//! 2. **`O'ₙ` is implementable** from n-consensus + 2-SA objects
//!    (Lemma 6.4): the derived implementation passes linearizability
//!    against the `O'ₙ` specification on randomized concurrent histories,
//!    and its levels pass the exhaustive k-set-agreement checks.
//! 3. **`Oₙ` resists implementation** from `O'ₙ` + registers
//!    (Theorem 6.5): each candidate implementation in the catalogue is
//!    refuted — running Algorithm 2 over the candidate's (n+1)-PAC face
//!    violates the (n+1)-DAC properties, which Theorem 4.1 forbids for a
//!    correct implementation.
//!
//! Together: two objects at the same hierarchy level, with the same set
//! agreement power, that are **not equivalent**.

use crate::power::{certify_power_table_o_n, certify_power_table_o_prime, PowerError};
use lbsa_core::power_object::SetAgreementPower;
use lbsa_core::{AnyObject, ObjId, Pid, Value};
use lbsa_explorer::checker::{check_dac, DacInstance, Violation};
use lbsa_explorer::linearizability::check_linearizable;
use lbsa_explorer::{Explorer, Limits};
use lbsa_protocols::candidates::{CandidatePacProcedure, ValAgreement};
use lbsa_protocols::dac::DacFromPac;
use lbsa_protocols::derived_impls::PowerFromConsensusAndSa;
use lbsa_protocols::set_agreement_protocols::KSetViaPowerLevel;
use lbsa_runtime::derived::{record_frontend_history, DerivedProtocol};
use lbsa_runtime::outcome::RandomOutcome;
use lbsa_runtime::scheduler::RandomScheduler;

/// The refutation of one candidate implementation of `Oₙ`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CandidateRefutation {
    /// Human-readable description of the candidate.
    pub candidate: String,
    /// The n-DAC property violation exhibited against it.
    pub violation: Violation,
}

/// The full output of the separation pipeline for one level `n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeparationReport {
    /// The hierarchy level.
    pub n: usize,
    /// Truncation depth of the power tables.
    pub max_k: usize,
    /// Certified power table of `Oₙ`.
    pub o_n_power: SetAgreementPower,
    /// Certified power table of `O'ₙ`.
    pub o_prime_power: SetAgreementPower,
    /// Linearizable histories of the Lemma 6.4 implementation of `O'ₙ`
    /// checked (one per seed).
    pub lemma_6_4_histories_checked: usize,
    /// The refuted candidate implementations of `Oₙ` (Theorem 6.5).
    pub refutations: Vec<CandidateRefutation>,
}

impl SeparationReport {
    /// `true` if the two certified power tables coincide.
    #[must_use]
    pub fn powers_match(&self) -> bool {
        self.o_n_power == self.o_prime_power
    }

    /// `true` if the pipeline established every ingredient: equal power,
    /// `O'ₙ` implementable, every candidate implementation of `Oₙ` refuted.
    #[must_use]
    pub fn separation_established(&self) -> bool {
        self.powers_match() && self.lemma_6_4_histories_checked > 0 && !self.refutations.is_empty()
    }
}

/// An error from the separation pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeparationError {
    /// Power-table certification failed.
    Power(PowerError),
    /// The Lemma 6.4 implementation produced a non-linearizable history —
    /// which would contradict the lemma; report and stop.
    Lemma64NotLinearizable {
        /// Seed of the offending run.
        seed: u64,
        /// Checker message.
        message: String,
    },
    /// A candidate implementation of `Oₙ` was **not** refuted — it passed
    /// the (n+1)-DAC check, contradicting Theorem 4.2. (This would indicate
    /// a bug in the machinery, not a disproof of the paper.)
    CandidateSurvived {
        /// Description of the surviving candidate.
        candidate: String,
    },
}

impl std::fmt::Display for SeparationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeparationError::Power(e) => write!(f, "power certification failed: {e}"),
            SeparationError::Lemma64NotLinearizable { seed, message } => {
                write!(
                    f,
                    "lemma 6.4 implementation not linearizable (seed {seed}): {message}"
                )
            }
            SeparationError::CandidateSurvived { candidate } => {
                write!(
                    f,
                    "candidate implementation unexpectedly survived: {candidate}"
                )
            }
        }
    }
}

impl std::error::Error for SeparationError {}

impl From<PowerError> for SeparationError {
    fn from(e: PowerError) -> Self {
        SeparationError::Power(e)
    }
}

/// Checks the Lemma 6.4 implementation of `O'ₙ` on `seeds` randomized
/// concurrent histories; returns how many were checked.
fn check_lemma_6_4(n: usize, max_k: usize, seeds: u64) -> Result<usize, SeparationError> {
    let spec_objects =
        vec![AnyObject::o_prime_n(n, max_k).expect("n >= 2, max_k >= 1 validated upstream")];
    let procedure = PowerFromConsensusAndSa::new(max_k);
    // Workload: n_k processes exercise the deepest level (the most
    // nondeterministic component).
    let k = max_k;
    let inputs: Vec<Value> = (0..k * n).map(|i| Value::Int(i as i64)).collect();
    let inner = KSetViaPowerLevel::new(inputs, ObjId(0), k);
    let mut bases = vec![ObjId(0)];
    bases.extend((1..max_k).map(ObjId));
    let mut checked = 0usize;
    for seed in 0..seeds {
        let frontends = vec![PowerFromConsensusAndSa::frontend(bases.clone())];
        let derived = DerivedProtocol::new(&inner, &procedure, frontends);
        let mut objects = vec![AnyObject::consensus(n).expect("n >= 1")];
        objects.extend((2..=max_k).map(|_| AnyObject::strong_sa()));
        let (history, _) = record_frontend_history(
            &derived,
            &objects,
            &mut RandomScheduler::seeded(seed),
            &mut RandomOutcome::seeded(seed.wrapping_mul(0x9E37_79B9)),
            10_000,
        )
        .expect("runs are error-free");
        check_linearizable(&history, &spec_objects).map_err(|e| {
            SeparationError::Lemma64NotLinearizable {
                seed,
                message: e.to_string(),
            }
        })?;
        checked += 1;
    }
    Ok(checked)
}

/// Refutes one candidate implementation of `Oₙ`'s PAC face from `O'ₙ` +
/// registers by running Algorithm 2 over it and checking (n+1)-DAC.
fn refute_candidate(
    n: usize,
    max_k: usize,
    val_agreement: ValAgreement,
    description: &str,
    limits: Limits,
    solo_bound: usize,
) -> Result<CandidateRefutation, SeparationError> {
    let labels = n + 1;
    let mut inputs = vec![Value::Int(0); labels];
    inputs[0] = Value::Int(1);
    let inner = DacFromPac::new(inputs.clone(), Pid(0), ObjId(0)).expect("n + 1 >= 2");
    let procedure = CandidatePacProcedure::new(labels, val_agreement);
    let v_registers: Vec<ObjId> = (2..2 + labels).map(ObjId).collect();
    let frontends = vec![CandidatePacProcedure::frontend(
        ObjId(0),
        ObjId(1),
        v_registers,
    )];
    let derived = DerivedProtocol::new(&inner, &procedure, frontends);
    let mut objects = vec![AnyObject::o_prime_n(n, max_k).expect("validated upstream")];
    objects.extend((0..=labels).map(|_| AnyObject::register()));
    let explorer = Explorer::new(&derived, &objects);
    let instance = DacInstance {
        distinguished: Pid(0),
        inputs,
    };
    match check_dac(&explorer, &instance, limits, solo_bound) {
        Err(violation) => Ok(CandidateRefutation {
            candidate: description.to_string(),
            violation,
        }),
        Ok(_) => Err(SeparationError::CandidateSurvived {
            candidate: description.to_string(),
        }),
    }
}

/// Runs the full separation pipeline for level `n` with power tables
/// truncated at `max_k`, checking `lin_seeds` randomized histories for
/// Lemma 6.4.
///
/// # Errors
///
/// Returns a [`SeparationError`] if any pipeline stage fails — which would
/// indicate a machinery bug or an exceeded budget, never a normal outcome.
pub fn run_separation(
    n: usize,
    max_k: usize,
    limits: Limits,
    lin_seeds: u64,
) -> Result<SeparationReport, SeparationError> {
    let o_n_power = certify_power_table_o_n(n, max_k, limits)?;
    let o_prime_power = certify_power_table_o_prime(n, max_k, limits)?;
    let lemma_6_4_histories_checked = check_lemma_6_4(n, max_k, lin_seeds)?;

    let solo_bound = 20 * (n + 2);
    let mut refutations = Vec::new();
    refutations.push(refute_candidate(
        n,
        max_k,
        ValAgreement::PowerLevel(1),
        "PAC face over O'_n level 1 (consensus) + registers",
        limits,
        solo_bound,
    )?);
    if max_k >= 2 {
        refutations.push(refute_candidate(
            n,
            max_k,
            ValAgreement::PowerLevel(2),
            "PAC face over O'_n level 2 (2-set agreement) + registers",
            limits,
            solo_bound,
        )?);
    }

    Ok(SeparationReport {
        n,
        max_k,
        o_n_power,
        o_prime_power,
        lemma_6_4_histories_checked,
        refutations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corollary_6_6_separation_for_n_2() {
        let report = run_separation(2, 2, Limits::default(), 8).unwrap();
        assert!(report.powers_match());
        assert!(report.separation_established());
        assert_eq!(report.refutations.len(), 2);
        for r in &report.refutations {
            assert!(
                matches!(
                    r.violation,
                    Violation::Agreement { .. }
                        | Violation::Validity { .. }
                        | Violation::SoloNonTermination { .. }
                        | Violation::NonTermination(_)
                ),
                "unexpected refutation shape for {}: {}",
                r.candidate,
                r.violation
            );
        }
    }

    #[test]
    fn error_display() {
        let e = SeparationError::CandidateSurvived {
            candidate: "x".into(),
        };
        assert!(e.to_string().contains("survived"));
        let e = SeparationError::Lemma64NotLinearizable {
            seed: 3,
            message: "m".into(),
        };
        assert!(e.to_string().contains("seed 3"));
    }
}
