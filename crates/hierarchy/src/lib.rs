//! # lbsa-hierarchy — the paper's results as a certification pipeline
//!
//! This crate assembles the machinery of the workspace into the paper's
//! actual program:
//!
//! * [`certify`] — **consensus-number certification**: exhaustively verify
//!   that the canonical protocol solves `n`-consensus with a given object
//!   (the upper bound), and collect refutation evidence for `n + 1`
//!   (Observation 6.2, Theorem 5.3).
//! * [`power`] — **set agreement power tables**: certified lower bounds
//!   `n_k` for `Oₙ` (via group-splitting over its consensus faces) and for
//!   `O'ₙ` (via its levels), and the equality check between them that
//!   Corollary 6.6 requires.
//! * [`separation`] — the **headline pipeline** (Section 6): for a given
//!   level `n`, certify that `Oₙ` and `O'ₙ` have the same (truncated) set
//!   agreement power, verify that `O'ₙ` is implementable from n-consensus +
//!   2-SA objects (Lemma 6.4, linearizability-checked), and refute the
//!   candidate implementations of `Oₙ` from `O'ₙ` + registers
//!   (Theorem 6.5).
//! * [`report`] — plain-text table rendering for the experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod power;
pub mod report;
pub mod separation;

pub use certify::{certified_consensus_number, CertifiedLevel, Face};
pub use power::{certify_power_table_o_n, certify_power_table_o_prime};
pub use separation::{run_separation, SeparationReport};
