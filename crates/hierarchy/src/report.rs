//! Plain-text table rendering for the experiment binaries.
//!
//! The experiment binaries in `lbsa-bench` print the tables and figures of
//! `EXPERIMENTS.md`; this module is their tiny formatting substrate — no
//! dependencies, fixed-width columns, markdown-compatible output.

use std::fmt;

/// A rectangular table with a title and column headers.
///
/// # Examples
///
/// ```
/// use lbsa_hierarchy::report::Table;
///
/// let mut t = Table::new("T1: demo", vec!["object", "level"]);
/// t.row(vec!["2-consensus".to_string(), "2".to_string()]);
/// let text = t.to_string();
/// assert!(text.contains("object"));
/// assert!(text.contains("2-consensus"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new<S: Into<String>>(title: S, headers: Vec<&str>) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: vec![],
        }
    }

    /// Appends one row. Short rows are padded with empty cells; long rows
    /// are truncated to the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        writeln!(f)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate().take(cols) {
                write!(f, " {cell:<width$} |", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_shape() {
        let mut t = Table::new("Title", vec!["a", "bb"]);
        t.row(vec!["xxx".into(), "y".into()]);
        t.row(vec!["z".into()]); // short row padded
        let s = t.to_string();
        assert!(s.starts_with("## Title"));
        assert!(s.contains("| a   | bb |"));
        assert!(s.contains("| xxx | y  |"));
        assert!(s.contains("| z   |    |"));
        assert!(s.contains("|-----|----|"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::new("Empty", vec!["h"]);
        assert!(t.is_empty());
        let s = t.to_string();
        assert!(s.contains("| h |"));
    }
}
