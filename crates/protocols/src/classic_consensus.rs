//! Classic consensus protocols from the textbook primitives — situating the
//! paper's objects inside Herlihy's hierarchy.
//!
//! * [`ClassicConsensus`] (the *direct* variant) — the canonical 2-process
//!   consensus protocols from test-and-set, fetch-and-add, and a pre-loaded
//!   FIFO queue: write your input to your register, race on the primitive,
//!   the winner decides its own input and the loser reads **the other
//!   process's** register. Wait-free, exhaustively verified. The
//!   read-the-other trick is exactly what stops working at 3 processes —
//!   the loser no longer knows whom to read — which is why these objects
//!   live at level 2.
//! * [`ClassicConsensus::cas`] — consensus for **any** number of processes
//!   from one compare-and-swap cell: `CAS(nil -> input)`; the old value
//!   `nil` means you won, anything else *is* the winner's input. One step,
//!   wait-free: CAS sits above every finite level.
//! * [`AnnounceConsensus`] — the natural n-process generalization
//!   ("winner announces, losers spin"), which is **not wait-free** even for
//!   two processes: if the winner stalls between the primitive and the
//!   announcement, losers spin forever. The experiments refute it with a
//!   non-termination certificate — a textbook contrast with the direct
//!   variant.

use lbsa_core::{ObjId, Op, Pid, Value};
use lbsa_runtime::process::{Protocol, Step};

/// Which level-2 primitive the race runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RacePrimitive {
    /// Test-and-set: winner sees old value `0`.
    TestAndSet,
    /// Fetch-and-add(+1): winner sees old value `0`.
    FetchAdd,
    /// A queue pre-loaded with one token: winner dequeues it (non-`nil`).
    Queue,
}

impl RacePrimitive {
    fn op(self) -> Op {
        match self {
            RacePrimitive::TestAndSet => Op::TestAndSet,
            RacePrimitive::FetchAdd => Op::FetchAdd(1),
            RacePrimitive::Queue => Op::Dequeue,
        }
    }

    /// Did this response mean "you won the race"?
    fn won(self, response: Value) -> bool {
        match self {
            RacePrimitive::TestAndSet | RacePrimitive::FetchAdd => response == Value::Int(0),
            RacePrimitive::Queue => !response.is_nil(),
        }
    }
}

/// Local state of [`ClassicConsensus`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClassicPhase {
    /// Writing the input to the process's own register.
    WriteOwn,
    /// Racing on the primitive.
    Race,
    /// Lost: reading the other process's register.
    ReadOther,
}

/// The direct 2-process consensus protocols (and the n-process CAS one).
///
/// Object layout for the 2-process variants: `ObjId(0)` = the primitive,
/// `ObjId(1 + pid)` = process `pid`'s register. For the CAS variant:
/// `ObjId(0)` = the CAS cell, no registers needed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassicConsensus {
    inputs: Vec<Value>,
    primitive: Option<RacePrimitive>, // None = CAS variant
}

impl ClassicConsensus {
    /// The canonical 2-process protocol over `primitive`.
    ///
    /// # Errors
    ///
    /// Returns an error string unless exactly two inputs are given — the
    /// read-the-other step is only well-defined for two processes (that
    /// limitation *is* the point; see the module docs).
    pub fn two_process(primitive: RacePrimitive, inputs: Vec<Value>) -> Result<Self, String> {
        if inputs.len() != 2 {
            return Err(format!(
                "the direct {primitive:?} protocol is defined for exactly 2 processes, got {}",
                inputs.len()
            ));
        }
        Ok(ClassicConsensus {
            inputs,
            primitive: Some(primitive),
        })
    }

    /// The n-process CAS protocol (`CAS(nil -> input)`, decide the winner).
    #[must_use]
    pub fn cas(inputs: Vec<Value>) -> Self {
        ClassicConsensus {
            inputs,
            primitive: None,
        }
    }

    /// The base objects this protocol needs, in `ObjId` order.
    #[must_use]
    pub fn objects(&self) -> Vec<lbsa_core::AnyObject> {
        use lbsa_core::AnyObject;
        match self.primitive {
            None => vec![AnyObject::cas()],
            Some(p) => {
                let primitive = match p {
                    RacePrimitive::TestAndSet => AnyObject::test_and_set(),
                    RacePrimitive::FetchAdd => AnyObject::fetch_add(),
                    RacePrimitive::Queue => AnyObject::queue_with(vec![Value::Int(1)]),
                };
                let mut v = vec![primitive];
                v.extend((0..self.inputs.len()).map(|_| AnyObject::register()));
                v
            }
        }
    }
}

impl Protocol for ClassicConsensus {
    type LocalState = ClassicPhase;

    fn num_processes(&self) -> usize {
        self.inputs.len()
    }

    fn init(&self, _pid: Pid) -> ClassicPhase {
        if self.primitive.is_some() {
            ClassicPhase::WriteOwn
        } else {
            ClassicPhase::Race
        }
    }

    fn pending_op(&self, pid: Pid, state: &ClassicPhase) -> (ObjId, Op) {
        let input = self.inputs[pid.index()];
        match (state, self.primitive) {
            (ClassicPhase::WriteOwn, _) => (ObjId(1 + pid.index()), Op::Write(input)),
            (ClassicPhase::Race, Some(p)) => (ObjId(0), p.op()),
            (ClassicPhase::Race, None) => (ObjId(0), Op::CompareAndSwap(Value::Nil, input)),
            (ClassicPhase::ReadOther, _) => (ObjId(1 + (1 - pid.index())), Op::Read),
        }
    }

    fn on_response(&self, pid: Pid, state: &ClassicPhase, response: Value) -> Step<ClassicPhase> {
        match (state, self.primitive) {
            (ClassicPhase::WriteOwn, _) => Step::Continue(ClassicPhase::Race),
            (ClassicPhase::Race, Some(p)) => {
                if p.won(response) {
                    Step::Decide(self.inputs[pid.index()])
                } else {
                    Step::Continue(ClassicPhase::ReadOther)
                }
            }
            (ClassicPhase::Race, None) => {
                // CAS: old value nil means we installed our input.
                if response.is_nil() {
                    Step::Decide(self.inputs[pid.index()])
                } else {
                    Step::Decide(response)
                }
            }
            (ClassicPhase::ReadOther, _) => Step::Decide(response),
        }
    }
}

/// Local state of [`AnnounceConsensus`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AnnouncePhase {
    /// Racing on the primitive.
    Race,
    /// Won: announcing the input.
    Announce,
    /// Lost: spinning on the announcement register.
    Spin,
}

/// The doomed "winner announces, losers spin" generalization — natural,
/// n-process, and **not wait-free**. Object layout: `ObjId(0)` = the
/// primitive, `ObjId(1)` = the announcement register.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnnounceConsensus {
    inputs: Vec<Value>,
    primitive: RacePrimitive,
}

impl AnnounceConsensus {
    /// Creates the candidate for any number of processes.
    #[must_use]
    pub fn new(primitive: RacePrimitive, inputs: Vec<Value>) -> Self {
        AnnounceConsensus { inputs, primitive }
    }

    /// The base objects this protocol needs, in `ObjId` order.
    #[must_use]
    pub fn objects(&self) -> Vec<lbsa_core::AnyObject> {
        use lbsa_core::AnyObject;
        let primitive = match self.primitive {
            RacePrimitive::TestAndSet => AnyObject::test_and_set(),
            RacePrimitive::FetchAdd => AnyObject::fetch_add(),
            RacePrimitive::Queue => AnyObject::queue_with(vec![Value::Int(1)]),
        };
        vec![primitive, AnyObject::register()]
    }
}

impl Protocol for AnnounceConsensus {
    type LocalState = AnnouncePhase;

    fn num_processes(&self) -> usize {
        self.inputs.len()
    }

    fn init(&self, _pid: Pid) -> AnnouncePhase {
        AnnouncePhase::Race
    }

    fn pending_op(&self, pid: Pid, state: &AnnouncePhase) -> (ObjId, Op) {
        match state {
            AnnouncePhase::Race => (ObjId(0), self.primitive.op()),
            AnnouncePhase::Announce => (ObjId(1), Op::Write(self.inputs[pid.index()])),
            AnnouncePhase::Spin => (ObjId(1), Op::Read),
        }
    }

    fn on_response(&self, pid: Pid, state: &AnnouncePhase, response: Value) -> Step<AnnouncePhase> {
        match state {
            AnnouncePhase::Race => {
                if self.primitive.won(response) {
                    Step::Continue(AnnouncePhase::Announce)
                } else {
                    Step::Continue(AnnouncePhase::Spin)
                }
            }
            AnnouncePhase::Announce => Step::Decide(self.inputs[pid.index()]),
            AnnouncePhase::Spin => {
                if response.is_nil() {
                    Step::Continue(AnnouncePhase::Spin)
                } else {
                    Step::Decide(response)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::value::int;
    use lbsa_explorer::checker::{check_consensus, Violation};
    use lbsa_explorer::{Explorer, Limits};

    const PRIMS: [RacePrimitive; 3] = [
        RacePrimitive::TestAndSet,
        RacePrimitive::FetchAdd,
        RacePrimitive::Queue,
    ];

    #[test]
    fn direct_two_process_protocols_are_wait_free_consensus() {
        for prim in PRIMS {
            for inputs in crate::dac::all_binary_inputs(2) {
                let p = ClassicConsensus::two_process(prim, inputs.clone()).unwrap();
                let objects = p.objects();
                let ex = Explorer::new(&p, &objects);
                check_consensus(&ex, &inputs, Limits::default())
                    .unwrap_or_else(|v| panic!("{prim:?} consensus violated: {v}"));
            }
        }
    }

    #[test]
    fn direct_protocol_rejects_wrong_process_count() {
        assert!(ClassicConsensus::two_process(RacePrimitive::TestAndSet, vec![int(0)]).is_err());
        assert!(
            ClassicConsensus::two_process(RacePrimitive::Queue, vec![int(0), int(1), int(0)])
                .is_err()
        );
    }

    #[test]
    fn cas_consensus_scales_to_many_processes() {
        for n in 2..=5usize {
            let inputs: Vec<Value> = (0..n).map(|i| int(i as i64 % 2)).collect();
            let p = ClassicConsensus::cas(inputs.clone());
            let objects = p.objects();
            let ex = Explorer::new(&p, &objects);
            check_consensus(&ex, &inputs, Limits::default())
                .unwrap_or_else(|v| panic!("CAS consensus violated at n = {n}: {v}"));
        }
    }

    #[test]
    fn announce_variant_is_refuted_even_for_two_processes() {
        // The announce generalization is not wait-free at ANY process count:
        // the winner may stall between winning and announcing.
        for prim in PRIMS {
            for n in [2usize, 3] {
                let inputs: Vec<Value> = (0..n).map(|i| int(i as i64 % 2)).collect();
                let p = AnnounceConsensus::new(prim, inputs.clone());
                let objects = p.objects();
                let ex = Explorer::new(&p, &objects);
                let err = check_consensus(&ex, &inputs, Limits::default())
                    .expect_err("announce variant must be refuted");
                assert!(
                    matches!(err, Violation::NonTermination(_)),
                    "{prim:?}/{n}: expected non-termination, got {err}"
                );
            }
        }
    }

    #[test]
    fn loser_learns_the_winner_not_just_a_value() {
        // Validity check with distinct inputs: the loser must decide the
        // winner's input, exhaustively.
        for prim in PRIMS {
            let inputs = vec![int(10), int(20)];
            let p = ClassicConsensus::two_process(prim, inputs.clone()).unwrap();
            let objects = p.objects();
            let ex = Explorer::new(&p, &objects);
            check_consensus(&ex, &inputs, Limits::default())
                .unwrap_or_else(|v| panic!("{prim:?}: {v}"));
        }
    }
}
