//! The paper's object constructions as executable access procedures.
//!
//! * [`CombinedFromComponents`] — an (n,m)-PAC front-end over an n-PAC and
//!   an m-consensus base object: **Observation 5.1(a)**.
//! * [`ComponentsFromCombined`] — n-PAC and m-consensus front-ends over one
//!   (n,m)-PAC base object: **Observations 5.1(b) and 5.1(c)**.
//! * [`PowerFromConsensusAndSa`] — an `O'ₙ` front-end over one `n`-consensus
//!   object (serving level 1, since `n₁ = n`) and one 2-SA object per level
//!   `k >= 2`: **Lemma 6.4**. Note the port discipline: the front-end is
//!   only linearizable against the `O'ₙ` specification while each level `k`
//!   is used by at most `n_k` processes — exactly the usage the paper's
//!   set-agreement-power definition permits. (The 2-SA object itself would
//!   happily serve more, but then it would be implementing something
//!   *stronger* than the `(n_k, k)-SA` component.)
//!
//! All three constructions are *one base step per front-end operation*:
//! plain redirection, exactly as the paper defines them. The interesting
//! direction — that **no** redirection (or anything else) implements `Oₙ`
//! from `O'ₙ` — is the subject of the [`crate::candidates`] refutations.

use lbsa_core::{ObjId, Op, Pid, Value};
use lbsa_runtime::derived::{AccessProcedure, AccessStep, FrontEnd};

/// Observation 5.1(a): (n,m)-PAC implemented from an n-PAC (base 0) and an
/// m-consensus object (base 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CombinedFromComponents;

impl CombinedFromComponents {
    /// Creates the procedure.
    #[must_use]
    pub fn new() -> Self {
        CombinedFromComponents
    }

    /// The front-end layout for a single implemented (n,m)-PAC whose base
    /// objects are `pac` and `consensus`.
    #[must_use]
    pub fn frontend(pac: ObjId, consensus: ObjId) -> FrontEnd {
        FrontEnd::Derived {
            base: vec![pac, consensus],
        }
    }
}

impl AccessProcedure for CombinedFromComponents {
    type ProcState = Op;

    fn begin(&self, _pid: Pid, _front: ObjId, op: &Op) -> Op {
        match op {
            Op::ProposeC(_) | Op::ProposeP(..) | Op::DecideP(_) => *op,
            other => panic!("(n,m)-PAC front-end does not support {other}"),
        }
    }

    fn pending(&self, _pid: Pid, state: &Op) -> (usize, Op) {
        match state {
            Op::ProposeC(v) => (1, Op::Propose(*v)),
            Op::ProposeP(v, i) => (0, Op::ProposePac(*v, *i)),
            Op::DecideP(i) => (0, Op::DecidePac(*i)),
            other => unreachable!("begin() admits only combined ops, got {other}"),
        }
    }

    fn resume(&self, _pid: Pid, _state: &Op, response: Value) -> AccessStep<Op> {
        AccessStep::Return(response)
    }
}

/// Observations 5.1(b)/(c): an n-PAC front-end and an m-consensus front-end,
/// both implemented over a single (n,m)-PAC base object (base 0).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComponentsFromCombined;

impl ComponentsFromCombined {
    /// Creates the procedure.
    #[must_use]
    pub fn new() -> Self {
        ComponentsFromCombined
    }

    /// Front-end layout for an implemented object backed by the (n,m)-PAC
    /// at `combined`. The same layout serves both the n-PAC face (send PAC
    /// ops) and the m-consensus face (send `Propose`).
    #[must_use]
    pub fn frontend(combined: ObjId) -> FrontEnd {
        FrontEnd::Derived {
            base: vec![combined],
        }
    }
}

impl AccessProcedure for ComponentsFromCombined {
    type ProcState = Op;

    fn begin(&self, _pid: Pid, _front: ObjId, op: &Op) -> Op {
        match op {
            Op::Propose(_) | Op::ProposePac(..) | Op::DecidePac(_) => *op,
            other => panic!("component front-end does not support {other}"),
        }
    }

    fn pending(&self, _pid: Pid, state: &Op) -> (usize, Op) {
        match state {
            // Observation 5.1(c): the m-consensus face.
            Op::Propose(v) => (0, Op::ProposeC(*v)),
            // Observation 5.1(b): the n-PAC face.
            Op::ProposePac(v, i) => (0, Op::ProposeP(*v, *i)),
            Op::DecidePac(i) => (0, Op::DecideP(*i)),
            other => unreachable!("begin() admits only component ops, got {other}"),
        }
    }

    fn resume(&self, _pid: Pid, _state: &Op, response: Value) -> AccessStep<Op> {
        AccessStep::Return(response)
    }
}

/// Lemma 6.4: an `O'ₙ` front-end implemented from an `n`-consensus object
/// (base 0, serving level 1) and one 2-SA object per level `k = 2..=max_k`
/// (base `k - 1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PowerFromConsensusAndSa {
    max_k: usize,
}

impl PowerFromConsensusAndSa {
    /// Creates the procedure for levels `1..=max_k`.
    ///
    /// # Panics
    ///
    /// Panics if `max_k == 0`.
    #[must_use]
    pub fn new(max_k: usize) -> Self {
        assert!(max_k >= 1, "a power object has at least level 1");
        PowerFromConsensusAndSa { max_k }
    }

    /// The materialized depth.
    #[must_use]
    pub fn max_k(&self) -> usize {
        self.max_k
    }

    /// Front-end layout: `bases[0]` must be the n-consensus object,
    /// `bases[k-1]` the 2-SA object for level `k >= 2`.
    #[must_use]
    pub fn frontend(bases: Vec<ObjId>) -> FrontEnd {
        FrontEnd::Derived { base: bases }
    }
}

impl AccessProcedure for PowerFromConsensusAndSa {
    type ProcState = (Value, usize);

    fn begin(&self, _pid: Pid, _front: ObjId, op: &Op) -> (Value, usize) {
        match op {
            Op::ProposeAt(v, k) if *k >= 1 && *k <= self.max_k => (*v, *k),
            other => panic!(
                "O'_n front-end (max_k = {}) does not support {other}",
                self.max_k
            ),
        }
    }

    fn pending(&self, _pid: Pid, state: &(Value, usize)) -> (usize, Op) {
        let (v, k) = *state;
        // Level 1 -> the consensus object; level k >= 2 -> its 2-SA object.
        (k - 1, Op::Propose(v))
    }

    fn resume(
        &self,
        _pid: Pid,
        _state: &(Value, usize),
        response: Value,
    ) -> AccessStep<(Value, usize)> {
        AccessStep::Return(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus_protocols::ConsensusViaObject;
    use crate::set_agreement_protocols::KSetViaPowerLevel;
    use lbsa_core::ids::Label;
    use lbsa_core::value::int;
    use lbsa_core::AnyObject;
    use lbsa_explorer::checker::{check_consensus, check_k_set_agreement};
    use lbsa_explorer::linearizability::check_linearizable;
    use lbsa_explorer::{Explorer, Limits};
    use lbsa_runtime::derived::{record_frontend_history, DerivedProtocol};
    use lbsa_runtime::outcome::{FirstOutcome, RandomOutcome};
    use lbsa_runtime::process::{Protocol, Step};
    use lbsa_runtime::scheduler::{RandomScheduler, RoundRobin};
    use lbsa_runtime::system::System;

    #[test]
    fn observation_5_1_a_consensus_face_works_when_derived() {
        // m-consensus through the PROPOSEC face of a DERIVED (n,m)-PAC
        // (built from an n-PAC and an m-consensus object): exhaustive
        // consensus check for m = 2.
        let inner = ConsensusViaObject::via_propose_c(vec![int(0), int(1)], ObjId(0));
        let procedure = CombinedFromComponents::new();
        let frontends = vec![CombinedFromComponents::frontend(ObjId(0), ObjId(1))];
        let derived = DerivedProtocol::new(&inner, &procedure, frontends);
        let objects = vec![AnyObject::pac(3).unwrap(), AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&derived, &objects);
        check_consensus(&ex, &[int(0), int(1)], Limits::default())
            .unwrap_or_else(|v| panic!("derived (3,2)-PAC failed consensus: {v}"));
    }

    /// A tiny inner protocol driving PAC ops on front-end object 0: each
    /// process performs PROPOSE(v, label) then DECIDE(label) then halts.
    #[derive(Debug)]
    struct PacPairs {
        inputs: Vec<Value>,
    }

    impl Protocol for PacPairs {
        type LocalState = u8; // 0 = propose, 1 = decide
        fn num_processes(&self) -> usize {
            self.inputs.len()
        }
        fn init(&self, _pid: Pid) -> u8 {
            0
        }
        fn pending_op(&self, pid: Pid, s: &u8) -> (ObjId, Op) {
            let label = Label::new(pid.index() + 1).unwrap();
            match s {
                0 => (ObjId(0), Op::ProposePac(self.inputs[pid.index()], label)),
                _ => (ObjId(0), Op::DecidePac(label)),
            }
        }
        fn on_response(&self, _pid: Pid, s: &u8, resp: Value) -> Step<u8> {
            match s {
                0 => Step::Continue(1),
                _ => Step::Decide(resp),
            }
        }
    }

    #[test]
    fn observation_5_1_b_pac_face_matches_native() {
        // Run the same PAC workload against (i) a native 2-PAC and (ii) the
        // PAC face of a (2,3)-PAC: identical decisions on every interleaving.
        let inner = PacPairs {
            inputs: vec![int(4), int(6)],
        };

        let native_objects = vec![AnyObject::pac(2).unwrap()];
        let native_graph = Explorer::new(&inner, &native_objects)
            .exploration()
            .run()
            .unwrap();

        let procedure = ComponentsFromCombined::new();
        let frontends = vec![ComponentsFromCombined::frontend(ObjId(0))];
        let derived = DerivedProtocol::new(&inner, &procedure, frontends);
        let derived_objects = vec![AnyObject::combined_pac(2, 3).unwrap()];
        let derived_graph = Explorer::new(&derived, &derived_objects)
            .exploration()
            .run()
            .unwrap();

        let outcomes = |g: &lbsa_explorer::ExplorationGraph<_>| -> std::collections::BTreeSet<Vec<Option<Value>>> {
            g.terminal_indices().map(|t| g.configs[t].decisions()).collect()
        };
        // Configuration types differ; compare terminal decision sets.
        let native: std::collections::BTreeSet<Vec<Option<Value>>> = native_graph
            .terminal_indices()
            .map(|t| native_graph.configs[t].decisions())
            .collect();
        assert_eq!(native, outcomes(&derived_graph));
    }

    #[test]
    fn lemma_6_4_derived_power_object_solves_its_levels() {
        // O'_2 implemented from a 2-consensus + 2-SA (Lemma 6.4): level 1
        // solves consensus among 2; level 2 solves 2-set agreement among 4.
        let procedure = PowerFromConsensusAndSa::new(2);

        // Level 1 = consensus among 2.
        let inner = ConsensusViaObject::via_power_level_1(vec![int(0), int(1)], ObjId(0));
        let frontends = vec![PowerFromConsensusAndSa::frontend(vec![ObjId(0), ObjId(1)])];
        let derived = DerivedProtocol::new(&inner, &procedure, frontends.clone());
        let objects = vec![AnyObject::consensus(2).unwrap(), AnyObject::strong_sa()];
        let ex = Explorer::new(&derived, &objects);
        check_consensus(&ex, &[int(0), int(1)], Limits::default())
            .unwrap_or_else(|v| panic!("derived O'_2 level 1 failed: {v}"));

        // Level 2 = 2-set agreement among 4.
        let inputs: Vec<Value> = (0..4).map(int).collect();
        let inner = KSetViaPowerLevel::new(inputs.clone(), ObjId(0), 2);
        let derived = DerivedProtocol::new(&inner, &procedure, frontends);
        let ex = Explorer::new(&derived, &objects);
        check_k_set_agreement(&ex, 2, &inputs, Limits::default())
            .unwrap_or_else(|v| panic!("derived O'_2 level 2 failed: {v}"));
    }

    #[test]
    fn derived_combined_pac_is_linearizable_under_random_schedules() {
        // Generate concurrent front-end histories of the derived (2,2)-PAC
        // and check them against the native CombinedPacSpec.
        #[derive(Debug)]
        struct MixedWorkload;
        impl Protocol for MixedWorkload {
            type LocalState = u8;
            fn num_processes(&self) -> usize {
                2
            }
            fn init(&self, _pid: Pid) -> u8 {
                0
            }
            fn pending_op(&self, pid: Pid, s: &u8) -> (ObjId, Op) {
                let label = Label::new(pid.index() + 1).unwrap();
                match (pid.index(), s) {
                    (0, 0) => (ObjId(0), Op::ProposeP(int(3), label)),
                    (0, 1) => (ObjId(0), Op::DecideP(label)),
                    (0, _) => (ObjId(0), Op::ProposeC(int(7))),
                    (_, 0) => (ObjId(0), Op::ProposeC(int(9))),
                    (_, 1) => (ObjId(0), Op::ProposeP(int(5), label)),
                    (_, _) => (ObjId(0), Op::DecideP(label)),
                }
            }
            fn on_response(&self, _pid: Pid, s: &u8, _r: Value) -> Step<u8> {
                if *s >= 2 {
                    Step::Halt
                } else {
                    Step::Continue(s + 1)
                }
            }
        }

        let inner = MixedWorkload;
        let procedure = CombinedFromComponents::new();
        let spec_objects = vec![AnyObject::combined_pac(2, 2).unwrap()];
        for seed in 0..20u64 {
            let frontends = vec![CombinedFromComponents::frontend(ObjId(0), ObjId(1))];
            let derived = DerivedProtocol::new(&inner, &procedure, frontends);
            let objects = vec![AnyObject::pac(2).unwrap(), AnyObject::consensus(2).unwrap()];
            let (history, _) = record_frontend_history(
                &derived,
                &objects,
                &mut RandomScheduler::seeded(seed),
                &mut RandomOutcome::seeded(seed),
                1000,
            )
            .unwrap();
            check_linearizable(&history, &spec_objects).unwrap_or_else(|e| {
                panic!("derived (2,2)-PAC not linearizable (seed {seed}): {e}\n{history:#?}")
            });
        }
    }

    #[test]
    fn derived_power_object_is_linearizable_within_port_budget() {
        // 4 processes use level 2 of the derived O'_2 (n_2 = 4 ports): the
        // recorded history must linearize against PowerObjectSpec.
        let inputs: Vec<Value> = (0..4).map(|i| int(10 + i)).collect();
        let inner = KSetViaPowerLevel::new(inputs, ObjId(0), 2);
        let procedure = PowerFromConsensusAndSa::new(2);
        let spec_objects = vec![AnyObject::o_prime_n(2, 2).unwrap()];
        for seed in 0..20u64 {
            let frontends = vec![PowerFromConsensusAndSa::frontend(vec![ObjId(0), ObjId(1)])];
            let derived = DerivedProtocol::new(&inner, &procedure, frontends);
            let objects = vec![AnyObject::consensus(2).unwrap(), AnyObject::strong_sa()];
            let (history, _) = record_frontend_history(
                &derived,
                &objects,
                &mut RandomScheduler::seeded(seed),
                &mut RandomOutcome::seeded(seed ^ 0xABCD),
                1000,
            )
            .unwrap();
            check_linearizable(&history, &spec_objects).unwrap_or_else(|e| {
                panic!("derived O'_2 not linearizable (seed {seed}): {e}\n{history:#?}")
            });
        }
    }

    #[test]
    fn derived_equals_native_for_simple_runs() {
        // Substitution check: the consensus face of the derived (2,2)-PAC
        // gives the same decisions as a native (2,2)-PAC under round-robin.
        let inner = ConsensusViaObject::via_propose_c(vec![int(1), int(2)], ObjId(0));

        let native_objects = vec![AnyObject::combined_pac(2, 2).unwrap()];
        let mut native_sys = System::new(&inner, &native_objects).unwrap();
        native_sys
            .run(&mut RoundRobin::new(), &mut FirstOutcome, 100)
            .unwrap();

        let procedure = CombinedFromComponents::new();
        let frontends = vec![CombinedFromComponents::frontend(ObjId(0), ObjId(1))];
        let derived = DerivedProtocol::new(&inner, &procedure, frontends);
        let derived_objects = vec![AnyObject::pac(2).unwrap(), AnyObject::consensus(2).unwrap()];
        let mut derived_sys = System::new(&derived, &derived_objects).unwrap();
        derived_sys
            .run(&mut RoundRobin::new(), &mut FirstOutcome, 100)
            .unwrap();

        for pid in [Pid(0), Pid(1)] {
            assert_eq!(native_sys.decision(pid), derived_sys.decision(pid));
        }
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn combined_procedure_rejects_foreign_ops() {
        let p = CombinedFromComponents::new();
        let _ = p.begin(Pid(0), ObjId(0), &Op::Read);
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn power_procedure_rejects_out_of_range_level() {
        let p = PowerFromConsensusAndSa::new(2);
        let _ = p.begin(Pid(0), ObjId(0), &Op::ProposeAt(int(1), 3));
    }

    #[test]
    fn power_procedure_level_routing() {
        let p = PowerFromConsensusAndSa::new(3);
        assert_eq!(p.max_k(), 3);
        let s = p.begin(Pid(0), ObjId(0), &Op::ProposeAt(int(5), 1));
        assert_eq!(p.pending(Pid(0), &s), (0, Op::Propose(int(5))));
        let s = p.begin(Pid(0), ObjId(0), &Op::ProposeAt(int(5), 3));
        assert_eq!(p.pending(Pid(0), &s), (2, Op::Propose(int(5))));
    }

    /// The paper's DAC-port simulation: uncontended ports decide a common
    /// value; contended ports may abort (⊥) but never disagree. Explored
    /// exhaustively for 3 ports.
    #[derive(Debug)]
    struct DacPortWorkload {
        inputs: Vec<Value>,
    }

    impl Protocol for DacPortWorkload {
        type LocalState = ();
        fn num_processes(&self) -> usize {
            self.inputs.len()
        }
        fn init(&self, _pid: Pid) {}
        fn pending_op(&self, pid: Pid, _s: &()) -> (ObjId, Op) {
            let label = Label::new(pid.index() + 1).unwrap();
            (ObjId(0), Op::ProposePac(self.inputs[pid.index()], label))
        }
        fn on_response(&self, _pid: Pid, _s: &(), resp: Value) -> Step<()> {
            Step::Decide(resp) // Bot = "abort"
        }
    }

    #[test]
    fn dac_port_simulation_agreement_and_solo_success() {
        use super::DacPortProcedure;
        let inputs: Vec<Value> = vec![int(1), int(2), int(3)];
        let inner = DacPortWorkload {
            inputs: inputs.clone(),
        };
        let procedure = DacPortProcedure::new();
        let derived = DerivedProtocol::new(
            &inner,
            &procedure,
            vec![DacPortProcedure::frontend(ObjId(0))],
        );
        let objects = vec![AnyObject::pac(3).unwrap()];
        let g = Explorer::new(&derived, &objects)
            .exploration()
            .run()
            .unwrap();
        assert!(g.complete);
        let mut aborted_somewhere = false;
        let mut decided_somewhere = false;
        for t in g.terminal_indices() {
            let cfg = &g.configs[t];
            let mut non_bot: Vec<Value> = cfg
                .procs
                .iter()
                .filter_map(|s| s.decision())
                .filter(|v| !v.is_bot())
                .collect();
            non_bot.sort();
            non_bot.dedup();
            assert!(non_bot.len() <= 1, "DAC agreement violated: {non_bot:?}");
            for v in &non_bot {
                assert!(inputs.contains(v), "DAC validity violated: {v}");
                decided_somewhere = true;
            }
            if cfg.procs.iter().any(|s| s.decision() == Some(Value::Bot)) {
                aborted_somewhere = true;
            }
        }
        assert!(decided_somewhere, "some execution must decide");
        assert!(aborted_somewhere, "some contended execution must abort");

        // Uncontended (solo) port operations never abort: run each process
        // alone to completion.
        use lbsa_runtime::scheduler::Solo;
        for (pid, input) in inputs.iter().enumerate() {
            let derived = DerivedProtocol::new(
                &inner,
                &procedure,
                vec![DacPortProcedure::frontend(ObjId(0))],
            );
            let mut sys = System::new(&derived, &objects).unwrap();
            sys.run(&mut Solo::new(Pid(pid)), &mut FirstOutcome, 100)
                .unwrap();
            assert_eq!(
                sys.decision(Pid(pid)),
                Some(*input),
                "a solo DAC port propose must decide its own value"
            );
        }
    }

    #[test]
    #[should_panic(expected = "supports only PROPOSE")]
    fn dac_port_rejects_foreign_ops() {
        use super::DacPortProcedure;
        let p = DacPortProcedure::new();
        let _ = p.begin(Pid(0), ObjId(0), &Op::Read);
    }
}

/// Footnote 3 / Section 3 of the paper: simulating one **port of an n-DAC
/// object** with an n-PAC base object.
///
/// The n-DAC object of Hadzilacos & Toueg is abortable: a propose on port
/// `i` either decides a common value or aborts. The paper's n-PAC object
/// simulates it: *"a process can use these two operations to simulate a
/// PROPOSE(v, i) operation on an n-DAC object by first applying a
/// PROPOSE(v, i) operation and then applying a DECIDE(i) operation with the
/// same label"*. This access procedure is that simulation, verbatim: the
/// front-end operation `ProposePac(v, i)` (read: "propose `v` on DAC port
/// `i`") expands to the PAC pair, and the front-end response is the
/// decide's result — a value, or `⊥` for "abort".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DacPortProcedure;

/// Program counter of one simulated DAC port operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DacPortState {
    /// About to apply `PROPOSE(v, i)` on the PAC base.
    Proposing(Value, lbsa_core::Label),
    /// About to apply `DECIDE(i)` on the PAC base.
    Deciding(lbsa_core::Label),
}

impl DacPortProcedure {
    /// Creates the procedure.
    #[must_use]
    pub fn new() -> Self {
        DacPortProcedure
    }

    /// Front-end layout over the n-PAC base object.
    #[must_use]
    pub fn frontend(pac: ObjId) -> FrontEnd {
        FrontEnd::Derived { base: vec![pac] }
    }
}

impl AccessProcedure for DacPortProcedure {
    type ProcState = DacPortState;

    fn begin(&self, _pid: Pid, _front: ObjId, op: &Op) -> DacPortState {
        match op {
            Op::ProposePac(v, i) => DacPortState::Proposing(*v, *i),
            other => panic!("a DAC port supports only PROPOSE(v, i), got {other}"),
        }
    }

    fn pending(&self, _pid: Pid, state: &DacPortState) -> (usize, Op) {
        match state {
            DacPortState::Proposing(v, i) => (0, Op::ProposePac(*v, *i)),
            DacPortState::Deciding(i) => (0, Op::DecidePac(*i)),
        }
    }

    fn resume(&self, _pid: Pid, state: &DacPortState, response: Value) -> AccessStep<DacPortState> {
        match state {
            DacPortState::Proposing(_, i) => AccessStep::Continue(DacPortState::Deciding(*i)),
            DacPortState::Deciding(_) => AccessStep::Return(response),
        }
    }
}
