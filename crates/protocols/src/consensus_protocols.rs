//! Consensus protocols from the paper's objects.
//!
//! * [`ConsensusViaObject`] — the canonical protocol behind "the object
//!   solves consensus among `n` processes": each process proposes its input
//!   to one `n`-consensus object and decides the response.
//! * [`ConsensusViaObject::via_propose_c`] — the same through the `PROPOSEC`
//!   face of an (n,m)-PAC object: the executable content of Observation
//!   5.1(c) and the upper-bound half of Theorem 5.3 ((n,m)-PAC solves
//!   `m`-consensus).
//! * [`ConsensusViaObject::via_power_level_1`] — consensus through level 1 of a power
//!   object `O'ₙ` (its `(n₁, 1)-SA` component *is* consensus for `n₁`
//!   processes).
//!
//! Each protocol decides in exactly two steps per process, so the
//! exploration graphs are tiny and the exhaustive consensus checker covers
//! every execution.

use lbsa_core::{ObjId, Op, Pid, Value};
use lbsa_runtime::process::{classes_by_input, Protocol, Step, Symmetry};

/// Which propose operation carries the value to the shared object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ProposeFace {
    /// `PROPOSE(v)` on an `n`-consensus object.
    Plain,
    /// `PROPOSEC(v)` on an (n,m)-PAC object.
    CombinedC,
    /// `PROPOSE(v, k)` on a power object.
    PowerLevel(usize),
}

/// A one-shot consensus protocol: propose the input, decide the response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsensusViaObject {
    inputs: Vec<Value>,
    obj: ObjId,
    face: ProposeFace,
}

impl ConsensusViaObject {
    /// Consensus via a plain `n`-consensus object at `obj`.
    ///
    /// The object must have arity at least `inputs.len()`, otherwise late
    /// proposers receive `⊥` and the run fails (which is itself the point of
    /// several refutation experiments).
    #[must_use]
    pub fn new(inputs: Vec<Value>, obj: ObjId) -> Self {
        ConsensusViaObject {
            inputs,
            obj,
            face: ProposeFace::Plain,
        }
    }

    /// Consensus via the `PROPOSEC` face of an (n,m)-PAC object at `obj`
    /// (Observation 5.1(c)).
    #[must_use]
    pub fn via_propose_c(inputs: Vec<Value>, obj: ObjId) -> Self {
        ConsensusViaObject {
            inputs,
            obj,
            face: ProposeFace::CombinedC,
        }
    }

    /// Consensus via level 1 of a power object at `obj`.
    #[must_use]
    pub fn via_power_level_1(inputs: Vec<Value>, obj: ObjId) -> Self {
        ConsensusViaObject {
            inputs,
            obj,
            face: ProposeFace::PowerLevel(1),
        }
    }

    /// The process inputs.
    #[must_use]
    pub fn inputs(&self) -> &[Value] {
        &self.inputs
    }
}

impl Protocol for ConsensusViaObject {
    type LocalState = ();

    fn num_processes(&self) -> usize {
        self.inputs.len()
    }

    fn init(&self, _pid: Pid) {}

    fn pending_op(&self, pid: Pid, _state: &()) -> (ObjId, Op) {
        let v = self.inputs[pid.index()];
        let op = match self.face {
            ProposeFace::Plain => Op::Propose(v),
            ProposeFace::CombinedC => Op::ProposeC(v),
            ProposeFace::PowerLevel(k) => Op::ProposeAt(v, k),
        };
        (self.obj, op)
    }

    fn on_response(&self, _pid: Pid, _state: &(), response: Value) -> Step<()> {
        Step::Decide(response)
    }
}

/// Processes with equal inputs are interchangeable: the op each process
/// performs mentions only its input value, and every object state this
/// protocol touches (consensus, (n,m)-PAC, power) is pid-free.
impl Symmetry for ConsensusViaObject {
    fn pid_classes(&self) -> Vec<u32> {
        classes_by_input(&self.inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::value::int;
    use lbsa_core::AnyObject;
    use lbsa_explorer::checker::{check_consensus, Violation};
    use lbsa_explorer::{Explorer, Limits};

    fn binary_inputs(n: usize) -> Vec<Vec<Value>> {
        crate::dac::all_binary_inputs(n)
    }

    #[test]
    fn symmetry_reduction_preserves_consensus_verdicts() {
        use lbsa_explorer::verdict::{verdict_consensus, verdict_consensus_reduced};
        for inputs in binary_inputs(3) {
            let p = ConsensusViaObject::new(inputs.clone(), ObjId(0));
            let objects = vec![AnyObject::consensus(3).unwrap()];
            let ex = Explorer::new(&p, &objects);
            let raw = verdict_consensus(&ex, &[int(0), int(1)], Limits::default());
            let reduced = verdict_consensus_reduced(&ex, &[int(0), int(1)], Limits::default());
            assert_eq!(
                raw.outcome.tag(),
                reduced.outcome.tag(),
                "verdicts diverge on {inputs:?}"
            );
            assert!(reduced.stats.configs <= raw.stats.configs);
        }
    }

    #[test]
    fn consensus_via_consensus_object_verified_exhaustively() {
        for n in 2..=4usize {
            for inputs in binary_inputs(n) {
                let valid = inputs.clone();
                let p = ConsensusViaObject::new(inputs, ObjId(0));
                let objects = vec![AnyObject::consensus(n).unwrap()];
                let ex = Explorer::new(&p, &objects);
                check_consensus(&ex, &valid, Limits::default())
                    .unwrap_or_else(|v| panic!("consensus violated for n = {n}: {v}"));
            }
        }
    }

    #[test]
    fn n_consensus_object_fails_for_n_plus_1_processes() {
        // The defining failure: with n + 1 processes on an n-consensus
        // object, the last proposer receives ⊥ and "decides" it — a validity
        // violation found by the checker. (This is the executable content of
        // "the consensus number of n-consensus is exactly n".)
        let inputs = vec![int(0), int(1), int(0)];
        let p = ConsensusViaObject::new(inputs.clone(), ObjId(0));
        let objects = vec![AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let err = check_consensus(&ex, &inputs, Limits::default()).unwrap_err();
        // Depending on exploration order the first symptom is either the ⊥
        // "decision" itself (validity) or its disagreement with a real one.
        assert!(
            matches!(
                err,
                Violation::Validity {
                    value: Value::Bot,
                    ..
                } | Violation::Agreement { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn theorem_5_3_upper_bound_proposec_solves_m_consensus() {
        // (n,m)-PAC solves consensus among m processes through PROPOSEC,
        // regardless of n: here (4,2)-PAC and (2,3)-PAC.
        for (n, m) in [(4usize, 2usize), (2, 3)] {
            for inputs in binary_inputs(m) {
                let valid = inputs.clone();
                let p = ConsensusViaObject::via_propose_c(inputs, ObjId(0));
                let objects = vec![AnyObject::combined_pac(n, m).unwrap()];
                let ex = Explorer::new(&p, &objects);
                check_consensus(&ex, &valid, Limits::default())
                    .unwrap_or_else(|v| panic!("({n},{m})-PAC failed m-consensus: {v}"));
            }
        }
    }

    #[test]
    fn combined_pac_fails_m_plus_1_consensus_via_proposec() {
        // The canonical protocol breaks down for m + 1 processes — the
        // budget of the embedded m-consensus object is exhausted. (The full
        // impossibility — no protocol at all works — is Theorem 5.2; this
        // checks its canonical-protocol shadow.)
        let inputs = vec![int(0), int(1), int(1)];
        let p = ConsensusViaObject::via_propose_c(inputs.clone(), ObjId(0));
        let objects = vec![AnyObject::combined_pac(3, 2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        assert!(check_consensus(&ex, &inputs, Limits::default()).is_err());
    }

    #[test]
    fn power_object_level_1_is_consensus_for_n_processes() {
        // O'_2's level-1 component is a (2,1)-SA object: consensus for 2.
        for inputs in binary_inputs(2) {
            let valid = inputs.clone();
            let p = ConsensusViaObject::via_power_level_1(inputs, ObjId(0));
            let objects = vec![AnyObject::o_prime_n(2, 3).unwrap()];
            let ex = Explorer::new(&p, &objects);
            check_consensus(&ex, &valid, Limits::default())
                .unwrap_or_else(|v| panic!("O'_2 level 1 failed consensus: {v}"));
        }
    }

    #[test]
    fn power_object_level_1_fails_beyond_n_1() {
        // Three processes on O'_2's level 1 ((2,1)-SA): the third gets ⊥.
        let inputs = vec![int(0), int(1), int(0)];
        let p = ConsensusViaObject::via_power_level_1(inputs.clone(), ObjId(0));
        let objects = vec![AnyObject::o_prime_n(2, 3).unwrap()];
        let ex = Explorer::new(&p, &objects);
        assert!(check_consensus(&ex, &inputs, Limits::default()).is_err());
    }

    #[test]
    fn accessors() {
        let p = ConsensusViaObject::new(vec![int(0), int(1)], ObjId(2));
        assert_eq!(p.inputs(), &[int(0), int(1)]);
        assert_eq!(p.num_processes(), 2);
        let (obj, op) = p.pending_op(Pid(1), &());
        assert_eq!(obj, ObjId(2));
        assert_eq!(op, Op::Propose(int(1)));
    }
}
