//! **Vote propagation** over a random partially-connected network: the
//! first *sampling-only* workload family (experiment F8).
//!
//! Unlike every other protocol in this crate, vote propagation is not an
//! algorithm from the paper — it is a stress workload for the sampling
//! engine ([`lbsa_explorer::sampling`]): a commitment-cascade model in
//! which consensus spreads through a network by positive vote
//! accumulation. Its exhaustive state space explodes combinatorially with
//! the node count (every mailbox counter is part of the configuration),
//! which makes it exactly the kind of instance the paper's experiments
//! hand to the randomized checker instead of the exhaustive one.
//!
//! ## The model
//!
//! `n` nodes share `n` single-writer-style mailboxes (plain registers;
//! `ObjId(i)` is node `i`'s mailbox, counting the votes it has received,
//! with `nil` read as zero). Each node is initially **idle** unless it is
//! in the *starting set*. Per round, a node:
//!
//! 1. reads its own mailbox (its *vote balance*);
//! 2. **commits** — decides `1` and halts — once the balance exceeds
//!    [`VotePropagation::COMMIT_THRESHOLD`];
//! 3. otherwise, if *active* (a starter, or the balance shows it has
//!    received at least one vote) and it has outgoing edges, it sends a
//!    `+1` vote to each of [`VotePropagation::FANOUT`] connected peers
//!    (read the peer's mailbox, write back the incremented count — lost
//!    updates under contention are part of the modelled behaviour);
//! 4. idle nodes just poll; after `max_rounds` rounds every uncommitted
//!    node halts without deciding.
//!
//! The network is a random digraph: each node gets `connectivity`
//! distinct outgoing edges, and each edge is made bidirectional with
//! probability `bidi_num / bidi_den`. Peer choice per `(node, round,
//! slot)` is a deterministic hash of the topology seed, so all run-to-run
//! nondeterminism comes from the scheduler — every sampled seed replays
//! exactly.
//!
//! Two simplifications relative to the prose protocol this is drawn from:
//! committed nodes halt outright instead of keeping an auto-responder
//! running, and vote receipt is modelled by the shared counter rather
//! than per-edge vote storage.
//!
//! Checked as consensus with `valid = [1]`: the only decidable value is
//! `1`, so agreement and validity hold on every run — what the F8 sweep
//! measures is how quiescence, commit cascades, and schedule lengths
//! respond to connectivity, starting-set size, and bidirectionality.

use lbsa_core::value::int;
use lbsa_core::{AnyObject, ObjId, Op, Pid, Value};
use lbsa_runtime::process::{Protocol, Step};
use lbsa_support::rng::SmallRng;

/// SplitMix64 finalizer: the per-`(node, round, slot)` peer-choice hash.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Where a voter is inside its current round.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum VotePhase {
    /// Reading the own mailbox to learn the vote balance.
    Check,
    /// Reading the mailbox of the peer chosen for this send slot.
    SendRead {
        /// Send slot within the round (`0..FANOUT`).
        slot: u8,
        /// The chosen peer (a node index).
        target: usize,
    },
    /// Writing the incremented vote count back to the peer's mailbox.
    SendWrite {
        /// Send slot within the round (`0..FANOUT`).
        slot: u8,
        /// The chosen peer (a node index).
        target: usize,
        /// The vote count read in the preceding [`VotePhase::SendRead`].
        votes: i64,
    },
}

/// Local state of one voter: its round counter and phase.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct VoterState {
    /// Completed-round counter (halts at `max_rounds`).
    pub round: u32,
    /// Position inside the current round.
    pub phase: VotePhase,
}

/// The vote-propagation workload (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VotePropagation {
    neighbors: Vec<Vec<usize>>,
    start: Vec<bool>,
    max_rounds: u32,
    seed: u64,
}

impl VotePropagation {
    /// A node commits once its vote balance exceeds this.
    pub const COMMIT_THRESHOLD: i64 = 2;

    /// Votes an active node sends per round.
    pub const FANOUT: u8 = 2;

    /// Rounds an idle node polls before halting, unless overridden with
    /// [`VotePropagation::with_max_rounds`].
    pub const DEFAULT_MAX_ROUNDS: u32 = 8;

    /// Creates the workload from an explicit topology.
    ///
    /// `neighbors[i]` lists node `i`'s outgoing edges, `start[i]` marks
    /// the starting set, and `seed` drives the per-round peer choice.
    ///
    /// # Errors
    ///
    /// Returns an error string if the graph is empty, `start` has the
    /// wrong length, or any edge is a self-loop or out of range.
    pub fn new(neighbors: Vec<Vec<usize>>, start: Vec<bool>, seed: u64) -> Result<Self, String> {
        let n = neighbors.len();
        if n == 0 {
            return Err("vote propagation needs at least one node".into());
        }
        if start.len() != n {
            return Err(format!("start set has {} flags for {n} nodes", start.len()));
        }
        for (i, nbrs) in neighbors.iter().enumerate() {
            for &j in nbrs {
                if j == i {
                    return Err(format!("node {i} has a self-loop"));
                }
                if j >= n {
                    return Err(format!("node {i} points at out-of-range node {j}"));
                }
            }
        }
        Ok(VotePropagation {
            neighbors,
            start,
            max_rounds: Self::DEFAULT_MAX_ROUNDS,
            seed,
        })
    }

    /// Creates a random instance: `n` nodes, `connectivity` outgoing
    /// edges per node (each made bidirectional with probability
    /// `bidi_num / bidi_den`), and a uniformly-chosen starting set of
    /// `start_count` nodes. Fully deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error string if `n == 0`, `connectivity > n - 1`,
    /// `start_count > n`, or `bidi_den == 0`.
    pub fn random(
        n: usize,
        connectivity: usize,
        start_count: usize,
        bidi_num: u64,
        bidi_den: u64,
        seed: u64,
    ) -> Result<Self, String> {
        if n == 0 {
            return Err("vote propagation needs at least one node".into());
        }
        if connectivity >= n {
            return Err(format!("connectivity {connectivity} needs {} peers", n - 1));
        }
        if start_count > n {
            return Err(format!("starting set {start_count} exceeds {n} nodes"));
        }
        if bidi_den == 0 {
            return Err("bidirectional probability has a zero denominator".into());
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        // Outgoing edges: `connectivity` distinct non-self peers per node.
        let mut adjacency: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut pool: Vec<usize> = (0..n).filter(|&j| j != i).collect();
                (0..connectivity)
                    .map(|_| pool.swap_remove(rng.random_range(0..pool.len())))
                    .collect()
            })
            .collect();
        // Bidirectionality: reverse each edge with probability num/den.
        for i in 0..n {
            for s in 0..adjacency[i].len() {
                let j = adjacency[i][s];
                if rng.ratio(bidi_num, bidi_den) && !adjacency[j].contains(&i) {
                    adjacency[j].push(i);
                }
            }
        }
        for nbrs in &mut adjacency {
            nbrs.sort_unstable();
        }
        // Starting set: `start_count` distinct nodes.
        let mut start = vec![false; n];
        let mut pool: Vec<usize> = (0..n).collect();
        for _ in 0..start_count {
            start[pool.swap_remove(rng.random_range(0..pool.len()))] = true;
        }
        VotePropagation::new(adjacency, start, seed)
    }

    /// Overrides the round budget.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// The `n` mailbox registers this workload needs.
    #[must_use]
    pub fn mailboxes(&self) -> Vec<AnyObject> {
        (0..self.n()).map(|_| AnyObject::register()).collect()
    }

    /// Node count.
    #[must_use]
    pub fn n(&self) -> usize {
        self.neighbors.len()
    }

    /// Node `i`'s outgoing edges, sorted.
    #[must_use]
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.neighbors[i]
    }

    /// Whether node `i` is in the starting set.
    #[must_use]
    pub fn is_starter(&self, i: usize) -> bool {
        self.start[i]
    }

    /// The peer node `node` votes at in `(round, slot)` — a deterministic
    /// hash of the topology seed, so replays of a sampled schedule make
    /// identical choices.
    fn peer(&self, node: usize, round: u32, slot: u8) -> usize {
        let nbrs = &self.neighbors[node];
        let node64 = u64::try_from(node).expect("node index fits in u64");
        let key = mix(self.seed
            ^ node64.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (u64::from(round) << 8)
            ^ u64::from(slot));
        let len = u64::try_from(nbrs.len()).expect("degree fits in u64");
        nbrs[usize::try_from(key % len).expect("index fits usize")]
    }

    /// Mailbox contents as a vote count (`nil` = no votes yet).
    fn votes(response: Value) -> i64 {
        response.as_int().unwrap_or(0)
    }
}

impl Protocol for VotePropagation {
    type LocalState = VoterState;

    fn num_processes(&self) -> usize {
        self.n()
    }

    fn init(&self, _pid: Pid) -> VoterState {
        VoterState {
            round: 0,
            phase: VotePhase::Check,
        }
    }

    fn pending_op(&self, pid: Pid, state: &VoterState) -> (ObjId, Op) {
        match &state.phase {
            VotePhase::Check => (ObjId(pid.index()), Op::Read),
            VotePhase::SendRead { target, .. } => (ObjId(*target), Op::Read),
            VotePhase::SendWrite { target, votes, .. } => {
                (ObjId(*target), Op::Write(int(votes + 1)))
            }
        }
    }

    fn on_response(&self, pid: Pid, state: &VoterState, response: Value) -> Step<VoterState> {
        let node = pid.index();
        let round = state.round;
        match &state.phase {
            VotePhase::Check => {
                let balance = Self::votes(response);
                if balance > Self::COMMIT_THRESHOLD {
                    return Step::Decide(int(1));
                }
                if round >= self.max_rounds {
                    return Step::Halt;
                }
                let active = self.start[node] || balance > 0;
                if active && !self.neighbors[node].is_empty() {
                    Step::Continue(VoterState {
                        round,
                        phase: VotePhase::SendRead {
                            slot: 0,
                            target: self.peer(node, round, 0),
                        },
                    })
                } else {
                    Step::Continue(VoterState {
                        round: round + 1,
                        phase: VotePhase::Check,
                    })
                }
            }
            VotePhase::SendRead { slot, target } => Step::Continue(VoterState {
                round,
                phase: VotePhase::SendWrite {
                    slot: *slot,
                    target: *target,
                    votes: Self::votes(response),
                },
            }),
            VotePhase::SendWrite { slot, .. } => {
                let next = slot + 1;
                if next < Self::FANOUT {
                    Step::Continue(VoterState {
                        round,
                        phase: VotePhase::SendRead {
                            slot: next,
                            target: self.peer(node, round, next),
                        },
                    })
                } else {
                    Step::Continue(VoterState {
                        round: round + 1,
                        phase: VotePhase::Check,
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_explorer::sampling::OUTCOME_SEED_XOR;
    use lbsa_explorer::{Explorer, Outcome, SampleConfig};
    use lbsa_runtime::outcome::RandomOutcome;
    use lbsa_runtime::scheduler::RandomScheduler;
    use lbsa_runtime::system::System;

    #[test]
    fn random_topology_is_deterministic_in_the_seed() {
        let a = VotePropagation::random(8, 2, 3, 1, 2, 42).unwrap();
        let b = VotePropagation::random(8, 2, 3, 1, 2, 42).unwrap();
        assert_eq!(a, b);
        let c = VotePropagation::random(8, 2, 3, 1, 2, 43).unwrap();
        assert_ne!(a, c, "different seeds should differ (seed 43 collided)");
    }

    #[test]
    fn random_topology_has_the_requested_shape() {
        let p = VotePropagation::random(10, 3, 4, 1, 1, 7).unwrap();
        assert_eq!(p.n(), 10);
        let starters = (0..10).filter(|&i| p.is_starter(i)).count();
        assert_eq!(starters, 4);
        for i in 0..10 {
            // bidi probability 1 can only add edges beyond the base 3.
            assert!(p.neighbors(i).len() >= 3);
            assert!(!p.neighbors(i).contains(&i), "no self-loops");
            assert!(p.neighbors(i).windows(2).all(|w| w[0] < w[1]), "sorted");
        }
    }

    #[test]
    fn constructor_validation() {
        assert!(VotePropagation::random(0, 0, 0, 1, 2, 1).is_err());
        assert!(VotePropagation::random(4, 4, 1, 1, 2, 1).is_err());
        assert!(VotePropagation::random(4, 1, 5, 1, 2, 1).is_err());
        assert!(VotePropagation::random(4, 1, 1, 1, 0, 1).is_err());
        assert!(VotePropagation::new(vec![vec![0]], vec![true], 1).is_err());
        assert!(VotePropagation::new(vec![vec![7], vec![0]], vec![true; 2], 1).is_err());
        assert!(VotePropagation::new(vec![vec![1], vec![0]], vec![true], 1).is_err());
    }

    #[test]
    fn peer_choice_is_deterministic_and_in_range() {
        let p = VotePropagation::random(6, 2, 2, 1, 2, 11).unwrap();
        for node in 0..6 {
            for round in 0..4 {
                for slot in 0..VotePropagation::FANOUT {
                    let t = p.peer(node, round, slot);
                    assert_eq!(t, p.peer(node, round, slot));
                    assert!(p.neighbors(node).contains(&t));
                }
            }
        }
    }

    #[test]
    fn sampled_consensus_check_holds() {
        let p = VotePropagation::random(6, 2, 2, 1, 2, 3).unwrap();
        let mailboxes = p.mailboxes();
        let verdict = Explorer::new(&p, &mailboxes)
            .exploration()
            .sample(SampleConfig {
                runs: 200,
                seed0: 0,
                max_steps: 10_000,
                ..SampleConfig::default()
            })
            .check_consensus(&[int(1)]);
        match verdict.outcome {
            Outcome::HoldsSampled {
                runs, quiescent, ..
            } => {
                assert_eq!(runs, 200);
                assert_eq!(quiescent, 200, "round budgets bound every run");
            }
            other => panic!("expected HoldsSampled, got {other:?}"),
        }
    }

    #[test]
    fn dense_all_started_network_cascades_to_commits() {
        // Fully connected, everyone starting: each node receives ~FANOUT
        // votes per round, so balances cross the threshold quickly on
        // most schedules. Assert at least one seeded run commits.
        let n = 5;
        let all: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..n).filter(|&j| j != i).collect())
            .collect();
        let p = VotePropagation::new(all, vec![true; n], 9).unwrap();
        let mailboxes = p.mailboxes();
        let mut committed = 0usize;
        for seed in 0..20u64 {
            let mut sys = System::new(&p, &mailboxes).unwrap();
            let result = sys
                .run(
                    &mut RandomScheduler::seeded(seed),
                    &mut RandomOutcome::seeded(seed ^ OUTCOME_SEED_XOR),
                    10_000,
                )
                .unwrap();
            committed += result
                .decisions
                .iter()
                .filter(|d| **d == Some(int(1)))
                .count();
        }
        assert!(
            committed > 0,
            "no commit cascade across 20 seeds on a dense all-started graph"
        );
    }

    #[test]
    fn isolated_nodes_poll_and_halt_without_deciding() {
        let p = VotePropagation::random(3, 0, 1, 1, 2, 5)
            .unwrap()
            .with_max_rounds(3);
        let mailboxes = p.mailboxes();
        let mut sys = System::new(&p, &mailboxes).unwrap();
        let result = sys
            .run(
                &mut RandomScheduler::seeded(1),
                &mut RandomOutcome::seeded(1 ^ OUTCOME_SEED_XOR),
                1_000,
            )
            .unwrap();
        assert!(result.decisions.iter().all(Option::is_none));
        // 3 nodes x (3 polls + the halting check) = 12 steps.
        assert_eq!(result.steps, 12);
    }
}
