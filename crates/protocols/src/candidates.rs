//! **Refutation targets**: natural-but-doomed protocols and implementations.
//!
//! Theorems 4.2/4.3 and 6.5 of the paper are impossibility results: *no*
//! algorithm solves (n+1)-DAC (equivalently, implements (n+1)-PAC / `Oₙ`)
//! from n-consensus objects, registers, and 2-SA objects (equivalently, from
//! `O'ₙ` and registers). An executable reproduction cannot quantify over all
//! algorithms, but it can do the next best thing: take the *natural
//! candidate* algorithms a practitioner would write, and let the machinery
//! of `lbsa-explorer` find, for each one, a concrete machine-checkable
//! counterexample — an agreement/validity violation, or a non-termination
//! certificate, exactly the dichotomy the paper's proofs establish.
//!
//! This module is that catalogue:
//!
//! * [`WaitForWinner`] — (n+1)-consensus attempt: propose to the
//!   n-consensus object; losers spin on a register waiting for the winner's
//!   announcement. *Fails Termination* (the spinner can starve).
//! * [`SaThenConsensus`] — narrow to two values with the 2-SA object, then
//!   try to break the tie with the n-consensus object. *Fails Agreement*
//!   (the `⊥`-receiver keeps its own narrowed value).
//! * [`DacWaitForWinner`] — the DAC version of `WaitForWinner` where the
//!   distinguished process aborts on `⊥`. *Fails Termination (b)*.
//! * [`CandidatePacProcedure`] — an access-procedure implementation of an
//!   (n+1)-PAC front-end from {agreement object, registers}, mimicking
//!   Algorithm 1's state with registers and delegating the `val` agreement
//!   to either an n-consensus object (Theorem 4.3 target) or a level of
//!   `O'ₙ` (Theorem 6.5 target). Running **Algorithm 2** over this front-end
//!   violates the n-DAC properties — by port exhaustion (level 1 /
//!   consensus) or by double-answer (level 2). The experiments refute every
//!   variant.

use lbsa_core::{ObjId, Op, Pid, Value};
use lbsa_runtime::derived::{AccessProcedure, AccessStep, FrontEnd};
use lbsa_runtime::process::{Protocol, Step};

/// (n+1)-consensus attempt over an n-consensus object (base `ObjId(0)`) and
/// an announcement register (`ObjId(1)`): winners announce, losers spin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitForWinner {
    inputs: Vec<Value>,
}

/// Local state of [`WaitForWinner`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WfwState {
    /// About to propose to the consensus object.
    Propose,
    /// Got a value; about to announce it in the register.
    Announce(Value),
    /// Got `⊥`; spinning on the announcement register.
    Spin,
}

impl WaitForWinner {
    /// Creates the candidate with the given inputs (any number of
    /// processes; it is doomed as soon as there are more processes than the
    /// consensus object's arity).
    #[must_use]
    pub fn new(inputs: Vec<Value>) -> Self {
        WaitForWinner { inputs }
    }
}

impl Protocol for WaitForWinner {
    type LocalState = WfwState;

    fn num_processes(&self) -> usize {
        self.inputs.len()
    }

    fn init(&self, _pid: Pid) -> WfwState {
        WfwState::Propose
    }

    fn pending_op(&self, pid: Pid, state: &WfwState) -> (ObjId, Op) {
        match state {
            WfwState::Propose => (ObjId(0), Op::Propose(self.inputs[pid.index()])),
            WfwState::Announce(v) => (ObjId(1), Op::Write(*v)),
            WfwState::Spin => (ObjId(1), Op::Read),
        }
    }

    fn on_response(&self, _pid: Pid, state: &WfwState, response: Value) -> Step<WfwState> {
        match state {
            WfwState::Propose => {
                if response == Value::Bot {
                    Step::Continue(WfwState::Spin)
                } else {
                    Step::Continue(WfwState::Announce(response))
                }
            }
            WfwState::Announce(v) => Step::Decide(*v),
            WfwState::Spin => {
                if response.is_nil() {
                    Step::Continue(WfwState::Spin)
                } else {
                    Step::Decide(response)
                }
            }
        }
    }
}

/// (n+1)-consensus attempt: narrow to two values via the 2-SA object
/// (`ObjId(0)`), then tie-break on the n-consensus object (`ObjId(1)`);
/// a `⊥` from the tie-break falls back to the narrowed value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SaThenConsensus {
    inputs: Vec<Value>,
}

/// Local state of [`SaThenConsensus`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StcState {
    /// About to propose to the 2-SA object.
    Narrow,
    /// Got a narrowed value; about to tie-break on the consensus object.
    TieBreak(Value),
}

impl SaThenConsensus {
    /// Creates the candidate.
    #[must_use]
    pub fn new(inputs: Vec<Value>) -> Self {
        SaThenConsensus { inputs }
    }
}

impl Protocol for SaThenConsensus {
    type LocalState = StcState;

    fn num_processes(&self) -> usize {
        self.inputs.len()
    }

    fn init(&self, _pid: Pid) -> StcState {
        StcState::Narrow
    }

    fn pending_op(&self, pid: Pid, state: &StcState) -> (ObjId, Op) {
        match state {
            StcState::Narrow => (ObjId(0), Op::Propose(self.inputs[pid.index()])),
            StcState::TieBreak(v) => (ObjId(1), Op::Propose(*v)),
        }
    }

    fn on_response(&self, _pid: Pid, state: &StcState, response: Value) -> Step<StcState> {
        match state {
            StcState::Narrow => Step::Continue(StcState::TieBreak(response)),
            StcState::TieBreak(narrowed) => {
                if response == Value::Bot {
                    // The consensus object is exhausted; fall back to the
                    // narrowed value — this is where agreement breaks.
                    Step::Decide(*narrowed)
                } else {
                    Step::Decide(response)
                }
            }
        }
    }
}

/// (n+1)-DAC attempt: like [`WaitForWinner`] but the distinguished process
/// aborts on `⊥` instead of spinning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DacWaitForWinner {
    inputs: Vec<Value>,
    distinguished: Pid,
}

impl DacWaitForWinner {
    /// Creates the candidate.
    #[must_use]
    pub fn new(inputs: Vec<Value>, distinguished: Pid) -> Self {
        DacWaitForWinner {
            inputs,
            distinguished,
        }
    }

    /// The distinguished process.
    #[must_use]
    pub fn distinguished(&self) -> Pid {
        self.distinguished
    }
}

impl Protocol for DacWaitForWinner {
    type LocalState = WfwState;

    fn num_processes(&self) -> usize {
        self.inputs.len()
    }

    fn init(&self, _pid: Pid) -> WfwState {
        WfwState::Propose
    }

    fn pending_op(&self, pid: Pid, state: &WfwState) -> (ObjId, Op) {
        match state {
            WfwState::Propose => (ObjId(0), Op::Propose(self.inputs[pid.index()])),
            WfwState::Announce(v) => (ObjId(1), Op::Write(*v)),
            WfwState::Spin => (ObjId(1), Op::Read),
        }
    }

    fn on_response(&self, pid: Pid, state: &WfwState, response: Value) -> Step<WfwState> {
        match state {
            WfwState::Propose => {
                if response == Value::Bot {
                    if pid == self.distinguished {
                        return Step::Abort;
                    }
                    Step::Continue(WfwState::Spin)
                } else {
                    Step::Continue(WfwState::Announce(response))
                }
            }
            WfwState::Announce(v) => Step::Decide(*v),
            WfwState::Spin => {
                if response.is_nil() {
                    Step::Continue(WfwState::Spin)
                } else {
                    Step::Decide(response)
                }
            }
        }
    }
}

/// How the candidate PAC implementation agrees on the `val` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValAgreement {
    /// Propose to a plain n-consensus object (the Theorem 4.3 setting:
    /// implement (n+1)-PAC from n-consensus + registers).
    ConsensusObject,
    /// Propose at level `k` of a power object `O'ₙ` (the Theorem 6.5
    /// setting: implement `Oₙ`'s PAC face from `O'ₙ` + registers).
    PowerLevel(usize),
}

/// A candidate implementation of an (n+1)-PAC front-end over base objects
/// `[0]` = agreement object (see [`ValAgreement`]), `[1]` = register `L`,
/// `[2 + i]` = register `V[i+1]`.
///
/// The procedure mirrors Algorithm 1 step by step, except that the `val`
/// field — the one place where genuine (n+1)-process agreement is needed —
/// is delegated to the base agreement object. That delegation is precisely
/// what the paper proves cannot work:
///
/// * with an n-consensus object or level 1 of `O'ₙ`, the agreement budget is
///   `n < n + 1` ports, so some simulated port eventually receives `⊥`
///   forever (Termination (b) of the n-DAC problem fails);
/// * with level `k >= 2` of `O'ₙ`, two ports can receive *different* values
///   (Agreement of the n-DAC problem fails).
///
/// Note the candidate is not even linearizable as a PAC object (its
/// register updates race); the refutation experiments do not rely on that —
/// they run Algorithm 2 over the front-end and exhibit an n-DAC property
/// violation, which refutes the implementation *as an implementation*
/// (Theorem 4.1 would otherwise make Algorithm 2 correct).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandidatePacProcedure {
    labels: usize,
    val_agreement: ValAgreement,
}

/// Program counter of one access of [`CandidatePacProcedure`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CandidatePacState {
    /// `PROPOSE(v, i)`: writing `V[i] <- v`.
    ProposeWriteV {
        /// Proposed value.
        v: Value,
        /// 0-based label index.
        label: usize,
    },
    /// `PROPOSE(v, i)`: writing `L <- i`.
    ProposeWriteL {
        /// 0-based label index.
        label: usize,
    },
    /// `DECIDE(i)`: reading `L`.
    DecideReadL {
        /// 0-based label index.
        label: usize,
    },
    /// `DECIDE(i)`: reading `V[i]`.
    DecideReadV {
        /// 0-based label index.
        label: usize,
        /// Whether `L` matched the label.
        l_matches: bool,
    },
    /// `DECIDE(i)`: proposing `V[i]` to the agreement object.
    DecideAgree {
        /// 0-based label index.
        label: usize,
        /// The value read from `V[i]`, to propose.
        v: Value,
    },
    /// `DECIDE(i)`: clearing `V[i]`.
    DecideClearV {
        /// 0-based label index.
        label: usize,
        /// The response to eventually return.
        result: Value,
    },
    /// `DECIDE(i)`: clearing `L`.
    DecideClearL {
        /// The response to eventually return.
        result: Value,
    },
}

impl CandidatePacProcedure {
    /// Creates the candidate for an (labels)-PAC front-end.
    ///
    /// # Panics
    ///
    /// Panics if `labels == 0`.
    #[must_use]
    pub fn new(labels: usize, val_agreement: ValAgreement) -> Self {
        assert!(labels >= 1);
        CandidatePacProcedure {
            labels,
            val_agreement,
        }
    }

    /// Front-end layout: `agreement` first, then `l_register`, then one
    /// `V` register per label.
    #[must_use]
    pub fn frontend(agreement: ObjId, l_register: ObjId, v_registers: Vec<ObjId>) -> FrontEnd {
        let mut base = vec![agreement, l_register];
        base.extend(v_registers);
        FrontEnd::Derived { base }
    }

    fn agree_op(&self, v: Value) -> Op {
        match self.val_agreement {
            ValAgreement::ConsensusObject => Op::Propose(v),
            ValAgreement::PowerLevel(k) => Op::ProposeAt(v, k),
        }
    }
}

impl AccessProcedure for CandidatePacProcedure {
    type ProcState = CandidatePacState;

    fn begin(&self, _pid: Pid, _front: ObjId, op: &Op) -> CandidatePacState {
        match op {
            Op::ProposePac(v, i) if i.in_range(self.labels) => CandidatePacState::ProposeWriteV {
                v: *v,
                label: i.to_index(),
            },
            Op::DecidePac(i) if i.in_range(self.labels) => CandidatePacState::DecideReadL {
                label: i.to_index(),
            },
            other => panic!("candidate PAC front-end does not support {other}"),
        }
    }

    fn pending(&self, _pid: Pid, state: &CandidatePacState) -> (usize, Op) {
        match state {
            CandidatePacState::ProposeWriteV { v, label } => (2 + label, Op::Write(*v)),
            CandidatePacState::ProposeWriteL { label } => (1, Op::Write(Value::Int(*label as i64))),
            CandidatePacState::DecideReadL { .. } => (1, Op::Read),
            CandidatePacState::DecideReadV { label, .. } => (2 + label, Op::Read),
            CandidatePacState::DecideAgree { v, .. } => (0, self.agree_op(*v)),
            CandidatePacState::DecideClearV { label, .. } => (2 + label, Op::Write(Value::Nil)),
            CandidatePacState::DecideClearL { .. } => (1, Op::Write(Value::Nil)),
        }
    }

    fn resume(
        &self,
        _pid: Pid,
        state: &CandidatePacState,
        response: Value,
    ) -> AccessStep<CandidatePacState> {
        match state {
            CandidatePacState::ProposeWriteV { label, .. } => {
                AccessStep::Continue(CandidatePacState::ProposeWriteL { label: *label })
            }
            CandidatePacState::ProposeWriteL { .. } => AccessStep::Return(Value::Done),
            CandidatePacState::DecideReadL { label } => {
                let l_matches = response == Value::Int(*label as i64);
                AccessStep::Continue(CandidatePacState::DecideReadV {
                    label: *label,
                    l_matches,
                })
            }
            CandidatePacState::DecideReadV { label, l_matches } => {
                if *l_matches && !response.is_nil() {
                    AccessStep::Continue(CandidatePacState::DecideAgree {
                        label: *label,
                        v: response,
                    })
                } else {
                    AccessStep::Continue(CandidatePacState::DecideClearV {
                        label: *label,
                        result: Value::Bot,
                    })
                }
            }
            CandidatePacState::DecideAgree { label, .. } => {
                let result = if response == Value::Bot {
                    Value::Bot
                } else {
                    response
                };
                AccessStep::Continue(CandidatePacState::DecideClearV {
                    label: *label,
                    result,
                })
            }
            CandidatePacState::DecideClearV { result, .. } => {
                AccessStep::Continue(CandidatePacState::DecideClearL { result: *result })
            }
            CandidatePacState::DecideClearL { result } => AccessStep::Return(*result),
        }
    }
}

/// Candidate consensus from **PAC objects alone** (no distinguished
/// process): every process loops `PROPOSE(v, label)` / `DECIDE(label)` like
/// Algorithm 2's non-distinguished processes, hoping some decide returns a
/// value.
///
/// Theorem 5.2 with `m = 1` implies n-PAC objects plus registers cannot
/// solve consensus even among **two** processes — the PAC family sits at
/// level 1 of the hierarchy despite simulating the n-DAC object. This
/// candidate is the natural attempt, and the adversary refutes it with a
/// non-termination certificate: two retry loops can starve each other
/// forever (no process may abort, so nobody ever exits the loop).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PacRetryConsensus {
    inputs: Vec<Value>,
    pac: ObjId,
}

/// Local state of [`PacRetryConsensus`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacRetryPhase {
    /// About to propose.
    Proposing,
    /// About to decide.
    Deciding,
}

impl PacRetryConsensus {
    /// Creates the candidate; `pac` must hold an n-PAC with
    /// `n >= inputs.len()`.
    #[must_use]
    pub fn new(inputs: Vec<Value>, pac: ObjId) -> Self {
        PacRetryConsensus { inputs, pac }
    }
}

impl Protocol for PacRetryConsensus {
    type LocalState = PacRetryPhase;

    fn num_processes(&self) -> usize {
        self.inputs.len()
    }

    fn init(&self, _pid: Pid) -> PacRetryPhase {
        PacRetryPhase::Proposing
    }

    fn pending_op(&self, pid: Pid, state: &PacRetryPhase) -> (ObjId, Op) {
        let label = lbsa_core::Label::new(pid.index() + 1).expect("pid + 1 >= 1");
        match state {
            PacRetryPhase::Proposing => (self.pac, Op::ProposePac(self.inputs[pid.index()], label)),
            PacRetryPhase::Deciding => (self.pac, Op::DecidePac(label)),
        }
    }

    fn on_response(
        &self,
        _pid: Pid,
        state: &PacRetryPhase,
        response: Value,
    ) -> Step<PacRetryPhase> {
        match state {
            PacRetryPhase::Proposing => Step::Continue(PacRetryPhase::Deciding),
            PacRetryPhase::Deciding => {
                if response == Value::Bot {
                    Step::Continue(PacRetryPhase::Proposing)
                } else {
                    Step::Decide(response)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dac::DacFromPac;
    use lbsa_core::value::int;
    use lbsa_core::AnyObject;
    use lbsa_explorer::adversary::{find_nontermination, verify_witness};
    use lbsa_explorer::checker::{check_consensus, check_dac, DacInstance, Violation};
    use lbsa_explorer::{Explorer, Limits};
    use lbsa_runtime::derived::DerivedProtocol;

    #[test]
    fn wait_for_winner_works_within_budget() {
        // Control: with n processes on an n-consensus object the candidate
        // is correct — the machinery must NOT refute it.
        let inputs = vec![int(0), int(1)];
        let p = WaitForWinner::new(inputs.clone());
        let objects = vec![AnyObject::consensus(2).unwrap(), AnyObject::register()];
        let ex = Explorer::new(&p, &objects);
        check_consensus(&ex, &inputs, Limits::default())
            .unwrap_or_else(|v| panic!("control experiment failed: {v}"));
    }

    #[test]
    fn theorem_4_2_wait_for_winner_refuted_by_nontermination() {
        // n + 1 = 3 processes on a 2-consensus object: the adversary finds a
        // cycle (the ⊥-receiver spins while the winners are starved).
        let inputs = vec![int(0), int(1), int(1)];
        let p = WaitForWinner::new(inputs.clone());
        let objects = vec![AnyObject::consensus(2).unwrap(), AnyObject::register()];
        let ex = Explorer::new(&p, &objects);
        let err = check_consensus(&ex, &inputs, Limits::default()).unwrap_err();
        assert!(matches!(err, Violation::NonTermination(_)), "{err}");
        // And the certificate replays.
        let g = ex.exploration().run().unwrap();
        let w = find_nontermination(&g).unwrap();
        assert!(verify_witness(&g, &w));
    }

    #[test]
    fn theorem_4_2_sa_then_consensus_refuted_by_agreement() {
        // 3 processes, 2-consensus + 2-SA: the checker finds an execution
        // with two distinct decisions.
        let inputs = vec![int(0), int(1), int(1)];
        let p = SaThenConsensus::new(inputs.clone());
        let objects = vec![AnyObject::strong_sa(), AnyObject::consensus(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let err = check_consensus(&ex, &inputs, Limits::default()).unwrap_err();
        assert!(matches!(err, Violation::Agreement { .. }), "{err}");
    }

    #[test]
    fn theorem_4_2_dac_wait_for_winner_refuted() {
        // The DAC variant: some non-distinguished process can end up
        // spinning forever even solo — Termination (b) fails.
        let inputs = vec![int(1), int(0), int(0)];
        let p = DacWaitForWinner::new(inputs.clone(), Pid(0));
        let objects = vec![AnyObject::consensus(2).unwrap(), AnyObject::register()];
        let ex = Explorer::new(&p, &objects);
        let instance = DacInstance {
            distinguished: Pid(0),
            inputs,
        };
        let err = check_dac(&ex, &instance, Limits::default(), 12).unwrap_err();
        assert!(
            matches!(
                err,
                Violation::SoloNonTermination { .. } | Violation::NonTermination(_)
            ),
            "{err}"
        );
    }

    fn refute_candidate_pac(val_agreement: ValAgreement, objects: Vec<AnyObject>) -> Violation {
        // Run Algorithm 2 for 3-DAC over the candidate (3)-PAC front-end.
        // If the candidate implementation were correct, Theorem 4.1 says the
        // check would pass; the returned violation refutes it.
        let inputs = vec![int(1), int(0), int(0)];
        let inner = DacFromPac::new(inputs.clone(), Pid(0), ObjId(0)).unwrap();
        let procedure = CandidatePacProcedure::new(3, val_agreement);
        let frontends = vec![CandidatePacProcedure::frontend(
            ObjId(0),
            ObjId(1),
            vec![ObjId(2), ObjId(3), ObjId(4)],
        )];
        let derived = DerivedProtocol::new(&inner, &procedure, frontends);
        let ex = Explorer::new(&derived, &objects);
        let instance = DacInstance {
            distinguished: Pid(0),
            inputs,
        };
        check_dac(&ex, &instance, Limits::default(), 60)
            .expect_err("the candidate PAC implementation must be refuted")
    }

    fn registers(n: usize) -> Vec<AnyObject> {
        (0..n).map(|_| AnyObject::register()).collect()
    }

    #[test]
    fn theorem_4_3_candidate_pac_from_consensus_refuted() {
        let mut objects = vec![AnyObject::consensus(2).unwrap()];
        objects.extend(registers(4));
        let v = refute_candidate_pac(ValAgreement::ConsensusObject, objects);
        assert!(
            matches!(
                v,
                Violation::SoloNonTermination { .. } | Violation::NonTermination(_)
            ),
            "expected a termination failure from port exhaustion, got {v}"
        );
    }

    #[test]
    fn theorem_6_5_candidate_pac_from_o_prime_level_1_refuted() {
        let mut objects = vec![AnyObject::o_prime_n(2, 2).unwrap()];
        objects.extend(registers(4));
        let v = refute_candidate_pac(ValAgreement::PowerLevel(1), objects);
        assert!(
            matches!(
                v,
                Violation::SoloNonTermination { .. } | Violation::NonTermination(_)
            ),
            "expected a termination failure from port exhaustion, got {v}"
        );
    }

    #[test]
    fn theorem_6_5_candidate_pac_from_o_prime_level_2_refuted() {
        let mut objects = vec![AnyObject::o_prime_n(2, 2).unwrap()];
        objects.extend(registers(4));
        let v = refute_candidate_pac(ValAgreement::PowerLevel(2), objects);
        assert!(
            matches!(
                v,
                Violation::Agreement { .. }
                    | Violation::SoloNonTermination { .. }
                    | Violation::NonTermination(_)
            ),
            "expected an agreement or termination failure, got {v}"
        );
    }

    #[test]
    fn theorem_5_2_m1_pac_alone_cannot_solve_2_consensus() {
        // The m = 1 shadow of Theorem 5.2: PAC objects (of ANY arity) plus
        // registers sit at level 1. The natural retry candidate is refuted
        // by a non-termination certificate for 2 processes...
        let inputs = vec![int(1), int(0)];
        let p = PacRetryConsensus::new(inputs.clone(), ObjId(0));
        let objects = vec![AnyObject::pac(4).unwrap()];
        let ex = Explorer::new(&p, &objects);
        let err = check_consensus(&ex, &inputs, Limits::default()).unwrap_err();
        assert!(matches!(err, Violation::NonTermination(_)), "{err}");

        // ...while a single process succeeds (level >= 1): solo, the pair
        // is always clean.
        let p = PacRetryConsensus::new(vec![int(1)], ObjId(0));
        let objects = vec![AnyObject::pac(4).unwrap()];
        let ex = Explorer::new(&p, &objects);
        check_consensus(&ex, &[int(1)], Limits::default())
            .unwrap_or_else(|v| panic!("solo PAC consensus must work: {v}"));
    }
}
