//! **Commit–adopt** from registers: the classic register-only agreement
//! primitive (Gafni's two-phase construction), in the lineage of the
//! Borowsky–Gafni simulation the paper builds on \[2, 6\].
//!
//! Commit–adopt is the strongest agreement-flavoured object implementable
//! from registers alone — a useful calibration point *below* everything in
//! the paper's hierarchy. Each of `n` processes proposes a value and
//! outputs a graded value `(grade, v)` with `grade ∈ {commit, adopt}`:
//!
//! * **Validity** — the output value was proposed by someone;
//! * **Convergence** — if all proposals are `v`, everyone outputs
//!   `(commit, v)`;
//! * **Agreement** — if anyone outputs `(commit, v)`, every output carries
//!   the value `v`;
//! * **Wait-freedom** — `2n + 2` register steps, unconditionally.
//!
//! Like the paper's n-DAC object (and unlike consensus), commit–adopt is a
//! *concurrency-sensitive* task: concurrent proposals of different values
//! may all merely adopt, which no linearizable sequential specification can
//! express — so, exactly as with the DAC problem, the experiments verify
//! its four properties over every execution instead of checking
//! linearizability.
//!
//! Outputs are encoded into the single [`Value`] channel as
//! `Int(2·v + grade)` (grade bit `1` = commit); see [`GradedValue`].

use lbsa_core::{ObjId, Op, Pid, Value};
use lbsa_runtime::process::{Protocol, Step};

/// A decoded commit–adopt output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GradedValue {
    /// `true` = commit, `false` = adopt.
    pub commit: bool,
    /// The carried value (a non-negative application integer).
    pub value: i64,
}

impl GradedValue {
    /// Encodes into the single-value channel: `Int(2·value + commit)`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative (the encoding needs the sign bit free).
    #[must_use]
    pub fn encode(self) -> Value {
        assert!(
            self.value >= 0,
            "commit-adopt encoding requires non-negative values"
        );
        Value::Int(2 * self.value + i64::from(self.commit))
    }

    /// Decodes an encoded output.
    ///
    /// Returns `None` if `v` is not a non-negative integer.
    #[must_use]
    pub fn decode(v: Value) -> Option<GradedValue> {
        match v {
            Value::Int(i) if i >= 0 => Some(GradedValue {
                commit: i % 2 == 1,
                value: i / 2,
            }),
            _ => None,
        }
    }
}

/// Phase of the two-round commit–adopt protocol.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CaPhase {
    /// Round 1: writing the proposal to `A[pid]`.
    WriteA,
    /// Round 1: collecting `A[j]`, `j` = the inner index.
    CollectA {
        /// Next index to read.
        next: usize,
        /// Values read so far.
        seen: Vec<Value>,
    },
    /// Round 2: writing the graded proposal to `B[pid]`.
    WriteB {
        /// Whether round 1 was unanimous for our value.
        strong: bool,
    },
    /// Round 2: collecting `B[j]`.
    CollectB {
        /// Next index to read.
        next: usize,
        /// Values read so far (encoded graded values or `nil`).
        seen: Vec<Value>,
    },
}

/// The two-phase commit–adopt protocol over `2n` registers:
/// `ObjId(0..n)` = round-1 array `A`, `ObjId(n..2n)` = round-2 array `B`.
///
/// Each process proposes `inputs[pid]` (a non-negative integer) and decides
/// the encoded graded output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitAdopt {
    inputs: Vec<Value>,
}

impl CommitAdopt {
    /// Creates the protocol.
    ///
    /// # Errors
    ///
    /// Returns an error string if fewer than one input is given or any
    /// input is not a non-negative integer (required by the encoding).
    pub fn new(inputs: Vec<Value>) -> Result<Self, String> {
        if inputs.is_empty() {
            return Err("commit-adopt needs at least one process".into());
        }
        for v in &inputs {
            match v.as_int() {
                Some(i) if i >= 0 => {}
                _ => return Err(format!("input {v} is not a non-negative integer")),
            }
        }
        Ok(CommitAdopt { inputs })
    }

    /// The `2n` registers this protocol needs.
    #[must_use]
    pub fn objects(&self) -> Vec<lbsa_core::AnyObject> {
        (0..2 * self.inputs.len())
            .map(|_| lbsa_core::AnyObject::register())
            .collect()
    }

    fn n(&self) -> usize {
        self.inputs.len()
    }

    fn input(&self, pid: Pid) -> i64 {
        self.inputs[pid.index()]
            .as_int()
            .expect("validated at construction")
    }
}

impl Protocol for CommitAdopt {
    type LocalState = CaPhase;

    fn num_processes(&self) -> usize {
        self.n()
    }

    fn init(&self, _pid: Pid) -> CaPhase {
        CaPhase::WriteA
    }

    fn pending_op(&self, pid: Pid, state: &CaPhase) -> (ObjId, Op) {
        let n = self.n();
        match state {
            CaPhase::WriteA => (ObjId(pid.index()), Op::Write(self.inputs[pid.index()])),
            CaPhase::CollectA { next, .. } => (ObjId(*next), Op::Read),
            CaPhase::WriteB { strong } => {
                let graded = GradedValue {
                    commit: *strong,
                    value: self.input(pid),
                };
                (ObjId(n + pid.index()), Op::Write(graded.encode()))
            }
            CaPhase::CollectB { next, .. } => (ObjId(n + *next), Op::Read),
        }
    }

    fn on_response(&self, pid: Pid, state: &CaPhase, response: Value) -> Step<CaPhase> {
        let n = self.n();
        match state {
            CaPhase::WriteA => Step::Continue(CaPhase::CollectA {
                next: 0,
                seen: vec![],
            }),
            CaPhase::CollectA { next, seen } => {
                let mut seen = seen.clone();
                seen.push(response);
                if next + 1 < n {
                    return Step::Continue(CaPhase::CollectA {
                        next: next + 1,
                        seen,
                    });
                }
                // Round 1 verdict: unanimous for our value?
                let mine = self.inputs[pid.index()];
                let strong = seen.iter().all(|v| v.is_nil() || *v == mine);
                Step::Continue(CaPhase::WriteB { strong })
            }
            CaPhase::WriteB { .. } => Step::Continue(CaPhase::CollectB {
                next: 0,
                seen: vec![],
            }),
            CaPhase::CollectB { next, seen } => {
                let mut seen = seen.clone();
                seen.push(response);
                if next + 1 < n {
                    return Step::Continue(CaPhase::CollectB {
                        next: next + 1,
                        seen,
                    });
                }
                // Round 2 verdict.
                let graded: Vec<GradedValue> = seen
                    .iter()
                    .filter_map(|v| GradedValue::decode(*v))
                    .collect();
                let mine = self.input(pid);
                let all_strong_mine =
                    graded.iter().all(|g| g.commit && g.value == mine) && !graded.is_empty();
                let output = if all_strong_mine {
                    GradedValue {
                        commit: true,
                        value: mine,
                    }
                } else if let Some(strong) = graded.iter().find(|g| g.commit) {
                    GradedValue {
                        commit: false,
                        value: strong.value,
                    }
                } else {
                    GradedValue {
                        commit: false,
                        value: mine,
                    }
                };
                Step::Decide(output.encode())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::value::int;
    use lbsa_explorer::Explorer;

    fn decode_outputs(config: &lbsa_explorer::Configuration<CaPhase>) -> Vec<GradedValue> {
        config
            .procs
            .iter()
            .filter_map(|s| s.decision())
            .map(|v| GradedValue::decode(v).expect("outputs are encoded graded values"))
            .collect()
    }

    /// Exhaustively checks the four commit–adopt properties for the given
    /// inputs.
    fn check_exhaustively(inputs: Vec<Value>) {
        let proposed: Vec<i64> = inputs.iter().map(|v| v.as_int().unwrap()).collect();
        let all_equal = proposed.windows(2).all(|w| w[0] == w[1]);
        let p = CommitAdopt::new(inputs).unwrap();
        let objects = p.objects();
        let g = Explorer::new(&p, &objects)
            .exploration()
            .max_configs(2_000_000)
            .run()
            .unwrap();
        assert!(g.complete, "commit-adopt must be finite-state");
        assert!(!g.has_cycle(), "commit-adopt is wait-free: no cycles");
        for idx in 0..g.configs.len() {
            let outputs = decode_outputs(&g.configs[idx]);
            // Validity.
            for o in &outputs {
                assert!(proposed.contains(&o.value), "validity violated: {o:?}");
            }
            // Agreement: a commit pins every value.
            if let Some(committed) = outputs.iter().find(|o| o.commit) {
                for o in &outputs {
                    assert_eq!(
                        o.value, committed.value,
                        "agreement violated in config {idx}: {outputs:?}"
                    );
                }
            }
        }
        // Convergence + termination at the leaves.
        for t in g.terminal_indices() {
            let config = &g.configs[t];
            assert!(config.all_decided(), "wait-freedom: every process outputs");
            let outputs = decode_outputs(config);
            if all_equal {
                for o in &outputs {
                    assert!(
                        o.commit && o.value == proposed[0],
                        "convergence violated: {outputs:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn two_processes_mixed_inputs() {
        check_exhaustively(vec![int(0), int(1)]);
    }

    #[test]
    fn two_processes_equal_inputs_converge() {
        check_exhaustively(vec![int(3), int(3)]);
    }

    #[test]
    fn three_processes_mixed_inputs() {
        check_exhaustively(vec![int(0), int(1), int(0)]);
    }

    #[test]
    fn three_processes_equal_inputs_converge() {
        check_exhaustively(vec![int(2), int(2), int(2)]);
    }

    #[test]
    fn solo_run_commits_own_value() {
        use lbsa_runtime::outcome::FirstOutcome;
        use lbsa_runtime::scheduler::Solo;
        use lbsa_runtime::system::System;
        let p = CommitAdopt::new(vec![int(4), int(9)]).unwrap();
        let objects = p.objects();
        let mut sys = System::new(&p, &objects).unwrap();
        sys.run(&mut Solo::new(Pid(0)), &mut FirstOutcome, 100)
            .unwrap();
        let out = GradedValue::decode(sys.decision(Pid(0)).unwrap()).unwrap();
        assert!(out.commit, "an uncontended propose must commit");
        assert_eq!(out.value, 4);
    }

    #[test]
    fn adopt_happens_under_contention() {
        // Some interleaving of mixed inputs must produce at least one adopt
        // (both committing different values would violate agreement, and
        // commit-adopt from registers cannot always commit — that would be
        // register consensus).
        let p = CommitAdopt::new(vec![int(0), int(1)]).unwrap();
        let objects = p.objects();
        let g = Explorer::new(&p, &objects)
            .exploration()
            .max_configs(2_000_000)
            .run()
            .unwrap();
        let mut saw_adopt = false;
        for t in g.terminal_indices() {
            for v in g.configs[t].procs.iter().filter_map(|s| s.decision()) {
                if !GradedValue::decode(v).unwrap().commit {
                    saw_adopt = true;
                }
            }
        }
        assert!(saw_adopt, "contention must sometimes force adoption");
    }

    #[test]
    fn encoding_roundtrip() {
        for commit in [false, true] {
            for value in [0i64, 1, 7, 100] {
                let g = GradedValue { commit, value };
                assert_eq!(GradedValue::decode(g.encode()), Some(g));
            }
        }
        assert_eq!(GradedValue::decode(Value::Nil), None);
        assert_eq!(GradedValue::decode(Value::Bot), None);
        assert_eq!(GradedValue::decode(int(-3)), None);
    }

    #[test]
    fn constructor_validation() {
        assert!(CommitAdopt::new(vec![]).is_err());
        assert!(CommitAdopt::new(vec![int(-1)]).is_err());
        assert!(CommitAdopt::new(vec![Value::Bot]).is_err());
        assert!(CommitAdopt::new(vec![int(0), int(5)]).is_ok());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn encoding_rejects_negative_values() {
        let _ = GradedValue {
            commit: true,
            value: -1,
        }
        .encode();
    }
}
