//! A consensus-based **universal construction** (after Herlihy \[10\]).
//!
//! Herlihy's theorem — cited throughout the paper as the upper-bound side of
//! the consensus hierarchy — states that consensus objects for `n` processes
//! plus registers implement *any* object shared by `n` processes. This
//! module is that construction, executable: [`UniversalProcedure`] is an
//! [`AccessProcedure`] that implements an arbitrary **deterministic**
//! [`AnyObject`] specification for `n` processes over a pool of `n`-consensus
//! objects and announcement registers.
//!
//! ## How it works
//!
//! Operations are agreed into a log, one consensus object per log slot.
//! To apply an operation, a process scans the log from slot 0, replaying
//! winners into a local copy of the simulated state; at the first
//! unclaimed slot it proposes its own (uniquely encoded) operation. Every
//! process that learns a slot's winner *announces* it in the slot's
//! register before moving on, so:
//!
//! * each process proposes at most once per slot — the `n`-consensus budget
//!   is never exceeded, and
//! * re-scans adopt announced winners without touching the consensus
//!   objects at all.
//!
//! Proposals are encoded as `((seq · |ops|) + op) · n + pid`, where `seq`
//! counts the proposer's previously committed operations, making every
//! in-flight proposal globally unique.
//!
//! The log pool is finite (`capacity` slots); an operation that runs off the
//! end returns `⊥`. This bounds the construction for exhaustive exploration;
//! size the capacity to the workload.

use lbsa_core::spec::ObjectSpec;
use lbsa_core::{AnyObject, AnyState, ObjId, Op, Pid, Value};
use lbsa_runtime::derived::{AccessProcedure, AccessStep, FrontEnd};

/// Phase of one in-flight universal-construction access.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Phase {
    /// Reading `announce[slot]`.
    ReadAnnounce,
    /// Proposing our encoding to `consensus[slot]`.
    Propose,
    /// Announcing the winner of `slot` before adopting it.
    Announce(i64),
}

/// Bookkeeping state of one access (the scan position and the replayed
/// simulated state).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct UniversalAccess {
    op_index: usize,
    slot: usize,
    my_wins: usize,
    sim_state: AnyState,
    phase: Phase,
}

/// The universal construction: implements `spec` for `n` processes from
/// `capacity` `n`-consensus objects (base `0..capacity`) and `capacity`
/// announcement registers (base `capacity..2·capacity`).
///
/// # Examples
///
/// ```
/// use lbsa_protocols::universal::UniversalProcedure;
/// use lbsa_core::{AnyObject, Op, Value};
///
/// // A register for 2 processes, simulated from 2-consensus + registers.
/// let ops = vec![Op::Read, Op::Write(Value::Int(1)), Op::Write(Value::Int(2))];
/// let uni = UniversalProcedure::new(AnyObject::register(), ops, 2, 8).unwrap();
/// let base = uni.base_objects().unwrap();
/// assert_eq!(base.len(), 16); // 8 consensus + 8 announce registers
/// ```
#[derive(Clone, Debug)]
pub struct UniversalProcedure {
    spec: AnyObject,
    ops: Vec<Op>,
    n: usize,
    capacity: usize,
}

impl UniversalProcedure {
    /// Creates the construction.
    ///
    /// `ops` is the finite operation table of the simulated object: every
    /// operation a process will ever apply must appear in it (proposals
    /// carry table indices, not operations).
    ///
    /// # Errors
    ///
    /// Returns an error string if `spec` is nondeterministic (replay would
    /// diverge), `ops` is empty, or `n`/`capacity` is zero.
    pub fn new(spec: AnyObject, ops: Vec<Op>, n: usize, capacity: usize) -> Result<Self, String> {
        if !spec.is_deterministic() {
            return Err(format!(
                "the universal construction requires a deterministic specification; {} is nondeterministic",
                spec.name()
            ));
        }
        if ops.is_empty() {
            return Err("the operation table must not be empty".to_string());
        }
        if n == 0 {
            return Err("n must be at least 1".to_string());
        }
        if capacity == 0 {
            return Err("capacity must be at least 1".to_string());
        }
        Ok(UniversalProcedure {
            spec,
            ops,
            n,
            capacity,
        })
    }

    /// The simulated object's specification.
    #[must_use]
    pub fn spec(&self) -> &AnyObject {
        &self.spec
    }

    /// The log capacity (maximum operations the instance can absorb).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The base objects this construction needs, in procedure index order:
    /// `capacity` `n`-consensus objects, then `capacity` registers.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from [`AnyObject::consensus`].
    pub fn base_objects(&self) -> Result<Vec<AnyObject>, lbsa_core::SpecError> {
        let mut v = Vec::with_capacity(2 * self.capacity);
        for _ in 0..self.capacity {
            v.push(AnyObject::consensus(self.n)?);
        }
        for _ in 0..self.capacity {
            v.push(AnyObject::register());
        }
        Ok(v)
    }

    /// The front-end layout when the base objects occupy
    /// `ObjId(first)..ObjId(first + 2·capacity)` in the system.
    #[must_use]
    pub fn frontend(&self, first: usize) -> FrontEnd {
        FrontEnd::Derived {
            base: (first..first + 2 * self.capacity).map(ObjId).collect(),
        }
    }

    fn encode(&self, seq: usize, op_index: usize, pid: Pid) -> i64 {
        (((seq * self.ops.len() + op_index) * self.n) + pid.index()) as i64
    }

    fn decode(&self, enc: i64) -> (usize, usize, usize) {
        let enc = usize::try_from(enc).expect("encodings are non-negative");
        let pid = enc % self.n;
        let rest = enc / self.n;
        (rest / self.ops.len(), rest % self.ops.len(), pid)
    }

    /// Adopt the winner `enc` of the current slot: replay it into the
    /// simulated state and either finish (it was our operation) or advance.
    ///
    /// `proposed` records whether *this access* proposed at the current
    /// slot (i.e. we arrived here through [`Phase::Announce`]). The slot's
    /// winner is our current operation exactly when we proposed it here and
    /// it won: our own entries committed by *earlier* accesses carry the
    /// same `(pid, seq)` as a fresh access that has passed the same number
    /// of own wins, so matching on the encoding alone would adopt a stale
    /// response. Earlier accesses always announce their win before
    /// returning, so a later access re-adopts them through
    /// [`Phase::ReadAnnounce`] (with `proposed == false`) and never
    /// proposes over them.
    fn adopt(
        &self,
        pid: Pid,
        st: &UniversalAccess,
        enc: i64,
        proposed: bool,
    ) -> AccessStep<UniversalAccess> {
        let (_, op_w, pid_w) = self.decode(enc);
        let mut sim_state = st.sim_state.clone();
        let response = self
            .spec
            .outcomes(&sim_state, &self.ops[op_w])
            .expect("table ops are valid for the spec")
            .into_single();
        sim_state = response.1;
        let response = response.0;
        if proposed && enc == self.encode(st.my_wins, st.op_index, pid) {
            return AccessStep::Return(response);
        }
        let my_wins = if pid_w == pid.index() {
            st.my_wins + 1
        } else {
            st.my_wins
        };
        let slot = st.slot + 1;
        if slot >= self.capacity {
            return AccessStep::Return(Value::Bot);
        }
        AccessStep::Continue(UniversalAccess {
            op_index: st.op_index,
            slot,
            my_wins,
            sim_state,
            phase: Phase::ReadAnnounce,
        })
    }
}

impl AccessProcedure for UniversalProcedure {
    type ProcState = UniversalAccess;

    fn begin(&self, _pid: Pid, _front: ObjId, op: &Op) -> UniversalAccess {
        let op_index = self
            .ops
            .iter()
            .position(|o| o == op)
            .unwrap_or_else(|| panic!("operation {op} is not in the universal op table"));
        UniversalAccess {
            op_index,
            slot: 0,
            my_wins: 0,
            sim_state: self.spec.initial_state(),
            phase: Phase::ReadAnnounce,
        }
    }

    fn pending(&self, pid: Pid, st: &UniversalAccess) -> (usize, Op) {
        match &st.phase {
            Phase::ReadAnnounce => (self.capacity + st.slot, Op::Read),
            Phase::Propose => {
                let enc = self.encode(st.my_wins, st.op_index, pid);
                (st.slot, Op::Propose(Value::Int(enc)))
            }
            Phase::Announce(enc) => (self.capacity + st.slot, Op::Write(Value::Int(*enc))),
        }
    }

    fn resume(
        &self,
        pid: Pid,
        st: &UniversalAccess,
        response: Value,
    ) -> AccessStep<UniversalAccess> {
        match &st.phase {
            Phase::ReadAnnounce => match response {
                Value::Int(enc) => self.adopt(pid, st, enc, false),
                _ => AccessStep::Continue(UniversalAccess {
                    phase: Phase::Propose,
                    ..st.clone()
                }),
            },
            Phase::Propose => match response {
                Value::Int(enc) => AccessStep::Continue(UniversalAccess {
                    phase: Phase::Announce(enc),
                    ..st.clone()
                }),
                // ⊥ from the consensus object: over-budget. Unreachable by
                // the announce-before-advance discipline, but handled: fall
                // back to re-reading the announcement.
                _ => AccessStep::Continue(UniversalAccess {
                    phase: Phase::ReadAnnounce,
                    ..st.clone()
                }),
            },
            Phase::Announce(enc) => self.adopt(pid, st, *enc, true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::ids::Label;
    use lbsa_core::value::int;
    use lbsa_explorer::linearizability::check_linearizable;
    use lbsa_explorer::Explorer;
    use lbsa_runtime::derived::{record_frontend_history, DerivedProtocol};
    use lbsa_runtime::outcome::{FirstOutcome, RandomOutcome};
    use lbsa_runtime::process::{Protocol, Step};
    use lbsa_runtime::scheduler::{RandomScheduler, RoundRobin};
    use lbsa_runtime::system::System;

    /// p0 writes 1 then 2 to the simulated register; p1 reads twice and
    /// decides its second read.
    #[derive(Debug)]
    struct RegisterWorkload;

    impl Protocol for RegisterWorkload {
        type LocalState = u8;
        fn num_processes(&self) -> usize {
            2
        }
        fn init(&self, _pid: Pid) -> u8 {
            0
        }
        fn pending_op(&self, pid: Pid, s: &u8) -> (ObjId, Op) {
            match (pid.index(), s) {
                (0, 0) => (ObjId(0), Op::Write(int(1))),
                (0, _) => (ObjId(0), Op::Write(int(2))),
                (_, _) => (ObjId(0), Op::Read),
            }
        }
        fn on_response(&self, pid: Pid, s: &u8, resp: Value) -> Step<u8> {
            match (pid.index(), s) {
                (0, 0) => Step::Continue(1),
                (0, _) => Step::Halt,
                (_, 0) => Step::Continue(1),
                (_, _) => Step::Decide(resp),
            }
        }
    }

    fn register_table() -> Vec<Op> {
        vec![Op::Read, Op::Write(int(1)), Op::Write(int(2))]
    }

    #[test]
    fn constructor_validation() {
        assert!(UniversalProcedure::new(AnyObject::strong_sa(), register_table(), 2, 4).is_err());
        assert!(UniversalProcedure::new(AnyObject::register(), vec![], 2, 4).is_err());
        assert!(UniversalProcedure::new(AnyObject::register(), register_table(), 0, 4).is_err());
        assert!(UniversalProcedure::new(AnyObject::register(), register_table(), 2, 0).is_err());
        assert!(UniversalProcedure::new(AnyObject::register(), register_table(), 2, 4).is_ok());
    }

    #[test]
    fn encoding_roundtrip() {
        let uni = UniversalProcedure::new(AnyObject::register(), register_table(), 3, 4).unwrap();
        for seq in 0..4 {
            for op in 0..3 {
                for pid in 0..3 {
                    let enc = uni.encode(seq, op, Pid(pid));
                    assert_eq!(uni.decode(enc), (seq, op, pid));
                }
            }
        }
    }

    #[test]
    fn simulated_register_behaves_like_a_register() {
        let uni = UniversalProcedure::new(AnyObject::register(), register_table(), 2, 8).unwrap();
        let inner = RegisterWorkload;
        let derived = DerivedProtocol::new(&inner, &uni, vec![uni.frontend(0)]);
        let objects = uni.base_objects().unwrap();
        let mut sys = System::new(&derived, &objects).unwrap();
        let res = sys
            .run(&mut RoundRobin::new(), &mut FirstOutcome, 10_000)
            .unwrap();
        assert!(res.is_quiescent());
        // p1's second read must be one of nil/1/2 — and under round-robin
        // specifically a real interleaving value, not garbage.
        let d = sys.decision(Pid(1)).unwrap();
        assert!(
            [Value::Nil, int(1), int(2)].contains(&d),
            "simulated register returned {d}"
        );
    }

    #[test]
    fn all_interleavings_of_the_simulated_register_are_linearizable() {
        // Exhaustively explore the derived system; in every terminal
        // configuration, p1's decision must be a value a real register could
        // have returned at that point in SOME interleaving: nil, 1, or 2.
        let uni = UniversalProcedure::new(AnyObject::register(), register_table(), 2, 8).unwrap();
        let inner = RegisterWorkload;
        let derived = DerivedProtocol::new(&inner, &uni, vec![uni.frontend(0)]);
        let objects = uni.base_objects().unwrap();
        let g = Explorer::new(&derived, &objects)
            .exploration()
            .run()
            .unwrap();
        assert!(g.complete, "universal-register state space must be finite");
        for t in g.terminal_indices() {
            if let Some(d) = g.configs[t].procs[1].decision() {
                assert!([Value::Nil, int(1), int(2)].contains(&d));
            }
        }
    }

    #[test]
    fn frontend_histories_linearize_against_the_simulated_spec() {
        let uni = UniversalProcedure::new(AnyObject::register(), register_table(), 2, 8).unwrap();
        let inner = RegisterWorkload;
        let spec_objects = vec![AnyObject::register()];
        for seed in 0..15u64 {
            let derived = DerivedProtocol::new(&inner, &uni, vec![uni.frontend(0)]);
            let objects = uni.base_objects().unwrap();
            let (history, _) = record_frontend_history(
                &derived,
                &objects,
                &mut RandomScheduler::seeded(seed),
                &mut RandomOutcome::seeded(seed),
                10_000,
            )
            .unwrap();
            check_linearizable(&history, &spec_objects).unwrap_or_else(|e| {
                panic!("universal register not linearizable (seed {seed}): {e}\n{history:#?}")
            });
        }
    }

    /// Workload on a simulated 2-PAC: each process runs one propose/decide
    /// pair on its own label.
    #[derive(Debug)]
    struct PacWorkload;

    impl Protocol for PacWorkload {
        type LocalState = u8;
        fn num_processes(&self) -> usize {
            2
        }
        fn init(&self, _pid: Pid) -> u8 {
            0
        }
        fn pending_op(&self, pid: Pid, s: &u8) -> (ObjId, Op) {
            let label = Label::new(pid.index() + 1).unwrap();
            match s {
                0 => (
                    ObjId(0),
                    Op::ProposePac(int(10 + pid.index() as i64), label),
                ),
                _ => (ObjId(0), Op::DecidePac(label)),
            }
        }
        fn on_response(&self, _pid: Pid, s: &u8, resp: Value) -> Step<u8> {
            match s {
                0 => Step::Continue(1),
                _ => Step::Decide(resp),
            }
        }
    }

    fn pac_table() -> Vec<Op> {
        let l1 = Label::new(1).unwrap();
        let l2 = Label::new(2).unwrap();
        vec![
            Op::ProposePac(int(10), l1),
            Op::ProposePac(int(11), l2),
            Op::DecidePac(l1),
            Op::DecidePac(l2),
        ]
    }

    #[test]
    fn herlihy_theorem_simulated_pac_matches_native_pac() {
        // The paper's hierarchy upper bound in action: a PAC object — the
        // paper's own exotic object — simulated from consensus + registers
        // for 2 processes. The set of terminal decision vectors must equal
        // the native 2-PAC's.
        let inner = PacWorkload;

        let native_objects = vec![AnyObject::pac(2).unwrap()];
        let native_graph = Explorer::new(&inner, &native_objects)
            .exploration()
            .run()
            .unwrap();
        let native: std::collections::BTreeSet<Vec<Option<Value>>> = native_graph
            .terminal_indices()
            .map(|t| native_graph.configs[t].decisions())
            .collect();

        let uni = UniversalProcedure::new(AnyObject::pac(2).unwrap(), pac_table(), 2, 8).unwrap();
        let derived = DerivedProtocol::new(&inner, &uni, vec![uni.frontend(0)]);
        let objects = uni.base_objects().unwrap();
        let derived_graph = Explorer::new(&derived, &objects)
            .exploration()
            .run()
            .unwrap();
        assert!(derived_graph.complete);
        let simulated: std::collections::BTreeSet<Vec<Option<Value>>> = derived_graph
            .terminal_indices()
            .map(|t| derived_graph.configs[t].decisions())
            .collect();

        assert_eq!(
            native, simulated,
            "simulated 2-PAC must realize exactly the native outcomes"
        );
    }

    #[test]
    fn capacity_exhaustion_returns_bot() {
        // Capacity 1: the second operation runs off the log.
        let uni = UniversalProcedure::new(AnyObject::register(), register_table(), 2, 1).unwrap();
        let inner = RegisterWorkload;
        let derived = DerivedProtocol::new(&inner, &uni, vec![uni.frontend(0)]);
        let objects = uni.base_objects().unwrap();
        let mut sys = System::new(&derived, &objects).unwrap();
        sys.run(&mut RoundRobin::new(), &mut FirstOutcome, 10_000)
            .unwrap();
        // p1's two reads: at most one fits in the log; its decision is ⊥.
        assert_eq!(sys.decision(Pid(1)), Some(Value::Bot));
    }

    #[test]
    #[should_panic(expected = "not in the universal op table")]
    fn unknown_op_panics() {
        let uni = UniversalProcedure::new(AnyObject::register(), register_table(), 2, 4).unwrap();
        let _ = uni.begin(Pid(0), ObjId(0), &Op::Write(int(99)));
    }
}
