//! The **n-DAC problem** and **Algorithm 2** (Section 4 of the paper).
//!
//! The n-DAC problem (Hadzilacos & Toueg, PODC 2013): `n >= 2` processes
//! with binary inputs must decide a common value; one distinguished process
//! `p` may *abort* instead of deciding. The required properties —
//! Agreement, Validity, Termination (a)/(b), Nontriviality — are checked
//! exhaustively by [`lbsa_explorer::checker::check_dac`].
//!
//! [`DacFromPac`] is Algorithm 2 verbatim: the distinguished process
//! performs one `PROPOSE(v_p, p)` / `DECIDE(p)` pair on a single n-PAC
//! object `D` and aborts on `⊥`; every other process retries its pair until
//! its decide returns a non-`⊥` value. Theorem 4.1: this solves n-DAC.

use lbsa_core::pac::PacState;
use lbsa_core::{AnyState, Label, ObjId, Op, Pid, Value};
use lbsa_explorer::checker::DacInstance;
use lbsa_runtime::process::{classes_by_input, Protocol, Step, Symmetry};

/// Local state of a process running Algorithm 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DacPhase {
    /// About to perform `PROPOSE(v, label)` (line 1 / line 7).
    Proposing,
    /// About to perform `DECIDE(label)` (line 2 / line 8).
    Deciding,
}

/// Algorithm 2: solving the n-DAC problem with a single n-PAC object.
///
/// Process `Pid(i)` uses label `i + 1` on the PAC object (the paper numbers
/// processes `1..n`, we number pids from 0).
///
/// # Examples
///
/// ```
/// use lbsa_protocols::dac::DacFromPac;
/// use lbsa_core::{AnyObject, ObjId, Pid, Value};
/// use lbsa_runtime::system::System;
/// use lbsa_runtime::scheduler::RoundRobin;
/// use lbsa_runtime::outcome::FirstOutcome;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let protocol = DacFromPac::new(
///     vec![Value::Int(1), Value::Int(0)],
///     Pid(0),
///     ObjId(0),
/// )?;
/// let objects = vec![AnyObject::pac(2)?];
/// let mut sys = System::new(&protocol, &objects)?;
/// let result = sys.run(&mut RoundRobin::new(), &mut FirstOutcome, 1000)?;
/// // Under round-robin the distinguished process's decide sees concurrency
/// // and p aborts, while the other process retries and decides.
/// assert_eq!(result.aborted, vec![Pid(0)]);
/// assert_eq!(result.distinct_decisions().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DacFromPac {
    inputs: Vec<Value>,
    distinguished: Pid,
    pac: ObjId,
}

impl DacFromPac {
    /// Creates an instance of Algorithm 2.
    ///
    /// `inputs[i]` is the input of `Pid(i)`; `distinguished` is the process
    /// allowed to abort; `pac` is the object id of the n-PAC object `D`
    /// (which must have arity at least `inputs.len()`).
    ///
    /// # Errors
    ///
    /// Returns an error string if fewer than two processes are given or the
    /// distinguished pid is out of range.
    pub fn new(inputs: Vec<Value>, distinguished: Pid, pac: ObjId) -> Result<Self, String> {
        if inputs.len() < 2 {
            return Err(format!(
                "the n-DAC problem requires n >= 2 processes, got {}",
                inputs.len()
            ));
        }
        if distinguished.index() >= inputs.len() {
            return Err(format!(
                "distinguished process {distinguished} out of range for {} processes",
                inputs.len()
            ));
        }
        Ok(DacFromPac {
            inputs,
            distinguished,
            pac,
        })
    }

    /// The distinguished process `p`.
    #[must_use]
    pub fn distinguished(&self) -> Pid {
        self.distinguished
    }

    /// The process inputs.
    #[must_use]
    pub fn inputs(&self) -> &[Value] {
        &self.inputs
    }

    /// The problem instance for [`lbsa_explorer::checker::check_dac`].
    #[must_use]
    pub fn instance(&self) -> DacInstance {
        DacInstance {
            distinguished: self.distinguished,
            inputs: self.inputs.clone(),
        }
    }

    fn label(&self, pid: Pid) -> Label {
        Label::new(pid.index() + 1).expect("pid + 1 >= 1")
    }
}

impl Protocol for DacFromPac {
    type LocalState = DacPhase;

    fn num_processes(&self) -> usize {
        self.inputs.len()
    }

    fn init(&self, _pid: Pid) -> DacPhase {
        DacPhase::Proposing
    }

    fn pending_op(&self, pid: Pid, state: &DacPhase) -> (ObjId, Op) {
        let label = self.label(pid);
        match state {
            DacPhase::Proposing => (self.pac, Op::ProposePac(self.inputs[pid.index()], label)),
            DacPhase::Deciding => (self.pac, Op::DecidePac(label)),
        }
    }

    fn on_response(&self, pid: Pid, state: &DacPhase, response: Value) -> Step<DacPhase> {
        match state {
            DacPhase::Proposing => Step::Continue(DacPhase::Deciding),
            DacPhase::Deciding => {
                if response != Value::Bot {
                    Step::Decide(response)
                } else if pid == self.distinguished {
                    // Line 5: the distinguished process aborts on ⊥.
                    Step::Abort
                } else {
                    // Lines 6-11: everyone else retries.
                    Step::Continue(DacPhase::Proposing)
                }
            }
        }
    }
}

/// Non-distinguished processes with equal inputs are interchangeable: they
/// run identical retry loops, differing only in the PAC port they drive. The
/// distinguished process is alone in its class, as the [`Symmetry`] contract
/// requires for a role that pid-specific predicates (Nontriviality, solo
/// Termination (a)) name explicitly.
impl Symmetry for DacFromPac {
    fn pid_classes(&self) -> Vec<u32> {
        let mut classes = classes_by_input(&self.inputs);
        // Force the distinguished process into a singleton class: no other
        // pid can carry the class label `n` (labels from `classes_by_input`
        // are positions, all `< n`).
        let n = u32::try_from(self.inputs.len()).expect("process count fits in u32");
        classes[self.distinguished.index()] = n;
        classes
    }

    fn permute_object_state(&self, obj: ObjId, state: &AnyState, perm: &[usize]) -> AnyState {
        // Pid `i` drives port `i + 1` of the PAC object (see
        // `DacFromPac::label`), so `V` is pid-indexed and `L` names a pid:
        // both permute along with the processes.
        match state {
            AnyState::Pac(s) if obj == self.pac => {
                // Ports beyond the process count (over-provisioned arity)
                // are driven by no process and stay where they are.
                let mut v = s.v.clone();
                for (i, &val) in s.v.iter().enumerate().take(perm.len()) {
                    v[perm[i]] = val;
                }
                AnyState::Pac(PacState {
                    upset: s.upset,
                    v,
                    l: s.l.map(|i| if i < perm.len() { perm[i] } else { i }),
                    val: s.val,
                })
            }
            other => other.clone(),
        }
    }
}

/// Enumerates all binary input vectors for `n` processes — the initial
/// configurations over which the exhaustive DAC experiments quantify.
#[must_use]
pub fn all_binary_inputs(n: usize) -> Vec<Vec<Value>> {
    (0..(1usize << n))
        .map(|mask| {
            (0..n)
                .map(|i| Value::Int(i64::from(mask >> i & 1 == 1)))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::value::int;
    use lbsa_core::AnyObject;
    use lbsa_explorer::checker::{check_dac, Violation};
    use lbsa_explorer::{Explorer, Limits};
    use lbsa_runtime::outcome::FirstOutcome;
    use lbsa_runtime::scheduler::{RoundRobin, Scripted, Solo};
    use lbsa_runtime::system::System;

    fn pac_objects(n: usize) -> Vec<AnyObject> {
        vec![AnyObject::pac(n).unwrap()]
    }

    #[test]
    fn constructor_validation() {
        assert!(DacFromPac::new(vec![int(0)], Pid(0), ObjId(0)).is_err());
        assert!(DacFromPac::new(vec![int(0), int(1)], Pid(2), ObjId(0)).is_err());
        assert!(DacFromPac::new(vec![int(0), int(1)], Pid(1), ObjId(0)).is_ok());
    }

    #[test]
    fn solo_distinguished_decides_own_input() {
        // Claim 4.2.4's first half: p running solo does not abort and
        // decides its own input.
        let p = DacFromPac::new(vec![int(1), int(0), int(0)], Pid(0), ObjId(0)).unwrap();
        let objects = pac_objects(3);
        let mut sys = System::new(&p, &objects).unwrap();
        sys.run(&mut Solo::new(Pid(0)), &mut FirstOutcome, 100)
            .unwrap();
        assert_eq!(sys.decision(Pid(0)), Some(int(1)));
    }

    #[test]
    fn solo_other_decides_own_input() {
        // Claim 4.2.4's second half: q != p running solo decides its input.
        let p = DacFromPac::new(vec![int(1), int(0), int(0)], Pid(0), ObjId(0)).unwrap();
        let objects = pac_objects(3);
        let mut sys = System::new(&p, &objects).unwrap();
        sys.run(&mut Solo::new(Pid(1)), &mut FirstOutcome, 100)
            .unwrap();
        assert_eq!(sys.decision(Pid(1)), Some(int(0)));
    }

    #[test]
    fn concurrent_run_p_aborts_and_others_agree() {
        let p = DacFromPac::new(vec![int(1), int(0), int(0)], Pid(0), ObjId(0)).unwrap();
        let objects = pac_objects(3);
        let mut sys = System::new(&p, &objects).unwrap();
        // Phase 1: round-robin. All three proposes land before any decide,
        // so every first decide returns ⊥ and p aborts. The two remaining
        // processes then starve each other's retry loops indefinitely —
        // round-robin is exactly the adversarial schedule here, which is WHY
        // the DAC Termination property only speaks about solo runs.
        let res = sys
            .run(&mut RoundRobin::new(), &mut FirstOutcome, 60)
            .unwrap();
        assert_eq!(res.aborted, vec![Pid(0)]);
        assert!(
            res.distinct_decisions().is_empty(),
            "the retry loops starve each other"
        );
        // Phase 2: let q1 run solo — it must decide (Termination (b))…
        sys.run(&mut Solo::new(Pid(1)), &mut FirstOutcome, 100)
            .unwrap();
        let d1 = sys.decision(Pid(1)).expect("q1 decides when run solo");
        // …and then q2 solo must agree.
        sys.run(&mut Solo::new(Pid(2)), &mut FirstOutcome, 100)
            .unwrap();
        assert_eq!(sys.decision(Pid(2)), Some(d1));
        assert_eq!(d1, int(0), "only non-aborted inputs may be decided");
    }

    #[test]
    fn scripted_clean_pair_lets_p_decide() {
        let p = DacFromPac::new(vec![int(1), int(0)], Pid(0), ObjId(0)).unwrap();
        let objects = pac_objects(2);
        let mut sys = System::new(&p, &objects).unwrap();
        // p runs its pair cleanly first, then q.
        let mut sched = Scripted::new([Pid(0), Pid(0), Pid(1), Pid(1)]);
        sys.run(&mut sched, &mut FirstOutcome, 100).unwrap();
        assert_eq!(sys.decision(Pid(0)), Some(int(1)));
        assert_eq!(
            sys.decision(Pid(1)),
            Some(int(1)),
            "q adopts the consensus value"
        );
    }

    #[test]
    fn theorem_4_1_exhaustive_n2() {
        // Theorem 4.1 for n = 2: Algorithm 2 solves 2-DAC on every binary
        // input vector, over every interleaving.
        for inputs in all_binary_inputs(2) {
            let p = DacFromPac::new(inputs, Pid(0), ObjId(0)).unwrap();
            let objects = pac_objects(2);
            let ex = Explorer::new(&p, &objects);
            let stats = check_dac(&ex, &p.instance(), Limits::default(), 8)
                .unwrap_or_else(|v| panic!("2-DAC violated on {:?}: {v}", p.inputs()));
            assert!(stats.configs > 4);
        }
    }

    #[test]
    fn theorem_4_1_exhaustive_n3() {
        for inputs in all_binary_inputs(3) {
            let p = DacFromPac::new(inputs, Pid(1), ObjId(0)).unwrap();
            let objects = pac_objects(3);
            let ex = Explorer::new(&p, &objects);
            check_dac(&ex, &p.instance(), Limits::default(), 10)
                .unwrap_or_else(|v| panic!("3-DAC violated on {:?}: {v}", p.inputs()));
        }
    }

    #[test]
    fn dac_has_nonterminating_schedules_but_passes_dac_termination() {
        // The n-DAC Termination property is weaker than wait-freedom: a
        // non-distinguished process may loop forever when interleaved
        // adversarially. The execution graph therefore HAS cycles — yet
        // check_dac passes, because Termination (a)/(b) only constrain solo
        // runs. This distinction is the crux of why DAC is solvable at all.
        // Two non-distinguished processes are needed for a cycle: they can
        // starve each other's retry loops forever (with a single one, the
        // distinguished process stops after two steps and the survivor runs
        // effectively solo).
        let p = DacFromPac::new(vec![int(1), int(0), int(0)], Pid(0), ObjId(0)).unwrap();
        let objects = pac_objects(3);
        let ex = Explorer::new(&p, &objects);
        let g = ex.exploration().run().unwrap();
        assert!(g.complete);
        assert!(
            g.has_cycle(),
            "adversarial interleavings starve the retry loops"
        );
        assert!(check_dac(&ex, &p.instance(), Limits::default(), 10).is_ok());
    }

    #[test]
    fn wrong_distinguished_process_fails_nontriviality_check() {
        // Sanity check that the checker notices a mis-declared instance: if
        // we claim Pid(1) is distinguished but Pid(0) is the one that aborts,
        // the run violates the declared problem (abort by a non-distinguished
        // process shows up as an undecided/aborted terminal or solo failure).
        let p = DacFromPac::new(vec![int(1), int(0)], Pid(0), ObjId(0)).unwrap();
        let objects = pac_objects(2);
        let ex = Explorer::new(&p, &objects);
        let wrong = DacInstance {
            distinguished: Pid(1),
            inputs: vec![int(1), int(0)],
        };
        let err = check_dac(&ex, &wrong, Limits::default(), 8).unwrap_err();
        // Pid(0) can abort; under the wrong instance Pid(0) must always
        // decide solo, which fails.
        assert!(
            matches!(err, Violation::SoloNonTermination { pid: Pid(0), .. }),
            "expected a solo-termination complaint about Pid(0), got {err}"
        );
    }

    #[test]
    fn symmetry_reduction_preserves_dac_verdicts() {
        use lbsa_explorer::verdict::{verdict_dac, verdict_dac_reduced};
        // Every binary input vector for n = 3: the reduced check must reach
        // the same conclusion as the raw one (and never examine more).
        for inputs in all_binary_inputs(3) {
            let p = DacFromPac::new(inputs, Pid(0), ObjId(0)).unwrap();
            let objects = pac_objects(3);
            let ex = Explorer::new(&p, &objects);
            let raw = verdict_dac(&ex, &p.instance(), Limits::default(), 10);
            let reduced = verdict_dac_reduced(&ex, &p.instance(), Limits::default(), 10);
            assert_eq!(
                raw.outcome.tag(),
                reduced.outcome.tag(),
                "verdicts diverge on {:?}: raw {raw}, reduced {reduced}",
                p.inputs()
            );
            assert!(reduced.stats.configs <= raw.stats.configs);
        }
    }

    #[test]
    fn symmetric_instance_explores_far_fewer_configs() {
        // All non-distinguished processes share input 0, so the group is
        // S_3 (order 6) and the orbit graph should be several times smaller.
        let p = DacFromPac::new(vec![int(1), int(0), int(0), int(0)], Pid(0), ObjId(0)).unwrap();
        let objects = pac_objects(4);
        let ex = Explorer::new(&p, &objects);
        let raw = ex.exploration().run().unwrap();
        let reduced = ex.exploration().symmetric().run().unwrap();
        assert!(reduced.stats.reduced);
        assert!(
            reduced.configs.len() * 2 < raw.configs.len(),
            "expected a substantial reduction: {} orbits vs {} configs",
            reduced.configs.len(),
            raw.configs.len()
        );
    }

    #[test]
    fn binary_input_enumeration() {
        let all = all_binary_inputs(3);
        assert_eq!(all.len(), 8);
        assert!(all.contains(&vec![int(0), int(0), int(0)]));
        assert!(all.contains(&vec![int(1), int(1), int(1)]));
        assert!(all.contains(&vec![int(1), int(0), int(1)]));
    }
}
