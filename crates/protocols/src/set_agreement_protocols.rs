//! k-set agreement protocols.
//!
//! Three ways to solve the `k`-set agreement problem with the paper's
//! objects, each verified exhaustively by the experiments:
//!
//! * [`KSetViaStrongSa`] — everyone proposes to one strong 2-SA object and
//!   decides the response: solves `k`-set agreement for every `k >= 2`
//!   among **any** number of processes (Section 4).
//! * [`GroupSplitKSet`] — partition `k·n` processes into `k` groups of `n`;
//!   each group runs consensus on its own `n`-consensus object. At most one
//!   value is decided per group, hence at most `k` overall. This is the
//!   protocol behind the certified lower bounds `n_k >= k·n` used to build
//!   `O'ₙ` (Section 6), and it works just as well through the `PROPOSEC`
//!   faces of `k` instances of `Oₙ` — which is how the experiments certify
//!   the set agreement power of `Oₙ` itself.
//! * [`KSetViaPowerLevel`] — propose at level `k` of a power object `O'ₙ`:
//!   its `(n_k, k)-SA` component solves the problem among `n_k` processes
//!   by construction.

use lbsa_core::{ObjId, Op, Pid, Value};
use lbsa_runtime::process::{classes_by_input, Protocol, Step, Symmetry};

/// k-set agreement (any `k >= 2`) among any number of processes via one
/// strong 2-SA object: propose, decide the response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KSetViaStrongSa {
    inputs: Vec<Value>,
    obj: ObjId,
}

impl KSetViaStrongSa {
    /// Creates the protocol; `obj` must hold a 2-SA object.
    #[must_use]
    pub fn new(inputs: Vec<Value>, obj: ObjId) -> Self {
        KSetViaStrongSa { inputs, obj }
    }
}

impl Protocol for KSetViaStrongSa {
    type LocalState = ();

    fn num_processes(&self) -> usize {
        self.inputs.len()
    }

    fn init(&self, _pid: Pid) {}

    fn pending_op(&self, pid: Pid, _state: &()) -> (ObjId, Op) {
        (self.obj, Op::Propose(self.inputs[pid.index()]))
    }

    fn on_response(&self, _pid: Pid, _state: &(), response: Value) -> Step<()> {
        Step::Decide(response)
    }
}

/// Processes with equal inputs are interchangeable: the strong 2-SA state
/// holds only captured values, never pids.
impl Symmetry for KSetViaStrongSa {
    fn pid_classes(&self) -> Vec<u32> {
        classes_by_input(&self.inputs)
    }
}

/// Which face of the per-group object carries the proposal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupFace {
    /// Plain `PROPOSE(v)` on an `n`-consensus object per group.
    Consensus,
    /// `PROPOSEC(v)` on an (n,m)-PAC object (e.g. `Oₙ`) per group.
    CombinedC,
}

/// Group-split k-set agreement: `k` groups of at most `group_size`
/// processes; group `g` agrees through object `ObjId(g)`.
///
/// Process `Pid(i)` belongs to group `i / group_size`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupSplitKSet {
    inputs: Vec<Value>,
    group_size: usize,
    face: GroupFace,
}

impl GroupSplitKSet {
    /// Creates a group-split protocol over per-group `n`-consensus objects
    /// (`ObjId(0) .. ObjId(k-1)`, each of arity `group_size`).
    ///
    /// # Errors
    ///
    /// Returns an error string if `group_size == 0`.
    pub fn new(inputs: Vec<Value>, group_size: usize) -> Result<Self, String> {
        if group_size == 0 {
            return Err("group_size must be at least 1".to_string());
        }
        Ok(GroupSplitKSet {
            inputs,
            group_size,
            face: GroupFace::Consensus,
        })
    }

    /// Creates a group-split protocol over the `PROPOSEC` faces of per-group
    /// (n,m)-PAC objects (e.g. `k` instances of `Oₙ`, whose consensus faces
    /// have arity `n = group_size`).
    ///
    /// # Errors
    ///
    /// Returns an error string if `group_size == 0`.
    pub fn via_combined(inputs: Vec<Value>, group_size: usize) -> Result<Self, String> {
        Ok(GroupSplitKSet {
            face: GroupFace::CombinedC,
            ..Self::new(inputs, group_size)?
        })
    }

    /// The number of groups `k` = number of distinct values possible.
    #[must_use]
    pub fn groups(&self) -> usize {
        self.inputs.len().div_ceil(self.group_size)
    }

    fn group_of(&self, pid: Pid) -> usize {
        pid.index() / self.group_size
    }
}

impl Protocol for GroupSplitKSet {
    type LocalState = ();

    fn num_processes(&self) -> usize {
        self.inputs.len()
    }

    fn init(&self, _pid: Pid) {}

    fn pending_op(&self, pid: Pid, _state: &()) -> (ObjId, Op) {
        let v = self.inputs[pid.index()];
        let op = match self.face {
            GroupFace::Consensus => Op::Propose(v),
            GroupFace::CombinedC => Op::ProposeC(v),
        };
        (ObjId(self.group_of(pid)), op)
    }

    fn on_response(&self, _pid: Pid, _state: &(), response: Value) -> Step<()> {
        Step::Decide(response)
    }
}

/// Processes in the *same group* with equal inputs are interchangeable
/// (swapping across groups would have to permute the per-group objects,
/// which the pid action cannot express). Per-group consensus/PAC-face
/// states are pid-free.
impl Symmetry for GroupSplitKSet {
    fn pid_classes(&self) -> Vec<u32> {
        self.inputs
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let first = self
                    .inputs
                    .iter()
                    .enumerate()
                    .position(|(j, w)| j / self.group_size == i / self.group_size && w == v)
                    .expect("i matches itself");
                u32::try_from(first).expect("process count fits in u32")
            })
            .collect()
    }
}

/// k-set agreement via level `k` of a power object: propose at level `k`,
/// decide the response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KSetViaPowerLevel {
    inputs: Vec<Value>,
    obj: ObjId,
    k: usize,
}

impl KSetViaPowerLevel {
    /// Creates the protocol; `obj` must hold a power object with a level-`k`
    /// component of arity at least `inputs.len()`.
    #[must_use]
    pub fn new(inputs: Vec<Value>, obj: ObjId, k: usize) -> Self {
        KSetViaPowerLevel { inputs, obj, k }
    }
}

impl Protocol for KSetViaPowerLevel {
    type LocalState = ();

    fn num_processes(&self) -> usize {
        self.inputs.len()
    }

    fn init(&self, _pid: Pid) {}

    fn pending_op(&self, pid: Pid, _state: &()) -> (ObjId, Op) {
        (self.obj, Op::ProposeAt(self.inputs[pid.index()], self.k))
    }

    fn on_response(&self, _pid: Pid, _state: &(), response: Value) -> Step<()> {
        Step::Decide(response)
    }
}

/// Processes with equal inputs are interchangeable: the power object's
/// component SA states hold values and port counts, never pids.
impl Symmetry for KSetViaPowerLevel {
    fn pid_classes(&self) -> Vec<u32> {
        classes_by_input(&self.inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::value::int;
    use lbsa_core::AnyObject;
    use lbsa_explorer::checker::check_k_set_agreement;
    use lbsa_explorer::{Explorer, Limits};

    fn distinct_inputs(n: usize) -> Vec<Value> {
        (0..n).map(|i| int(i as i64)).collect()
    }

    #[test]
    fn strong_sa_solves_2_set_agreement_for_many_processes() {
        // 2-set agreement among 5 processes with all-distinct inputs: the
        // worst case for the agreement bound. Every interleaving and every
        // nondeterministic response is covered.
        let inputs = distinct_inputs(5);
        let p = KSetViaStrongSa::new(inputs.clone(), ObjId(0));
        let objects = vec![AnyObject::strong_sa()];
        let ex = Explorer::new(&p, &objects);
        check_k_set_agreement(&ex, 2, &inputs, Limits::default())
            .unwrap_or_else(|v| panic!("2-SA failed 2-set agreement: {v}"));
    }

    #[test]
    fn strong_sa_does_not_solve_consensus() {
        let inputs = distinct_inputs(3);
        let p = KSetViaStrongSa::new(inputs.clone(), ObjId(0));
        let objects = vec![AnyObject::strong_sa()];
        let ex = Explorer::new(&p, &objects);
        assert!(check_k_set_agreement(&ex, 1, &inputs, Limits::default()).is_err());
    }

    #[test]
    fn group_split_certifies_n_k_lower_bound() {
        // k = 2 groups of n = 2: 2-set agreement among 4 processes using
        // two 2-consensus objects — the n_2 >= 2·2 certificate for O_2's
        // power table.
        let inputs = distinct_inputs(4);
        let p = GroupSplitKSet::new(inputs.clone(), 2).unwrap();
        assert_eq!(p.groups(), 2);
        let objects = vec![
            AnyObject::consensus(2).unwrap(),
            AnyObject::consensus(2).unwrap(),
        ];
        let ex = Explorer::new(&p, &objects);
        check_k_set_agreement(&ex, 2, &inputs, Limits::default())
            .unwrap_or_else(|v| panic!("group split failed: {v}"));
    }

    #[test]
    fn group_split_via_o_n_faces() {
        // The same bound through the PROPOSEC faces of two O_2 instances:
        // this is the protocol that certifies n_2(O_2) >= 4.
        let inputs = distinct_inputs(4);
        let p = GroupSplitKSet::via_combined(inputs.clone(), 2).unwrap();
        let objects = vec![AnyObject::o_n(2).unwrap(), AnyObject::o_n(2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        check_k_set_agreement(&ex, 2, &inputs, Limits::default())
            .unwrap_or_else(|v| panic!("group split over O_2 failed: {v}"));
    }

    #[test]
    fn group_split_does_not_beat_its_group_count() {
        // 2 groups cannot do better than 2-set agreement when inputs are
        // distinct: 1-set agreement fails.
        let inputs = distinct_inputs(4);
        let p = GroupSplitKSet::new(inputs.clone(), 2).unwrap();
        let objects = vec![
            AnyObject::consensus(2).unwrap(),
            AnyObject::consensus(2).unwrap(),
        ];
        let ex = Explorer::new(&p, &objects);
        assert!(check_k_set_agreement(&ex, 1, &inputs, Limits::default()).is_err());
    }

    #[test]
    fn power_level_k_solves_k_set_agreement_among_n_k() {
        // O'_2 with the certified table has n_2 = 4: level 2 solves 2-set
        // agreement among 4 processes.
        let inputs = distinct_inputs(4);
        let p = KSetViaPowerLevel::new(inputs.clone(), ObjId(0), 2);
        let objects = vec![AnyObject::o_prime_n(2, 2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        check_k_set_agreement(&ex, 2, &inputs, Limits::default())
            .unwrap_or_else(|v| panic!("O'_2 level 2 failed: {v}"));
    }

    #[test]
    fn power_level_k_respects_port_budget() {
        // n_2 = 4: a fifth proposer at level 2 receives ⊥ (validity failure).
        let inputs = distinct_inputs(5);
        let p = KSetViaPowerLevel::new(inputs.clone(), ObjId(0), 2);
        let objects = vec![AnyObject::o_prime_n(2, 2).unwrap()];
        let ex = Explorer::new(&p, &objects);
        assert!(check_k_set_agreement(&ex, 2, &inputs, Limits::default()).is_err());
    }

    #[test]
    fn symmetry_reduction_shrinks_equal_input_sa_graphs() {
        use lbsa_explorer::verdict::{verdict_k_set_agreement, verdict_k_set_agreement_reduced};
        let inputs = vec![int(7); 4];
        let p = KSetViaStrongSa::new(inputs.clone(), ObjId(0));
        let objects = vec![AnyObject::strong_sa()];
        let ex = Explorer::new(&p, &objects);
        let raw = ex.exploration().run().unwrap();
        let reduced = ex.exploration().symmetric().run().unwrap();
        assert!(reduced.configs.len() < raw.configs.len());
        let vr = verdict_k_set_agreement(&ex, 2, &inputs, Limits::default());
        let vq = verdict_k_set_agreement_reduced(&ex, 2, &inputs, Limits::default());
        assert_eq!(vr.outcome.tag(), vq.outcome.tag());
    }

    #[test]
    fn group_split_classes_respect_group_boundaries() {
        // Equal inputs everywhere, two groups of two: pids are
        // interchangeable within a group only (they share an object).
        let p = GroupSplitKSet::new(vec![int(0); 4], 2).unwrap();
        assert_eq!(p.pid_classes(), vec![0, 0, 2, 2]);
    }

    #[test]
    fn group_size_zero_rejected() {
        assert!(GroupSplitKSet::new(distinct_inputs(2), 0).is_err());
        assert!(GroupSplitKSet::via_combined(distinct_inputs(2), 0).is_err());
    }

    #[test]
    fn group_assignment() {
        let p = GroupSplitKSet::new(distinct_inputs(5), 2).unwrap();
        assert_eq!(p.groups(), 3);
        assert_eq!(p.pending_op(Pid(0), &()).0, ObjId(0));
        assert_eq!(p.pending_op(Pid(1), &()).0, ObjId(0));
        assert_eq!(p.pending_op(Pid(2), &()).0, ObjId(1));
        assert_eq!(p.pending_op(Pid(4), &()).0, ObjId(2));
    }
}
