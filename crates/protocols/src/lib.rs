//! # lbsa-protocols — the algorithms of *Life Beyond Set Agreement*
//!
//! Executable versions of every algorithm the paper states or relies on:
//!
//! * [`dac`] — the **n-DAC problem** and **Algorithm 2**: solving n-DAC with
//!   a single n-PAC object (Theorem 4.1).
//! * [`consensus_protocols`] — consensus among `n` processes via an
//!   `n`-consensus object, via the `PROPOSEC` face of an (n,m)-PAC object
//!   (Observation 5.1(c) / the upper bound of Theorem 5.3), and via level 1
//!   of a power object `O'ₙ`.
//! * [`set_agreement_protocols`] — k-set agreement via the 2-SA object, via
//!   **group-splitting** over `n`-consensus objects (the protocol behind the
//!   certified lower bounds `n_k >= k·n`), and via level `k` of `O'ₙ`.
//! * [`derived_impls`] — the paper's constructions as access procedures:
//!   (n,m)-PAC from its components and back (Observation 5.1), and `O'ₙ`
//!   from n-consensus + 2-SA objects (**Lemma 6.4**).
//! * [`candidates`] — *doomed* candidate protocols and implementations: the
//!   refutation targets of experiments T3/T5 (Theorems 4.2/6.5). Each is a
//!   natural attempt that the adversary/checker machinery must defeat.
//! * [`classic_consensus`] — the textbook consensus protocols from
//!   test-and-set / fetch-and-add / queues (level 2) and compare-and-swap
//!   (level ∞), plus their doomed n-process generalizations: the familiar
//!   backdrop of the hierarchy the paper's objects live in.
//! * [`commit_adopt`] — Gafni's two-phase commit–adopt from registers: the
//!   strongest agreement-flavoured task below the hierarchy, exhaustively
//!   verified — a register-only calibration point for the machinery.
//! * [`universal`] — a consensus-based universal construction (after
//!   Herlihy \[10\]): any deterministic object specification, implemented for
//!   `n` processes from `n`-consensus objects.
//! * [`vote_propagation`] — a commitment-cascade workload over a random
//!   partially-connected network: the first *sampling-only* family
//!   (experiment F8), whose state space is deliberately beyond the
//!   exhaustive frontier.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod classic_consensus;
pub mod commit_adopt;
pub mod consensus_protocols;
pub mod dac;
pub mod derived_impls;
pub mod set_agreement_protocols;
pub mod universal;
pub mod vote_propagation;
