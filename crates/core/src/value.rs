//! The value domain shared by all objects in the model.
//!
//! The paper works with an abstract value universe plus two reserved symbols:
//! `NIL` (the "no value yet" marker used inside object states) and `⊥`
//! (the special failure/abort response). Propose-style operations also
//! acknowledge with **done**. Footnote 4 of the paper assumes that processes
//! never *propose* the reserved symbols; [`Value::is_proposable`] encodes
//! that restriction and the object specifications enforce it.

use std::fmt;

/// A value in the shared-memory model.
///
/// `Value` is the single response/argument type of every operation in this
/// workspace. Keeping one closed value universe (rather than generics) is
/// what lets the explorer hash whole system configurations cheaply.
///
/// # Examples
///
/// ```
/// use lbsa_core::value::Value;
///
/// let v = Value::Int(42);
/// assert!(v.is_proposable());
/// assert!(!Value::Bot.is_proposable());
/// assert_eq!(v.to_string(), "42");
/// assert_eq!(Value::Bot.to_string(), "⊥");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// `NIL` — "no value": the initial content of registers and of the
    /// internal fields of PAC objects.
    #[default]
    Nil,
    /// `⊥` — the special failure value returned by upset PAC objects,
    /// exhausted consensus objects, and saturated set-agreement ports.
    Bot,
    /// `done` — the acknowledgement returned by PAC `PROPOSE` operations.
    Done,
    /// An application value. The protocols in this workspace propose and
    /// decide integers.
    Int(i64),
}

impl Value {
    /// Returns `true` if this value may be proposed by a process.
    ///
    /// Per footnote 4 of the paper, processes never propose the special
    /// values `⊥` and `NIL` (and, in our model, `done`, which is likewise a
    /// reserved response token).
    #[must_use]
    pub fn is_proposable(self) -> bool {
        matches!(self, Value::Int(_))
    }

    /// Returns `true` if this value is `NIL`.
    #[must_use]
    pub fn is_nil(self) -> bool {
        matches!(self, Value::Nil)
    }

    /// Returns `true` if this value is `⊥`.
    #[must_use]
    pub fn is_bot(self) -> bool {
        matches!(self, Value::Bot)
    }

    /// Returns the wrapped integer, if this is an application value.
    ///
    /// # Examples
    ///
    /// ```
    /// use lbsa_core::value::Value;
    /// assert_eq!(Value::Int(3).as_int(), Some(3));
    /// assert_eq!(Value::Bot.as_int(), None);
    /// ```
    #[must_use]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::Bot => write!(f, "⊥"),
            Value::Done => write!(f, "done"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

/// Shorthand constructor for an application value.
///
/// # Examples
///
/// ```
/// use lbsa_core::value::{int, Value};
/// assert_eq!(int(5), Value::Int(5));
/// ```
#[must_use]
pub fn int(v: i64) -> Value {
    Value::Int(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_values_are_not_proposable() {
        assert!(!Value::Nil.is_proposable());
        assert!(!Value::Bot.is_proposable());
        assert!(!Value::Done.is_proposable());
        assert!(Value::Int(0).is_proposable());
        assert!(Value::Int(-7).is_proposable());
    }

    #[test]
    fn default_is_nil() {
        assert_eq!(Value::default(), Value::Nil);
        assert!(Value::default().is_nil());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Nil.to_string(), "nil");
        assert_eq!(Value::Bot.to_string(), "⊥");
        assert_eq!(Value::Done.to_string(), "done");
        assert_eq!(Value::Int(-3).to_string(), "-3");
    }

    #[test]
    fn from_i64_roundtrip() {
        let v: Value = 12.into();
        assert_eq!(v.as_int(), Some(12));
        assert_eq!(Value::Done.as_int(), None);
        assert_eq!(Value::Nil.as_int(), None);
    }

    #[test]
    fn ordering_is_total_and_stable() {
        // The derived order is an implementation detail, but it must be a
        // total order so that states embedding values can be canonicalized.
        let mut vs = vec![
            Value::Int(2),
            Value::Nil,
            Value::Done,
            Value::Bot,
            Value::Int(-1),
        ];
        vs.sort();
        let mut again = vs.clone();
        again.sort();
        assert_eq!(vs, again);
    }
}
