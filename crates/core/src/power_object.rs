//! The **power object** `O'ₙ` — Section 6 of the paper — and the
//! [`SetAgreementPower`] tables it is built from.
//!
//! For an object `O` with set agreement power `(n₁, n₂, …, n_k, …)`, the
//! paper defines `O'` as the object that "embodies" that power: it bundles
//! one `(n_k, k)-SA` object per level `k` and exposes `PROPOSE(v, k)`,
//! forwarding to the `k`-th component. By construction `O'` has the same set
//! agreement power as `O`; Theorem 6.5 shows it nonetheless cannot implement
//! `O = Oₙ`.
//!
//! The paper's sequence is infinite; an executable object must truncate it.
//! [`PowerObjectSpec`] materializes levels `1..=max_k`. This is faithful to
//! the use the paper makes of the sequence: the separation argument only ever
//! exercises level 1 (`n₁ = n`, Observation 6.2) and the fact that levels
//! `k >= 2` are implementable from 2-SA objects (Lemma 6.4).
//!
//! Because the true `n_k` of `Oₙ` for `k >= 2` is not computed in the paper
//! (only its existence is used), this crate ships **certified lower-bound**
//! tables: `n_k >= k·n`, achieved by the group-split protocol in
//! `lbsa-protocols` (partition `k·n` processes into `k` groups of `n`; each
//! group runs consensus through its own n-consensus face). See
//! `EXPERIMENTS.md` (T5) for the verification of these bounds.

use crate::error::SpecError;
use crate::op::Op;
use crate::set_agreement::{SetAgreementSpec, SetAgreementState};
use crate::spec::{ObjectSpec, Outcomes};

/// A (truncated) set agreement power sequence `(n₁, n₂, …, n_K)`.
///
/// `entries[k-1]` is `n_k`: the number of processes for which the object (plus
/// registers) solves `k`-set agreement.
///
/// # Examples
///
/// ```
/// use lbsa_core::power_object::SetAgreementPower;
///
/// let power = SetAgreementPower::certified_lower_bounds_for_o_n(2, 4).unwrap();
/// assert_eq!(power.n_k(1), Some(2));  // O_2 has consensus number 2
/// assert_eq!(power.n_k(2), Some(4));  // 2-set agreement among 2*2 processes
/// assert_eq!(power.n_k(5), None);     // truncated at K = 4
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetAgreementPower {
    entries: Vec<usize>,
}

impl SetAgreementPower {
    /// Creates a power sequence from explicit entries `(n₁, …, n_K)`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidArity`] if `entries` is empty or contains
    /// a zero (every object solves `k`-set agreement among at least one
    /// process). Set agreement powers are monotone non-decreasing in `k`;
    /// a non-monotone sequence is rejected for the same reason.
    pub fn new(entries: Vec<usize>) -> Result<Self, SpecError> {
        if entries.is_empty() {
            return Err(SpecError::InvalidArity {
                what: "K",
                got: 0,
                min: 1,
            });
        }
        for (i, &e) in entries.iter().enumerate() {
            if e == 0 {
                return Err(SpecError::InvalidArity {
                    what: "n_k",
                    got: 0,
                    min: 1,
                });
            }
            if i > 0 && e < entries[i - 1] {
                return Err(SpecError::InvalidArity {
                    what: "n_k",
                    got: e,
                    min: entries[i - 1],
                });
            }
        }
        Ok(SetAgreementPower { entries })
    }

    /// The certified lower-bound power table of `Oₙ` truncated at `max_k`:
    /// `n_k >= k·n` via the group-split protocol (and `n₁ = n` exactly, by
    /// Observation 6.2).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidArity`] if `n < 2` or `max_k == 0`.
    pub fn certified_lower_bounds_for_o_n(n: usize, max_k: usize) -> Result<Self, SpecError> {
        if n < 2 {
            return Err(SpecError::InvalidArity {
                what: "n",
                got: n,
                min: 2,
            });
        }
        if max_k == 0 {
            return Err(SpecError::InvalidArity {
                what: "max_k",
                got: 0,
                min: 1,
            });
        }
        SetAgreementPower::new((1..=max_k).map(|k| k * n).collect())
    }

    /// `n_k` — the `k`-set agreement number, for 1-based `k <= max_k`.
    #[must_use]
    pub fn n_k(&self, k: usize) -> Option<usize> {
        if k == 0 {
            None
        } else {
            self.entries.get(k - 1).copied()
        }
    }

    /// The truncation depth `K`.
    #[must_use]
    pub fn max_k(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over `(k, n_k)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.entries.iter().enumerate().map(|(i, &n)| (i + 1, n))
    }
}

/// State of a [`PowerObjectSpec`]: one component state per level.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PowerObjectState {
    /// `components[k-1]` is the state of the `(n_k, k)-SA` component.
    pub components: Vec<SetAgreementState>,
}

/// Sequential specification of the paper's `O'ₙ`: the bundle
/// `⋃_{k=1..K} {(n_k, k)-SA}` behind a single `PROPOSE(v, k)` interface.
///
/// # Examples
///
/// ```
/// use lbsa_core::power_object::{PowerObjectSpec, SetAgreementPower};
/// use lbsa_core::spec::ObjectSpec;
/// use lbsa_core::op::Op;
/// use lbsa_core::value::Value;
///
/// # fn main() -> Result<(), lbsa_core::error::SpecError> {
/// let power = SetAgreementPower::certified_lower_bounds_for_o_n(2, 3)?;
/// let o_prime = PowerObjectSpec::new(power)?;
/// let s0 = o_prime.initial_state();
/// // Level k = 1 is consensus among n_1 = 2 processes.
/// let (r, _) = o_prime.outcomes(&s0, &Op::ProposeAt(Value::Int(6), 1))?.into_single();
/// assert_eq!(r, Value::Int(6));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PowerObjectSpec {
    power: SetAgreementPower,
    components: Vec<SetAgreementSpec>,
}

impl PowerObjectSpec {
    /// Creates a power object from a power sequence.
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError::InvalidArity`] from component construction.
    pub fn new(power: SetAgreementPower) -> Result<Self, SpecError> {
        let components = power
            .iter()
            .map(|(k, n_k)| SetAgreementSpec::new(n_k, k))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PowerObjectSpec { power, components })
    }

    /// The paper's `O'ₙ`, built over the certified lower-bound power table
    /// of `Oₙ`, truncated at `max_k`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidArity`] if `n < 2` or `max_k == 0`.
    pub fn o_prime_n(n: usize, max_k: usize) -> Result<Self, SpecError> {
        PowerObjectSpec::new(SetAgreementPower::certified_lower_bounds_for_o_n(n, max_k)?)
    }

    /// The power sequence this object embodies.
    #[must_use]
    pub fn power(&self) -> &SetAgreementPower {
        &self.power
    }

    /// The `(n_k, k)-SA` component for 1-based `k`, if materialized.
    #[must_use]
    pub fn component(&self, k: usize) -> Option<&SetAgreementSpec> {
        if k == 0 {
            None
        } else {
            self.components.get(k - 1)
        }
    }
}

impl ObjectSpec for PowerObjectSpec {
    type State = PowerObjectState;

    fn name(&self) -> &'static str {
        "O'_n"
    }

    fn initial_state(&self) -> PowerObjectState {
        PowerObjectState {
            components: self
                .components
                .iter()
                .map(SetAgreementSpec::initial_state)
                .collect(),
        }
    }

    fn outcomes(
        &self,
        state: &PowerObjectState,
        op: &Op,
    ) -> Result<Outcomes<PowerObjectState>, SpecError> {
        match op {
            Op::ProposeAt(v, k) => {
                let k = *k;
                let comp = self.component(k).ok_or(SpecError::PowerLevelOutOfRange {
                    k,
                    max_k: self.power.max_k(),
                })?;
                let comp_state = &state.components[k - 1];
                let alts = comp
                    .outcomes(comp_state, &Op::Propose(*v))?
                    .into_vec()
                    .into_iter()
                    .map(|(resp, next_comp)| {
                        let mut next = state.clone();
                        next.components[k - 1] = next_comp;
                        (resp, next)
                    })
                    .collect();
                Ok(Outcomes::from_vec(alts))
            }
            other => Err(SpecError::UnsupportedOp {
                object: "O'_n",
                op: *other,
            }),
        }
    }

    fn is_deterministic(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{int, Value};

    #[test]
    fn power_table_validation() {
        assert!(SetAgreementPower::new(vec![]).is_err());
        assert!(SetAgreementPower::new(vec![2, 0]).is_err());
        assert!(
            SetAgreementPower::new(vec![4, 2]).is_err(),
            "power must be monotone in k"
        );
        assert!(SetAgreementPower::new(vec![2, 4, 6]).is_ok());
    }

    #[test]
    fn certified_lower_bounds_shape() {
        let p = SetAgreementPower::certified_lower_bounds_for_o_n(3, 5).unwrap();
        assert_eq!(p.max_k(), 5);
        for (k, n_k) in p.iter() {
            assert_eq!(n_k, 3 * k);
        }
        assert!(SetAgreementPower::certified_lower_bounds_for_o_n(1, 3).is_err());
        assert!(SetAgreementPower::certified_lower_bounds_for_o_n(2, 0).is_err());
    }

    #[test]
    fn component_arities_match_the_table() {
        let o = PowerObjectSpec::o_prime_n(2, 4).unwrap();
        for k in 1..=4usize {
            let c = o.component(k).unwrap();
            assert_eq!(c.k(), k);
            assert_eq!(c.n(), 2 * k);
        }
        assert!(o.component(0).is_none());
        assert!(o.component(5).is_none());
    }

    #[test]
    fn level_1_is_consensus() {
        let o = PowerObjectSpec::o_prime_n(2, 2).unwrap();
        let mut s = o.initial_state();
        let (r, next) = o
            .outcomes(&s, &Op::ProposeAt(int(4), 1))
            .unwrap()
            .into_single();
        assert_eq!(r, int(4));
        s = next;
        let (r, _) = o
            .outcomes(&s, &Op::ProposeAt(int(9), 1))
            .unwrap()
            .into_single();
        assert_eq!(
            r,
            int(4),
            "(n_1, 1)-SA is consensus: second proposer learns the first value"
        );
    }

    #[test]
    fn levels_are_isolated() {
        let o = PowerObjectSpec::o_prime_n(2, 3).unwrap();
        let mut s = o.initial_state();
        let (_, next) = o
            .outcomes(&s, &Op::ProposeAt(int(1), 1))
            .unwrap()
            .into_single();
        s = next;
        // Level 2 has seen nothing: its first propose may return only its
        // own value.
        let outs = o.outcomes(&s, &Op::ProposeAt(int(2), 2)).unwrap();
        assert!(outs.is_deterministic());
        assert_eq!(outs.into_single().0, int(2));
    }

    #[test]
    fn out_of_range_level_is_an_error() {
        let o = PowerObjectSpec::o_prime_n(2, 2).unwrap();
        let s = o.initial_state();
        assert_eq!(
            o.outcomes(&s, &Op::ProposeAt(int(1), 3)).unwrap_err(),
            SpecError::PowerLevelOutOfRange { k: 3, max_k: 2 }
        );
        assert_eq!(
            o.outcomes(&s, &Op::ProposeAt(int(1), 0)).unwrap_err(),
            SpecError::PowerLevelOutOfRange { k: 0, max_k: 2 }
        );
    }

    #[test]
    fn port_budget_per_level() {
        // Level 1 of O'_2 serves n_1 = 2 proposes, then ⊥.
        let o = PowerObjectSpec::o_prime_n(2, 1).unwrap();
        let mut s = o.initial_state();
        for _ in 0..2 {
            let (r, next) = o
                .outcomes(&s, &Op::ProposeAt(int(1), 1))
                .unwrap()
                .into_single();
            assert_ne!(r, Value::Bot);
            s = next;
        }
        let (r, _) = o
            .outcomes(&s, &Op::ProposeAt(int(1), 1))
            .unwrap()
            .into_single();
        assert_eq!(r, Value::Bot);
    }

    #[test]
    fn rejects_foreign_ops() {
        let o = PowerObjectSpec::o_prime_n(2, 1).unwrap();
        let s = o.initial_state();
        assert!(matches!(
            o.outcomes(&s, &Op::Propose(int(1))),
            Err(SpecError::UnsupportedOp { .. })
        ));
    }

    #[test]
    fn power_object_is_nondeterministic() {
        assert!(!PowerObjectSpec::o_prime_n(2, 2).unwrap().is_deterministic());
    }
}
