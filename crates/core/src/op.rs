//! The operation alphabet of the model.
//!
//! Every object family in the paper draws its operations from this single
//! closed alphabet, which keeps system configurations first-order data (and
//! therefore hashable by the explorer). Each object accepts only the subset
//! of operations belonging to its interface and rejects the rest with
//! [`crate::error::SpecError::UnsupportedOp`].

use crate::ids::Label;
use crate::value::Value;
use std::fmt;

/// An operation that a process may apply to a shared object.
///
/// # Examples
///
/// ```
/// use lbsa_core::op::Op;
/// use lbsa_core::value::Value;
/// use lbsa_core::ids::Label;
///
/// let label = Label::new(2).unwrap();
/// let op = Op::ProposePac(Value::Int(9), label);
/// assert_eq!(op.to_string(), "PROPOSE(9, 2)");
/// assert_eq!(op.proposed_value(), Some(Value::Int(9)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Op {
    /// Read a register.
    Read,
    /// Write a value to a register.
    Write(Value),
    /// `PROPOSE(v)` on a consensus, 2-SA, or (n,k)-SA object.
    Propose(Value),
    /// `PROPOSE(v, i)` on an n-PAC object (Section 3, Algorithm 1).
    ProposePac(Value, Label),
    /// `DECIDE(i)` on an n-PAC object (Section 3, Algorithm 1).
    DecidePac(Label),
    /// `PROPOSEC(v)` on an (n,m)-PAC object: redirected to the embedded
    /// m-consensus object (Section 5).
    ProposeC(Value),
    /// `PROPOSEP(v, i)` on an (n,m)-PAC object: redirected to the embedded
    /// n-PAC object (Section 5).
    ProposeP(Value, Label),
    /// `DECIDEP(i)` on an (n,m)-PAC object: redirected to the embedded
    /// n-PAC object (Section 5).
    DecideP(Label),
    /// `PROPOSE(v, k)` on the power object `O'ₙ`: redirected to the
    /// `(n_k, k)-SA` component (Section 6).
    ProposeAt(Value, usize),
    /// Test-and-set: atomically set the bit, returning its previous value
    /// (`0` = won the race). A classic level-2 primitive, used to situate
    /// the paper's objects inside the familiar hierarchy.
    TestAndSet,
    /// Fetch-and-add: atomically add the delta to a counter, returning the
    /// previous value. A classic level-2 primitive.
    FetchAdd(i64),
    /// Compare-and-swap: if the cell equals the first value, replace it
    /// with the second; always returns the cell's *previous* value. A
    /// classic level-∞ primitive.
    CompareAndSwap(Value, Value),
    /// Enqueue a value on a FIFO queue.
    Enqueue(Value),
    /// Dequeue the front of a FIFO queue (`nil` when empty). Queues are a
    /// classic level-2 primitive.
    Dequeue,
}

impl Op {
    /// The value this operation proposes or writes, if any.
    #[must_use]
    pub fn proposed_value(&self) -> Option<Value> {
        match self {
            Op::Write(v)
            | Op::Propose(v)
            | Op::ProposePac(v, _)
            | Op::ProposeC(v)
            | Op::ProposeP(v, _)
            | Op::ProposeAt(v, _)
            | Op::Enqueue(v)
            | Op::CompareAndSwap(_, v) => Some(*v),
            Op::Read
            | Op::DecidePac(_)
            | Op::DecideP(_)
            | Op::TestAndSet
            | Op::FetchAdd(_)
            | Op::Dequeue => None,
        }
    }

    /// The PAC label carried by this operation, if any.
    #[must_use]
    pub fn label(&self) -> Option<Label> {
        match self {
            Op::ProposePac(_, l) | Op::DecidePac(l) | Op::ProposeP(_, l) | Op::DecideP(l) => {
                Some(*l)
            }
            _ => None,
        }
    }

    /// Returns `true` if this is a PAC-style propose (`PROPOSE(v, i)` or
    /// `PROPOSEP(v, i)`).
    #[must_use]
    pub fn is_pac_propose(&self) -> bool {
        matches!(self, Op::ProposePac(..) | Op::ProposeP(..))
    }

    /// Returns `true` if this is a PAC-style decide (`DECIDE(i)` or
    /// `DECIDEP(i)`).
    #[must_use]
    pub fn is_pac_decide(&self) -> bool {
        matches!(self, Op::DecidePac(_) | Op::DecideP(_))
    }

    /// Returns `true` if this operation mutates nothing and can never change
    /// an object's state (only `Read`, in this alphabet).
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        matches!(self, Op::Read)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read => write!(f, "READ"),
            Op::Write(v) => write!(f, "WRITE({v})"),
            Op::Propose(v) => write!(f, "PROPOSE({v})"),
            Op::ProposePac(v, i) => write!(f, "PROPOSE({v}, {i})"),
            Op::DecidePac(i) => write!(f, "DECIDE({i})"),
            Op::ProposeC(v) => write!(f, "PROPOSEC({v})"),
            Op::ProposeP(v, i) => write!(f, "PROPOSEP({v}, {i})"),
            Op::DecideP(i) => write!(f, "DECIDEP({i})"),
            Op::ProposeAt(v, k) => write!(f, "PROPOSE({v}, k={k})"),
            Op::TestAndSet => write!(f, "TAS"),
            Op::FetchAdd(d) => write!(f, "FAA({d})"),
            Op::CompareAndSwap(e, n) => write!(f, "CAS({e} -> {n})"),
            Op::Enqueue(v) => write!(f, "ENQ({v})"),
            Op::Dequeue => write!(f, "DEQ"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> Label {
        Label::new(i).unwrap()
    }

    #[test]
    fn proposed_value_extraction() {
        assert_eq!(
            Op::Write(Value::Int(1)).proposed_value(),
            Some(Value::Int(1))
        );
        assert_eq!(
            Op::Propose(Value::Int(2)).proposed_value(),
            Some(Value::Int(2))
        );
        assert_eq!(
            Op::ProposePac(Value::Int(3), l(1)).proposed_value(),
            Some(Value::Int(3))
        );
        assert_eq!(
            Op::ProposeC(Value::Int(4)).proposed_value(),
            Some(Value::Int(4))
        );
        assert_eq!(
            Op::ProposeP(Value::Int(5), l(2)).proposed_value(),
            Some(Value::Int(5))
        );
        assert_eq!(
            Op::ProposeAt(Value::Int(6), 3).proposed_value(),
            Some(Value::Int(6))
        );
        assert_eq!(Op::Read.proposed_value(), None);
        assert_eq!(Op::DecidePac(l(1)).proposed_value(), None);
        assert_eq!(Op::DecideP(l(1)).proposed_value(), None);
    }

    #[test]
    fn label_extraction() {
        assert_eq!(Op::ProposePac(Value::Int(1), l(2)).label(), Some(l(2)));
        assert_eq!(Op::DecidePac(l(3)).label(), Some(l(3)));
        assert_eq!(Op::ProposeP(Value::Int(1), l(1)).label(), Some(l(1)));
        assert_eq!(Op::DecideP(l(2)).label(), Some(l(2)));
        assert_eq!(Op::Propose(Value::Int(1)).label(), None);
        assert_eq!(Op::Read.label(), None);
    }

    #[test]
    fn pac_classification() {
        assert!(Op::ProposePac(Value::Int(1), l(1)).is_pac_propose());
        assert!(Op::ProposeP(Value::Int(1), l(1)).is_pac_propose());
        assert!(!Op::Propose(Value::Int(1)).is_pac_propose());
        assert!(Op::DecidePac(l(1)).is_pac_decide());
        assert!(Op::DecideP(l(1)).is_pac_decide());
        assert!(!Op::Read.is_pac_decide());
    }

    #[test]
    fn read_only_classification() {
        assert!(Op::Read.is_read_only());
        assert!(!Op::Write(Value::Int(0)).is_read_only());
        // A DECIDE is *not* read-only: it clears L and V[i].
        assert!(!Op::DecidePac(l(1)).is_read_only());
    }

    #[test]
    fn primitive_ops_classification() {
        assert_eq!(
            Op::Enqueue(Value::Int(2)).proposed_value(),
            Some(Value::Int(2))
        );
        assert_eq!(
            Op::CompareAndSwap(Value::Nil, Value::Int(3)).proposed_value(),
            Some(Value::Int(3))
        );
        assert_eq!(Op::TestAndSet.proposed_value(), None);
        assert_eq!(Op::FetchAdd(1).proposed_value(), None);
        assert_eq!(Op::Dequeue.proposed_value(), None);
        assert!(!Op::TestAndSet.is_read_only());
        assert_eq!(Op::TestAndSet.label(), None);
    }

    #[test]
    fn primitive_display_forms() {
        assert_eq!(Op::TestAndSet.to_string(), "TAS");
        assert_eq!(Op::FetchAdd(2).to_string(), "FAA(2)");
        assert_eq!(
            Op::CompareAndSwap(Value::Nil, Value::Int(1)).to_string(),
            "CAS(nil -> 1)"
        );
        assert_eq!(Op::Enqueue(Value::Int(4)).to_string(), "ENQ(4)");
        assert_eq!(Op::Dequeue.to_string(), "DEQ");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Op::Read.to_string(), "READ");
        assert_eq!(Op::Write(Value::Int(7)).to_string(), "WRITE(7)");
        assert_eq!(Op::Propose(Value::Int(1)).to_string(), "PROPOSE(1)");
        assert_eq!(
            Op::ProposePac(Value::Int(1), l(2)).to_string(),
            "PROPOSE(1, 2)"
        );
        assert_eq!(Op::DecidePac(l(2)).to_string(), "DECIDE(2)");
        assert_eq!(Op::ProposeC(Value::Int(1)).to_string(), "PROPOSEC(1)");
        assert_eq!(
            Op::ProposeP(Value::Int(1), l(1)).to_string(),
            "PROPOSEP(1, 1)"
        );
        assert_eq!(Op::DecideP(l(1)).to_string(), "DECIDEP(1)");
        assert_eq!(
            Op::ProposeAt(Value::Int(1), 4).to_string(),
            "PROPOSE(1, k=4)"
        );
    }
}
