//! The atomic read/write register.
//!
//! Registers are the base objects of the wait-free shared-memory model: the
//! paper's implementation relation is always "from instances of `O` **and
//! registers**". A register holds a single [`Value`] (initially `NIL`),
//! supports `READ` and `WRITE(v)`, and is deterministic.

use crate::error::SpecError;
use crate::op::Op;
use crate::spec::{ObjectSpec, Outcomes};
use crate::value::Value;

/// Sequential specification of an atomic read/write register.
///
/// # Examples
///
/// ```
/// use lbsa_core::register::RegisterSpec;
/// use lbsa_core::spec::ObjectSpec;
/// use lbsa_core::op::Op;
/// use lbsa_core::value::Value;
///
/// # fn main() -> Result<(), lbsa_core::error::SpecError> {
/// let reg = RegisterSpec::new();
/// let mut s = reg.initial_state();
/// assert_eq!(reg.apply_deterministic(&mut s, &Op::Read)?, Value::Nil);
/// assert_eq!(reg.apply_deterministic(&mut s, &Op::Write(Value::Int(5)))?, Value::Done);
/// assert_eq!(reg.apply_deterministic(&mut s, &Op::Read)?, Value::Int(5));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegisterSpec;

impl RegisterSpec {
    /// Creates a register specification.
    #[must_use]
    pub fn new() -> Self {
        RegisterSpec
    }
}

impl ObjectSpec for RegisterSpec {
    type State = Value;

    fn name(&self) -> &'static str {
        "register"
    }

    fn initial_state(&self) -> Value {
        Value::Nil
    }

    fn outcomes(&self, state: &Value, op: &Op) -> Result<Outcomes<Value>, SpecError> {
        match op {
            Op::Read => Ok(Outcomes::single(*state, *state)),
            Op::Write(v) => Ok(Outcomes::single(Value::Done, *v)),
            other => Err(SpecError::UnsupportedOp {
                object: "register",
                op: *other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::int;

    #[test]
    fn initial_read_is_nil() {
        let reg = RegisterSpec::new();
        let mut s = reg.initial_state();
        assert_eq!(
            reg.apply_deterministic(&mut s, &Op::Read).unwrap(),
            Value::Nil
        );
    }

    #[test]
    fn write_then_read_returns_written_value() {
        let reg = RegisterSpec::new();
        let mut s = reg.initial_state();
        assert_eq!(
            reg.apply_deterministic(&mut s, &Op::Write(int(3))).unwrap(),
            Value::Done
        );
        assert_eq!(reg.apply_deterministic(&mut s, &Op::Read).unwrap(), int(3));
        // Overwrite.
        reg.apply_deterministic(&mut s, &Op::Write(int(8))).unwrap();
        assert_eq!(reg.apply_deterministic(&mut s, &Op::Read).unwrap(), int(8));
    }

    #[test]
    fn read_does_not_change_state() {
        let reg = RegisterSpec::new();
        let mut s = reg.initial_state();
        reg.apply_deterministic(&mut s, &Op::Write(int(1))).unwrap();
        let before = s;
        reg.apply_deterministic(&mut s, &Op::Read).unwrap();
        assert_eq!(s, before);
    }

    #[test]
    fn registers_may_hold_any_value() {
        // Unlike propose operations, writes accept reserved symbols: a
        // register is uninterpreted storage.
        let reg = RegisterSpec::new();
        let mut s = reg.initial_state();
        reg.apply_deterministic(&mut s, &Op::Write(Value::Bot))
            .unwrap();
        assert_eq!(
            reg.apply_deterministic(&mut s, &Op::Read).unwrap(),
            Value::Bot
        );
    }

    #[test]
    fn rejects_foreign_operations() {
        let reg = RegisterSpec::new();
        let s = reg.initial_state();
        let err = reg.outcomes(&s, &Op::Propose(int(1))).unwrap_err();
        assert!(matches!(
            err,
            SpecError::UnsupportedOp {
                object: "register",
                ..
            }
        ));
    }

    #[test]
    fn register_is_deterministic() {
        assert!(RegisterSpec::new().is_deterministic());
    }
}
