//! The deterministic `n`-consensus object.
//!
//! Footnote 6 of the paper fixes the precise linearizable specification
//! (after Jayanti \[12\] and Qadri \[13\]): *"for the first `n` propose
//! operations, the `n`-consensus object returns the value of the first
//! propose operation, and it returns a special value `⊥` to any subsequent
//! propose operation."*
//!
//! This "fuel-limited" flavour is essential for the paper's Theorem 4.2 /
//! Claim 4.2.9: once `n` operations have been performed, the object stops
//! carrying information — any further operation returns `⊥` regardless of
//! the state, which is exactly what the bivalency argument exploits.

use crate::error::SpecError;
use crate::op::Op;
use crate::spec::{check_proposable, ObjectSpec, Outcomes};
use crate::value::Value;

/// State of an [`ConsensusSpec`] object.
///
/// `used` saturates at `n`: once the object is exhausted, additional
/// operations neither change the state nor the response (`⊥`), which keeps
/// the reachable state space finite for the explorer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConsensusState {
    /// The value of the first propose operation (`NIL` before any propose).
    pub winner: Value,
    /// How many propose operations have been applied, saturating at `n`.
    pub used: usize,
}

/// Sequential specification of the `n`-consensus object.
///
/// # Examples
///
/// ```
/// use lbsa_core::consensus::ConsensusSpec;
/// use lbsa_core::spec::ObjectSpec;
/// use lbsa_core::op::Op;
/// use lbsa_core::value::Value;
///
/// # fn main() -> Result<(), lbsa_core::error::SpecError> {
/// let cons = ConsensusSpec::new(2)?;
/// let mut s = cons.initial_state();
/// // First two proposals both learn the first value…
/// assert_eq!(cons.apply_deterministic(&mut s, &Op::Propose(Value::Int(5)))?, Value::Int(5));
/// assert_eq!(cons.apply_deterministic(&mut s, &Op::Propose(Value::Int(9)))?, Value::Int(5));
/// // …and the third gets ⊥: a 2-consensus object cannot serve three.
/// assert_eq!(cons.apply_deterministic(&mut s, &Op::Propose(Value::Int(1)))?, Value::Bot);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConsensusSpec {
    n: usize,
}

impl ConsensusSpec {
    /// Creates an `n`-consensus specification.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidArity`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, SpecError> {
        if n == 0 {
            return Err(SpecError::InvalidArity {
                what: "n",
                got: 0,
                min: 1,
            });
        }
        Ok(ConsensusSpec { n })
    }

    /// The consensus number `n` of this object.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Returns `true` if the object has served its full budget of `n`
    /// propose operations and now answers `⊥` unconditionally.
    #[must_use]
    pub fn is_exhausted(&self, state: &ConsensusState) -> bool {
        state.used >= self.n
    }
}

impl ObjectSpec for ConsensusSpec {
    type State = ConsensusState;

    fn name(&self) -> &'static str {
        "n-consensus"
    }

    fn initial_state(&self) -> ConsensusState {
        ConsensusState {
            winner: Value::Nil,
            used: 0,
        }
    }

    fn outcomes(
        &self,
        state: &ConsensusState,
        op: &Op,
    ) -> Result<Outcomes<ConsensusState>, SpecError> {
        match op {
            Op::Propose(v) => {
                check_proposable(*v)?;
                if state.used >= self.n {
                    // Exhausted: ⊥ forever, state frozen (finite state space).
                    Ok(Outcomes::single(Value::Bot, *state))
                } else {
                    let winner = if state.winner.is_nil() {
                        *v
                    } else {
                        state.winner
                    };
                    let next = ConsensusState {
                        winner,
                        used: state.used + 1,
                    };
                    Ok(Outcomes::single(winner, next))
                }
            }
            other => Err(SpecError::UnsupportedOp {
                object: "n-consensus",
                op: *other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::int;

    fn propose(cons: &ConsensusSpec, s: &mut ConsensusState, v: i64) -> Value {
        cons.apply_deterministic(s, &Op::Propose(int(v))).unwrap()
    }

    #[test]
    fn rejects_zero_arity() {
        assert!(matches!(
            ConsensusSpec::new(0),
            Err(SpecError::InvalidArity {
                what: "n",
                got: 0,
                min: 1
            })
        ));
    }

    #[test]
    fn first_value_wins_for_first_n_ops() {
        for n in 1..=5 {
            let cons = ConsensusSpec::new(n).unwrap();
            let mut s = cons.initial_state();
            for i in 0..n {
                let resp = propose(&cons, &mut s, 100 + i as i64);
                assert_eq!(
                    resp,
                    int(100),
                    "op {i} of n = {n} must return the first value"
                );
            }
            // Every op past the budget returns ⊥.
            for _ in 0..3 {
                assert_eq!(propose(&cons, &mut s, 7), Value::Bot);
            }
        }
    }

    #[test]
    fn exhausted_state_is_frozen() {
        let cons = ConsensusSpec::new(1).unwrap();
        let mut s = cons.initial_state();
        propose(&cons, &mut s, 1);
        let frozen = s;
        propose(&cons, &mut s, 2);
        propose(&cons, &mut s, 3);
        assert_eq!(
            s, frozen,
            "post-exhaustion operations must not grow the state space"
        );
        assert!(cons.is_exhausted(&s));
    }

    #[test]
    fn exhaustion_boundary() {
        let cons = ConsensusSpec::new(3).unwrap();
        let mut s = cons.initial_state();
        assert!(!cons.is_exhausted(&s));
        propose(&cons, &mut s, 4);
        propose(&cons, &mut s, 5);
        assert!(!cons.is_exhausted(&s));
        propose(&cons, &mut s, 6);
        assert!(cons.is_exhausted(&s));
    }

    #[test]
    fn rejects_reserved_values() {
        let cons = ConsensusSpec::new(2).unwrap();
        let s = cons.initial_state();
        for v in [Value::Nil, Value::Bot, Value::Done] {
            assert_eq!(
                cons.outcomes(&s, &Op::Propose(v)).unwrap_err(),
                SpecError::ReservedValue(v)
            );
        }
    }

    #[test]
    fn rejects_foreign_operations() {
        let cons = ConsensusSpec::new(2).unwrap();
        let s = cons.initial_state();
        for op in [Op::Read, Op::Write(int(1)), Op::ProposeC(int(1))] {
            assert!(matches!(
                cons.outcomes(&s, &op),
                Err(SpecError::UnsupportedOp {
                    object: "n-consensus",
                    ..
                })
            ));
        }
    }

    #[test]
    fn agreement_and_validity_on_all_short_sequences() {
        // Exhaustive check of the consensus properties on every proposal
        // sequence of length <= 4 over {1, 2}: all non-⊥ responses agree and
        // equal the first proposal.
        let cons = ConsensusSpec::new(3).unwrap();
        let vals = [1i64, 2];
        for len in 0..=4usize {
            let mut seq = vec![0usize; len];
            loop {
                let ops: Vec<Op> = seq.iter().map(|&i| Op::Propose(int(vals[i]))).collect();
                let (responses, _) = cons.run_first(&ops).unwrap();
                for (i, r) in responses.iter().enumerate() {
                    if i < 3 {
                        assert_eq!(*r, ops[0].proposed_value().unwrap());
                    } else {
                        assert_eq!(*r, Value::Bot);
                    }
                }
                // Advance the odometer.
                let mut k = 0;
                loop {
                    if k == len {
                        break;
                    }
                    seq[k] += 1;
                    if seq[k] < vals.len() {
                        break;
                    }
                    seq[k] = 0;
                    k += 1;
                }
                if k == len {
                    break;
                }
            }
        }
    }
}
