//! # lbsa-core — the objects of *Life Beyond Set Agreement* (PODC 2017)
//!
//! This crate contains executable **sequential specifications** of every
//! shared object used by Chan, Hadzilacos and Toueg in *Life Beyond Set
//! Agreement*:
//!
//! * [`register::RegisterSpec`] — atomic read/write registers,
//! * [`consensus::ConsensusSpec`] — the deterministic `n`-consensus object
//!   (first proposal wins for the first `n` proposals, `⊥` afterwards),
//! * [`pac::PacSpec`] — the **n-PAC** (pseudo-abortable consensus) object of
//!   Section 3 (Algorithm 1),
//! * [`strong_sa::StrongSaSpec`] — the **strong 2-set agreement (2-SA)**
//!   object of Section 4 (Algorithm 3),
//! * [`set_agreement::SetAgreementSpec`] — the **(n,k)-SA** object used in
//!   Section 6,
//! * [`combined::CombinedPacSpec`] — the **(n,m)-PAC** object of Section 5,
//!   whose `(n+1, n)` instance is the paper's `Oₙ` (Definition 6.1),
//! * [`power_object::PowerObjectSpec`] — the paper's `O'ₙ`: a bundle of
//!   `(n_k, k)-SA` objects addressed by `PROPOSE(v, k)` (Section 6).
//!
//! A sequential specification is a (possibly nondeterministic) transition
//! function over an explicit state type; see [`spec::ObjectSpec`]. All object
//! states are `Clone + Eq + Hash`, which is what allows the companion crates
//! to model-check *every* execution of a protocol exhaustively.
//!
//! The crate also provides [`history`] — sequential histories, the PAC
//! *legality* predicate of Section 3, and executable versions of the paper's
//! Lemmas 3.2–3.4 and Theorem 3.5 — and [`any::AnyObject`], a closed sum over
//! all object families with hashable states, used by the runtime and the
//! explorer.
//!
//! ## Quick example
//!
//! ```
//! use lbsa_core::pac::PacSpec;
//! use lbsa_core::spec::ObjectSpec;
//! use lbsa_core::op::Op;
//! use lbsa_core::value::Value;
//! use lbsa_core::ids::Label;
//!
//! # fn main() -> Result<(), lbsa_core::error::SpecError> {
//! let pac = PacSpec::new(2)?;
//! let mut state = pac.initial_state();
//!
//! // PROPOSE(7, 1) then DECIDE(1): the matching decide returns 7.
//! let label = Label::new(1)?;
//! let resp = pac.apply_deterministic(&mut state, &Op::ProposePac(Value::Int(7), label))?;
//! assert_eq!(resp, Value::Done);
//! let resp = pac.apply_deterministic(&mut state, &Op::DecidePac(label))?;
//! assert_eq!(resp, Value::Int(7));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod any;
pub mod combined;
pub mod consensus;
pub mod error;
pub mod history;
pub mod ids;
pub mod op;
pub mod pac;
pub mod power_object;
pub mod primitives;
pub mod register;
pub mod set_agreement;
pub mod spec;
pub mod strong_sa;
pub mod value;

pub use any::{AnyObject, AnyState};
pub use error::SpecError;
pub use ids::{Label, ObjId, Pid};
pub use op::Op;
pub use spec::{ObjectSpec, Outcomes};
pub use value::Value;
