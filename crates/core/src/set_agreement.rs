//! The **(n,k)-SA** object: `n` processes, `k`-set agreement — Section 6 of
//! the paper (after Borowsky–Gafni and Chaudhuri–Reiners).
//!
//! An (n,k)-SA object lets each of up to `n` processes apply one
//! `PROPOSE(v)` operation and receive a value satisfying the `(n,k)`-set
//! agreement requirements:
//!
//! * **k-Agreement** — at most `k` distinct values are ever returned;
//! * **Validity** — every returned value was proposed by some process.
//!
//! Unlike the strong 2-SA object, an (n,k)-SA object may answer with *any*
//! `k` of the proposed values (not necessarily the first `k`); the spec is
//! maximally nondeterministic subject to the two properties above. The
//! paper's `O'ₙ` is a bundle of these objects, and Corollary 6.7 is precisely
//! the statement that **arbitrary** solutions to the k-set agreement problems
//! are not enough to implement `Oₙ` — so the looseness of this spec is
//! load-bearing.
//!
//! Proposals beyond the `n`-th port return `⊥` (the object is exhausted,
//! mirroring the consensus object's budget semantics).

use crate::error::SpecError;
use crate::op::Op;
use crate::spec::{check_proposable, ObjectSpec, Outcomes};
use crate::value::Value;

/// State of an [`SetAgreementSpec`] object.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetAgreementState {
    /// All distinct values proposed so far, sorted (canonical form).
    pub proposals: Vec<Value>,
    /// The distinct values returned so far, sorted; `|outputs| <= k`.
    pub outputs: Vec<Value>,
    /// Number of propose operations consumed, saturating at `n`.
    pub ports_used: usize,
}

impl SetAgreementState {
    fn with_proposal(&self, v: Value, n: usize) -> SetAgreementState {
        let mut next = self.clone();
        next.ports_used = (next.ports_used + 1).min(n);
        if !next.proposals.contains(&v) {
            next.proposals.push(v);
            next.proposals.sort();
        }
        next
    }

    fn with_output(&self, u: Value) -> SetAgreementState {
        let mut next = self.clone();
        if !next.outputs.contains(&u) {
            next.outputs.push(u);
            next.outputs.sort();
        }
        next
    }
}

/// Sequential specification of the (n,k)-SA object.
///
/// # Examples
///
/// ```
/// use lbsa_core::set_agreement::SetAgreementSpec;
/// use lbsa_core::spec::ObjectSpec;
/// use lbsa_core::op::Op;
/// use lbsa_core::value::Value;
///
/// # fn main() -> Result<(), lbsa_core::error::SpecError> {
/// // A (3,1)-SA object is consensus for 3 processes.
/// let sa = SetAgreementSpec::new(3, 1)?;
/// let s0 = sa.initial_state();
/// let (r1, s1) = sa.outcomes(&s0, &Op::Propose(Value::Int(10)))?.into_single();
/// assert_eq!(r1, Value::Int(10));
/// // The second proposer must receive the already-fixed output.
/// let outs = sa.outcomes(&s1, &Op::Propose(Value::Int(20)))?;
/// assert!(outs.is_deterministic());
/// assert_eq!(outs.into_single().0, Value::Int(10));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetAgreementSpec {
    n: usize,
    k: usize,
}

impl SetAgreementSpec {
    /// Creates an (n,k)-SA specification.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidArity`] if `n == 0` or `k == 0`.
    pub fn new(n: usize, k: usize) -> Result<Self, SpecError> {
        if n == 0 {
            return Err(SpecError::InvalidArity {
                what: "n",
                got: 0,
                min: 1,
            });
        }
        if k == 0 {
            return Err(SpecError::InvalidArity {
                what: "k",
                got: 0,
                min: 1,
            });
        }
        Ok(SetAgreementSpec { n, k })
    }

    /// The number of ports `n` (processes the object can serve).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The agreement bound `k` (maximum distinct outputs).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Returns `true` if all `n` ports have been consumed.
    #[must_use]
    pub fn is_exhausted(&self, state: &SetAgreementState) -> bool {
        state.ports_used >= self.n
    }
}

impl ObjectSpec for SetAgreementSpec {
    type State = SetAgreementState;

    fn name(&self) -> &'static str {
        "(n,k)-SA"
    }

    fn initial_state(&self) -> SetAgreementState {
        SetAgreementState::default()
    }

    fn outcomes(
        &self,
        state: &SetAgreementState,
        op: &Op,
    ) -> Result<Outcomes<SetAgreementState>, SpecError> {
        match op {
            Op::Propose(v) => {
                check_proposable(*v)?;
                if self.is_exhausted(state) {
                    return Ok(Outcomes::single(Value::Bot, state.clone()));
                }
                let mid = state.with_proposal(*v, self.n);
                let mut alts: Vec<(Value, SetAgreementState)> = Vec::new();
                if mid.outputs.len() < self.k {
                    // The object may answer with any proposed value,
                    // enlarging the output set if the value is new.
                    for &u in &mid.proposals {
                        alts.push((u, mid.with_output(u)));
                    }
                } else {
                    // The output set is full: only existing outputs may be
                    // returned.
                    for &u in &mid.outputs {
                        alts.push((u, mid.clone()));
                    }
                }
                Ok(Outcomes::from_vec(alts))
            }
            other => Err(SpecError::UnsupportedOp {
                object: "(n,k)-SA",
                op: *other,
            }),
        }
    }

    fn is_deterministic(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::int;

    #[test]
    fn rejects_zero_arities() {
        assert!(SetAgreementSpec::new(0, 1).is_err());
        assert!(SetAgreementSpec::new(1, 0).is_err());
        assert!(SetAgreementSpec::new(1, 1).is_ok());
    }

    #[test]
    fn k1_behaves_like_consensus() {
        let sa = SetAgreementSpec::new(4, 1).unwrap();
        let mut s = sa.initial_state();
        let (r, next) = sa.outcomes(&s, &Op::Propose(int(3))).unwrap().into_single();
        assert_eq!(r, int(3));
        s = next;
        for v in [5i64, 7, 9] {
            let outs = sa.outcomes(&s, &Op::Propose(int(v))).unwrap();
            assert!(
                outs.is_deterministic(),
                "a full output set leaves no choice"
            );
            let (r, next) = outs.into_single();
            assert_eq!(r, int(3));
            s = next;
        }
    }

    #[test]
    fn port_budget_enforced() {
        let sa = SetAgreementSpec::new(2, 1).unwrap();
        let mut s = sa.initial_state();
        for v in [1i64, 2] {
            s = sa
                .outcomes(&s, &Op::Propose(int(v)))
                .unwrap()
                .into_vec()
                .pop()
                .unwrap()
                .1;
        }
        assert!(sa.is_exhausted(&s));
        let outs = sa.outcomes(&s, &Op::Propose(int(3))).unwrap();
        let (r, next) = outs.into_single();
        assert_eq!(r, Value::Bot);
        assert_eq!(next, s, "exhausted object state must be frozen");
    }

    #[test]
    fn outputs_are_subset_of_proposals_on_all_branches() {
        let sa = SetAgreementSpec::new(4, 2).unwrap();
        let proposals = [int(1), int(2), int(3), int(4)];
        let mut stack = vec![(sa.initial_state(), 0usize)];
        while let Some((state, idx)) = stack.pop() {
            assert!(state.outputs.iter().all(|u| state.proposals.contains(u)));
            assert!(state.outputs.len() <= 2);
            if idx == proposals.len() {
                continue;
            }
            for (resp, next) in sa.outcomes(&state, &Op::Propose(proposals[idx])).unwrap() {
                assert!(
                    next.proposals.contains(&resp),
                    "validity: response must be proposed"
                );
                stack.push((next.clone(), idx + 1));
            }
        }
    }

    #[test]
    fn at_most_k_distinct_responses_on_all_branches() {
        for k in 1..=3usize {
            let sa = SetAgreementSpec::new(4, k).unwrap();
            let proposals = [int(1), int(2), int(3), int(4)];
            let mut stack = vec![(sa.initial_state(), Vec::<Value>::new(), 0usize)];
            while let Some((state, mut seen, idx)) = stack.pop() {
                seen.sort();
                seen.dedup();
                assert!(
                    seen.len() <= k,
                    "(4,{k})-SA emitted {} distinct values",
                    seen.len()
                );
                if idx == proposals.len() {
                    continue;
                }
                for (resp, next) in sa.outcomes(&state, &Op::Propose(proposals[idx])).unwrap() {
                    let mut seen2 = seen.clone();
                    seen2.push(resp);
                    stack.push((next.clone(), seen2, idx + 1));
                }
            }
        }
    }

    #[test]
    fn nondeterminism_allows_any_proposed_value_not_just_the_first_k() {
        // Distinguishes (n,k)-SA from the strong 2-SA object: with k = 1 and
        // proposals 1 then 2... the output is fixed by the first propose.
        // Use k = 2: after proposals 1, 2, 3 the object may have answered
        // {1,3}, which the strong 2-SA could never do.
        let sa = SetAgreementSpec::new(3, 2).unwrap();
        let s0 = sa.initial_state();
        let (_, s1) = sa
            .outcomes(&s0, &Op::Propose(int(1)))
            .unwrap()
            .into_vec()
            .into_iter()
            .find(|(r, _)| *r == int(1))
            .unwrap();
        // Second propose: pick the branch that returns 1 again, keeping the
        // output set at {1}.
        let (_, s2) = sa
            .outcomes(&s1, &Op::Propose(int(2)))
            .unwrap()
            .into_vec()
            .into_iter()
            .find(|(r, _)| *r == int(1))
            .unwrap();
        // Third propose: 3 must be an admissible answer.
        let outs = sa.outcomes(&s2, &Op::Propose(int(3))).unwrap();
        assert!(outs.iter().any(|(r, _)| *r == int(3)));
    }

    #[test]
    fn rejects_reserved_values_and_foreign_ops() {
        let sa = SetAgreementSpec::new(2, 1).unwrap();
        let s = sa.initial_state();
        assert!(matches!(
            sa.outcomes(&s, &Op::Propose(Value::Nil)),
            Err(SpecError::ReservedValue(Value::Nil))
        ));
        assert!(matches!(
            sa.outcomes(&s, &Op::Write(int(1))),
            Err(SpecError::UnsupportedOp { .. })
        ));
    }

    #[test]
    fn accessors() {
        let sa = SetAgreementSpec::new(5, 2).unwrap();
        assert_eq!(sa.n(), 5);
        assert_eq!(sa.k(), 2);
        assert!(!sa.is_deterministic());
    }
}
