//! The sequential-specification trait implemented by every object family.
//!
//! Following Herlihy–Wing linearizability, a shared object is fully described
//! by a *sequential specification*: a set of states, an initial state, and a
//! transition relation `state × operation → {(response, state')}`. For a
//! deterministic object (registers, consensus objects, PAC objects, and every
//! combination thereof) the relation is a function — exactly one outcome. The
//! 2-SA and (n,k)-SA objects are **nondeterministic**: the spec returns every
//! admissible outcome and the environment (scheduler/adversary) chooses.

use crate::error::SpecError;
use crate::op::Op;
use crate::value::Value;
use std::fmt::Debug;
use std::hash::Hash;

/// The non-empty set of admissible `(response, next-state)` outcomes of one
/// operation.
///
/// # Examples
///
/// ```
/// use lbsa_core::spec::Outcomes;
/// use lbsa_core::value::Value;
///
/// let outs = Outcomes::single(Value::Done, 42u32);
/// assert!(outs.is_deterministic());
/// assert_eq!(outs.iter().count(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outcomes<S> {
    outcomes: Vec<(Value, S)>,
}

impl<S> Outcomes<S> {
    /// Creates a deterministic outcome set with exactly one entry.
    #[must_use]
    pub fn single(response: Value, state: S) -> Self {
        Outcomes {
            outcomes: vec![(response, state)],
        }
    }

    /// Creates an outcome set from a non-empty list of alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty: a sequential specification must be
    /// total, so every well-formed operation has at least one outcome.
    #[must_use]
    pub fn from_vec(outcomes: Vec<(Value, S)>) -> Self {
        assert!(
            !outcomes.is_empty(),
            "an operation must have at least one outcome"
        );
        Outcomes { outcomes }
    }

    /// Returns `true` if exactly one outcome is admissible.
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        self.outcomes.len() == 1
    }

    /// The number of admissible outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Outcome sets are never empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over the admissible `(response, next-state)` pairs.
    pub fn iter(&self) -> std::slice::Iter<'_, (Value, S)> {
        self.outcomes.iter()
    }

    /// Consumes the set, returning the underlying vector.
    #[must_use]
    pub fn into_vec(self) -> Vec<(Value, S)> {
        self.outcomes
    }

    /// Returns the unique outcome of a deterministic operation.
    ///
    /// # Panics
    ///
    /// Panics if more than one outcome is admissible; call sites that handle
    /// nondeterministic objects must use [`Outcomes::into_vec`] or
    /// [`Outcomes::iter`] instead.
    #[must_use]
    pub fn into_single(mut self) -> (Value, S) {
        assert!(
            self.outcomes.len() == 1,
            "into_single() called on a nondeterministic outcome set ({} alternatives)",
            self.outcomes.len()
        );
        self.outcomes.pop().expect("outcome sets are non-empty")
    }
}

impl<S> IntoIterator for Outcomes<S> {
    type Item = (Value, S);
    type IntoIter = std::vec::IntoIter<(Value, S)>;

    fn into_iter(self) -> Self::IntoIter {
        self.outcomes.into_iter()
    }
}

impl<'a, S> IntoIterator for &'a Outcomes<S> {
    type Item = &'a (Value, S);
    type IntoIter = std::slice::Iter<'a, (Value, S)>;

    fn into_iter(self) -> Self::IntoIter {
        self.outcomes.iter()
    }
}

/// A sequential specification of a linearizable shared object.
///
/// Implementors define the state space, the initial state, and the
/// (possibly nondeterministic) transition relation. All higher layers —
/// the runtime, the explorer, the linearizability checker — are generic in
/// this trait.
///
/// # Examples
///
/// A trivial "sticky bit" object:
///
/// ```
/// use lbsa_core::spec::{ObjectSpec, Outcomes};
/// use lbsa_core::op::Op;
/// use lbsa_core::value::Value;
/// use lbsa_core::error::SpecError;
///
/// #[derive(Debug)]
/// struct StickyBit;
///
/// impl ObjectSpec for StickyBit {
///     type State = Value;
///     fn name(&self) -> &'static str { "sticky-bit" }
///     fn initial_state(&self) -> Value { Value::Nil }
///     fn outcomes(&self, s: &Value, op: &Op) -> Result<Outcomes<Value>, SpecError> {
///         match op {
///             Op::Propose(v) => {
///                 let winner = if s.is_nil() { *v } else { *s };
///                 Ok(Outcomes::single(winner, winner))
///             }
///             other => Err(SpecError::UnsupportedOp { object: "sticky-bit", op: *other }),
///         }
///     }
/// }
///
/// let obj = StickyBit;
/// let mut s = obj.initial_state();
/// assert_eq!(obj.apply_deterministic(&mut s, &Op::Propose(Value::Int(1))).unwrap(), Value::Int(1));
/// assert_eq!(obj.apply_deterministic(&mut s, &Op::Propose(Value::Int(2))).unwrap(), Value::Int(1));
/// ```
pub trait ObjectSpec: Debug {
    /// The object's state type. Must be hashable so that whole system
    /// configurations can be deduplicated during exhaustive exploration.
    type State: Clone + Eq + Hash + Debug;

    /// A short human-readable name of the object family (e.g. `"n-PAC"`).
    fn name(&self) -> &'static str;

    /// The object's initial state.
    fn initial_state(&self) -> Self::State;

    /// All admissible `(response, next-state)` outcomes of applying `op` in
    /// `state`.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if `op` is not part of this object's
    /// interface, uses an out-of-range label, or proposes a reserved value.
    fn outcomes(&self, state: &Self::State, op: &Op) -> Result<Outcomes<Self::State>, SpecError>;

    /// Returns `true` if the object is deterministic *as a specification*,
    /// i.e. every operation in every state has exactly one outcome.
    ///
    /// The default implementation returns `true`; the 2-SA and (n,k)-SA
    /// objects override it.
    fn is_deterministic(&self) -> bool {
        true
    }

    /// Applies a deterministic operation in place and returns its response.
    ///
    /// This is the convenient entry point for driving deterministic objects
    /// (and for nondeterministic objects in states where the operation
    /// happens to have a unique outcome).
    ///
    /// # Errors
    ///
    /// Propagates any [`SpecError`] from [`ObjectSpec::outcomes`].
    ///
    /// # Panics
    ///
    /// Panics if the operation has more than one admissible outcome.
    fn apply_deterministic(&self, state: &mut Self::State, op: &Op) -> Result<Value, SpecError> {
        let (resp, next) = self.outcomes(state, op)?.into_single();
        *state = next;
        Ok(resp)
    }

    /// Runs a whole operation sequence from the initial state, resolving
    /// nondeterminism with `choose` (which receives the admissible outcomes
    /// and returns the index of the chosen one).
    ///
    /// Returns the sequence of responses and the final state.
    ///
    /// # Errors
    ///
    /// Propagates any [`SpecError`]; the state reached so far is discarded.
    fn run_with<F>(&self, ops: &[Op], mut choose: F) -> Result<(Vec<Value>, Self::State), SpecError>
    where
        F: FnMut(&[(Value, Self::State)]) -> usize,
    {
        let mut state = self.initial_state();
        let mut responses = Vec::with_capacity(ops.len());
        for op in ops {
            let outs = self.outcomes(&state, op)?.into_vec();
            let idx = if outs.len() == 1 {
                0
            } else {
                choose(&outs).min(outs.len() - 1)
            };
            let (resp, next) = outs.into_iter().nth(idx).expect("chosen index in range");
            responses.push(resp);
            state = next;
        }
        Ok((responses, state))
    }

    /// Runs a whole operation sequence from the initial state, taking the
    /// **first** admissible outcome at every nondeterministic branch.
    ///
    /// # Errors
    ///
    /// Propagates any [`SpecError`].
    fn run_first(&self, ops: &[Op]) -> Result<(Vec<Value>, Self::State), SpecError> {
        self.run_with(ops, |_| 0)
    }
}

/// Checks that a proposed value is admissible (not a reserved symbol).
///
/// # Errors
///
/// Returns [`SpecError::ReservedValue`] for `NIL`, `⊥`, and `done`.
pub fn check_proposable(v: Value) -> Result<(), SpecError> {
    if v.is_proposable() {
        Ok(())
    } else {
        Err(SpecError::ReservedValue(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::int;

    #[test]
    fn outcomes_single_is_deterministic() {
        let o = Outcomes::single(Value::Done, 0u8);
        assert!(o.is_deterministic());
        assert_eq!(o.len(), 1);
        assert_eq!(o.into_single(), (Value::Done, 0u8));
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn outcomes_from_empty_vec_panics() {
        let _ = Outcomes::<u8>::from_vec(vec![]);
    }

    #[test]
    #[should_panic(expected = "nondeterministic")]
    fn into_single_panics_on_branching() {
        let o = Outcomes::from_vec(vec![(int(1), 0u8), (int(2), 1u8)]);
        let _ = o.into_single();
    }

    #[test]
    fn outcomes_iteration() {
        let o = Outcomes::from_vec(vec![(int(1), 10u8), (int(2), 20u8)]);
        assert!(!o.is_deterministic());
        let responses: Vec<Value> = o.iter().map(|(r, _)| *r).collect();
        assert_eq!(responses, vec![int(1), int(2)]);
        let states: Vec<u8> = o.into_iter().map(|(_, s)| s).collect();
        assert_eq!(states, vec![10, 20]);
    }

    #[test]
    fn check_proposable_rejects_reserved() {
        assert!(check_proposable(int(3)).is_ok());
        assert_eq!(
            check_proposable(Value::Nil),
            Err(SpecError::ReservedValue(Value::Nil))
        );
        assert_eq!(
            check_proposable(Value::Bot),
            Err(SpecError::ReservedValue(Value::Bot))
        );
        assert_eq!(
            check_proposable(Value::Done),
            Err(SpecError::ReservedValue(Value::Done))
        );
    }
}
